//! The simulator must be perfectly deterministic: identical inputs give
//! identical times, statistics, and values — the property that makes the
//! figures reproducible.

use earth_model::sim::SimConfig;
use irred::baseline::IeEngine;
use irred::{
    approx_eq, seq_reduction, Distribution, EdgeKernel, GatherEngine, PhasedEngine, PhasedSpec,
    ReductionEngine, StrategyConfig,
};
use kernels::{EulerProblem, FamilyProblem, MolDynProblem, MvmProblem};
use std::sync::Arc;
use workloads::{HotKeyScatter, Mesh, MolDyn, PicDeck, PowerLawGraph, SparseMatrix};

#[test]
fn phased_sim_is_deterministic() {
    let strat = StrategyConfig::new(6, 2, Distribution::Cyclic, 3);
    let run = || {
        let problem = EulerProblem::from_mesh(Mesh::generate3d(300, 1_500, 42), 42);
        PhasedEngine::sim(SimConfig::default())
            .run(&problem.spec, &strat)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.time_cycles, b.time_cycles);
    assert_eq!(a.stats.ops.messages, b.stats.ops.messages);
    assert_eq!(a.values, b.values);
    assert_eq!(a.read, b.read);
}

#[test]
fn gather_sim_is_deterministic() {
    let strat = StrategyConfig::new(4, 2, Distribution::Block, 2);
    let run = || {
        let p = MvmProblem::from_matrix(Arc::new(SparseMatrix::random(256, 256, 4_000, 7)));
        GatherEngine::sim(SimConfig::default())
            .run(&p.spec, &strat)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.time_cycles, b.time_cycles);
    assert_eq!(a.values, b.values);
}

#[test]
fn different_seeds_give_different_times() {
    let strat = StrategyConfig::new(4, 2, Distribution::Cyclic, 2);
    let time = |seed: u64| {
        let problem = EulerProblem::from_mesh(Mesh::generate3d(300, 1_500, seed), seed);
        PhasedEngine::sim(SimConfig::default())
            .run(&problem.spec, &strat)
            .unwrap()
            .time_cycles
    };
    assert_ne!(time(1), time(2), "different meshes should not tie exactly");
}

/// View a kernel through a static-reads lens: identical arithmetic, but
/// the read arrays are baked into the kernel (captured once from
/// `init_read`) and no post-sweep update happens. Lets the
/// inspector/executor baseline — which supports neither replicated read
/// arrays nor read-state updates — run the euler and moldyn kernels'
/// single-sweep reduction.
struct Frozen<K> {
    inner: Arc<K>,
    read: Vec<f64>,
}

impl<K: EdgeKernel> EdgeKernel for Frozen<K> {
    fn num_refs(&self) -> usize {
        self.inner.num_refs()
    }
    fn num_arrays(&self) -> usize {
        self.inner.num_arrays()
    }
    fn contrib(&self, _read: &[f64], iter: usize, elems: &[u32], out: &mut [f64]) {
        self.inner.contrib(&self.read, iter, elems, out)
    }
    fn flops_per_iter(&self) -> u64 {
        self.inner.flops_per_iter()
    }
    fn edge_reads_per_iter(&self) -> usize {
        self.inner.edge_reads_per_iter()
    }
}

fn freeze<K: EdgeKernel>(spec: &PhasedSpec<K>) -> PhasedSpec<Frozen<K>> {
    PhasedSpec {
        kernel: Arc::new(Frozen {
            read: spec.kernel.init_read(),
            inner: Arc::clone(&spec.kernel),
        }),
        num_elements: spec.num_elements,
        indirection: Arc::clone(&spec.indirection),
    }
}

/// Sparse MVM expressed as an irregular reduction `y[row[i]] +=
/// val[i]·x[col[i]]`, so the mvm kernel can run under all three
/// execution strategies (the gather formulation has no IE baseline).
struct SpmvKernel {
    values: Arc<Vec<f64>>,
    col_idx: Arc<Vec<u32>>,
    x: Arc<Vec<f64>>,
}

impl EdgeKernel for SpmvKernel {
    fn num_refs(&self) -> usize {
        1
    }
    fn contrib(&self, _read: &[f64], iter: usize, _elems: &[u32], out: &mut [f64]) {
        out[0] = self.values[iter] * self.x[self.col_idx[iter] as usize];
    }
    fn flops_per_iter(&self) -> u64 {
        2
    }
}

fn mvm_reduction_spec(m: &SparseMatrix, seed: u64) -> PhasedSpec<SpmvKernel> {
    let mut rows = Vec::with_capacity(m.nnz());
    for r in 0..m.nrows {
        for _ in m.row_ptr[r]..m.row_ptr[r + 1] {
            rows.push(r as u32);
        }
    }
    let x: Vec<f64> = (0..m.ncols)
        .map(|i| 1.0 + ((i as u64 + seed) % 7) as f64)
        .collect();
    PhasedSpec {
        kernel: Arc::new(SpmvKernel {
            values: Arc::new(m.values.clone()),
            col_idx: Arc::new(m.col_idx.clone()),
            x: Arc::new(x),
        }),
        num_elements: m.nrows,
        indirection: Arc::new(vec![rows]),
    }
}

/// The satellite determinism contract: for a fixed seed, each execution
/// strategy — sequential reference, communicating inspector/executor
/// baseline, and the paper's phased executor — produces *bit-identical*
/// reduction results when re-run, and all three agree with one another
/// to floating-point reassociation tolerance. One check per kernel.
fn assert_strategy_determinism<K: EdgeKernel>(
    name: &str,
    spec: &PhasedSpec<K>,
    procs: usize,
    k: usize,
) {
    let strat = StrategyConfig::new(procs, k, Distribution::Block, 1);
    let owners: Vec<u32> = (0..spec.num_elements)
        .map(|e| (e * procs / spec.num_elements) as u32)
        .collect();

    let ie_strat = StrategyConfig::new(procs, 1, Distribution::Block, 1);
    let seq = || seq_reduction(spec, 1, SimConfig::default());
    let ie = || {
        IeEngine::with_owners(SimConfig::default(), Arc::new(owners.clone()))
            .run(spec, &ie_strat)
            .unwrap()
    };
    let phased = || {
        PhasedEngine::sim(SimConfig::default())
            .run(spec, &strat)
            .unwrap()
    };

    // Re-run bit-identity per strategy.
    let (s1, s2) = (seq(), seq());
    assert_eq!(s1.x, s2.x, "{name}: seq not bit-stable");
    let (i1, i2) = (ie(), ie());
    assert_eq!(
        i1.values, i2.values,
        "{name}: inspector/executor not bit-stable"
    );
    assert_eq!(
        i1.time_cycles, i2.time_cycles,
        "{name}: IE timing not stable"
    );
    let (p1, p2) = (phased(), phased());
    assert_eq!(p1.values, p2.values, "{name}: phased not bit-stable");
    assert_eq!(
        p1.time_cycles, p2.time_cycles,
        "{name}: phased timing not stable"
    );

    // Cross-strategy agreement (reassociation tolerance, not bitwise —
    // the strategies legitimately sum contributions in different orders).
    for a in 0..spec.kernel.num_arrays() {
        assert!(
            approx_eq(&s1.x[a], &i1.values[a], 1e-9),
            "{name}: seq vs IE, array {a}"
        );
        assert!(
            approx_eq(&s1.x[a], &p1.values[a], 1e-9),
            "{name}: seq vs phased, array {a}"
        );
    }
}

#[test]
fn strategies_deterministic_mvm() {
    let m = SparseMatrix::random(256, 256, 4_000, 7);
    assert_strategy_determinism("mvm", &mvm_reduction_spec(&m, 7), 4, 2);
}

#[test]
fn strategies_deterministic_euler() {
    let p = EulerProblem::from_mesh(Mesh::generate3d(300, 1_500, 42), 42);
    assert_strategy_determinism("euler", &freeze(&p.spec), 4, 2);
}

#[test]
fn strategies_deterministic_moldyn() {
    let p = MolDynProblem::from_config(MolDyn::fcc(3, 0.75));
    assert_strategy_determinism("moldyn", &freeze(&p.spec), 3, 2);
}

#[test]
fn strategies_deterministic_powerlaw() {
    let g = PowerLawGraph::generate(200, 1_200, 1.5, 11).unwrap();
    let p = FamilyProblem::from_family(g.to_family(11));
    assert_strategy_determinism("powerlaw", &p.spec, 4, 2);
}

#[test]
fn strategies_deterministic_hotkey() {
    let d = HotKeyScatter::generate(160, 1_500, 2, 0.9, 3, 13).unwrap();
    let p = FamilyProblem::from_family(d.to_family(13));
    assert_strategy_determinism("hotkey", &p.spec, 5, 2);
}

#[test]
fn strategies_deterministic_pic() {
    let d = PicDeck::generate(64, 900, 1, 0.3, 17).unwrap();
    let p = FamilyProblem::from_family(d.initial());
    assert_strategy_determinism("pic", &p.spec, 3, 2);
}

/// The churn path must be as deterministic as a cold prepare: replaying
/// the same particle sweep through `apply_updates` twice gives
/// bit-identical values *and* simulated times at every step.
#[test]
fn pic_churn_replay_is_deterministic() {
    let run = || {
        let d = PicDeck::generate(48, 600, 3, 0.5, 23).unwrap();
        let strat = StrategyConfig::new(4, 2, Distribution::Cyclic, 1);
        let engine = PhasedEngine::sim(SimConfig::default());
        let problem = FamilyProblem::from_family(d.initial());
        let mut prepared = engine.prepare(&problem.spec, &strat).unwrap();
        let mut ws = irred::Workspace::new();
        let mut trace = Vec::new();
        for step in 0..d.steps {
            let out = engine.execute(&mut prepared, &mut ws).unwrap();
            trace.push((out.time_cycles, out.values.clone()));
            prepared.apply_updates(&d.step_updates(step)).unwrap();
        }
        trace
    };
    assert_eq!(run(), run(), "churned plan execution not bit-stable");
}

#[test]
fn family_generators_are_seed_stable() {
    let a = PowerLawGraph::generate(100, 700, 2.0, 5)
        .unwrap()
        .to_family(5);
    let b = PowerLawGraph::generate(100, 700, 2.0, 5)
        .unwrap()
        .to_family(5);
    assert_eq!(a.indirection, b.indirection);
    assert_eq!(a.weights, b.weights);
    let ha = HotKeyScatter::generate(64, 400, 2, 0.8, 2, 9)
        .unwrap()
        .to_family(9);
    let hb = HotKeyScatter::generate(64, 400, 2, 0.8, 2, 9)
        .unwrap()
        .to_family(9);
    assert_eq!(ha.indirection, hb.indirection);
    assert_eq!(ha.weights, hb.weights);
    let pa = PicDeck::generate(32, 300, 2, 0.4, 3).unwrap();
    let pb = PicDeck::generate(32, 300, 2, 0.4, 3).unwrap();
    assert_eq!(pa.family_at(2).indirection, pb.family_at(2).indirection);
}

#[test]
fn workload_generators_are_seed_stable() {
    // Regenerating the paper presets must give byte-identical datasets —
    // the figures depend on it.
    let a = Mesh::preset(workloads::MeshPreset::Euler2K, 1);
    let b = Mesh::preset(workloads::MeshPreset::Euler2K, 1);
    assert_eq!(a.ia1, b.ia1);
    assert_eq!(a.ia2, b.ia2);
    let ma = workloads::MolDyn::preset(workloads::MolDynPreset::MolDyn2K);
    let mb = workloads::MolDyn::preset(workloads::MolDynPreset::MolDyn2K);
    assert_eq!(ma.ia1, mb.ia1);
}
