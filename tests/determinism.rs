//! The simulator must be perfectly deterministic: identical inputs give
//! identical times, statistics, and values — the property that makes the
//! figures reproducible.

use earth_model::sim::SimConfig;
use irred::{Distribution, PhasedGather, PhasedReduction, StrategyConfig};
use kernels::{EulerProblem, MvmProblem};
use std::sync::Arc;
use workloads::{Mesh, SparseMatrix};

#[test]
fn phased_sim_is_deterministic() {
    let strat = StrategyConfig::new(6, 2, Distribution::Cyclic, 3);
    let run = || {
        let problem = EulerProblem::from_mesh(Mesh::generate3d(300, 1_500, 42), 42);
        PhasedReduction::run_sim(&problem.spec, &strat, SimConfig::default())
    };
    let a = run();
    let b = run();
    assert_eq!(a.time_cycles, b.time_cycles);
    assert_eq!(a.stats.ops.messages, b.stats.ops.messages);
    assert_eq!(a.x, b.x);
    assert_eq!(a.read, b.read);
}

#[test]
fn gather_sim_is_deterministic() {
    let strat = StrategyConfig::new(4, 2, Distribution::Block, 2);
    let run = || {
        let p = MvmProblem::from_matrix(Arc::new(SparseMatrix::random(256, 256, 4_000, 7)));
        PhasedGather::run_sim(&p.spec, &strat, SimConfig::default())
    };
    let a = run();
    let b = run();
    assert_eq!(a.time_cycles, b.time_cycles);
    assert_eq!(a.y, b.y);
}

#[test]
fn different_seeds_give_different_times() {
    let strat = StrategyConfig::new(4, 2, Distribution::Cyclic, 2);
    let time = |seed: u64| {
        let problem = EulerProblem::from_mesh(Mesh::generate3d(300, 1_500, seed), seed);
        PhasedReduction::run_sim(&problem.spec, &strat, SimConfig::default()).time_cycles
    };
    assert_ne!(time(1), time(2), "different meshes should not tie exactly");
}

#[test]
fn workload_generators_are_seed_stable() {
    // Regenerating the paper presets must give byte-identical datasets —
    // the figures depend on it.
    let a = Mesh::preset(workloads::MeshPreset::Euler2K, 1);
    let b = Mesh::preset(workloads::MeshPreset::Euler2K, 1);
    assert_eq!(a.ia1, b.ia1);
    assert_eq!(a.ia2, b.ia2);
    let ma = workloads::MolDyn::preset(workloads::MolDynPreset::MolDyn2K);
    let mb = workloads::MolDyn::preset(workloads::MolDynPreset::MolDyn2K);
    assert_eq!(ma.ia1, mb.ia1);
}
