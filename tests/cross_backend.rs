//! The same program must produce the same values on the discrete-event
//! simulator and on real OS threads — the two backends differ only in
//! how time passes.

use std::sync::Arc;

use earth_model::native::NativeConfig;
use earth_model::sim::SimConfig;
use irred::kernel::WeightedPairKernel;
use irred::{
    approx_eq, Distribution, ExecutionConfig, GatherEngine, LoopLayout, PhasedEngine, PhasedSpec,
    ReductionEngine, StrategyConfig, Tuning,
};
use kernels::{EulerProblem, MvmProblem};
use workloads::{Mesh, SparseMatrix};

fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

#[test]
fn weighted_kernel_sim_equals_native() {
    let mut next = rng(21);
    let (n, e) = (128usize, 1_000usize);
    let spec = PhasedSpec {
        kernel: Arc::new(WeightedPairKernel {
            weights: Arc::new((0..e).map(|_| (next() % 97) as f64 / 3.0).collect()),
        }),
        num_elements: n,
        indirection: Arc::new(vec![
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
        ]),
    };
    for (procs, k) in [(2usize, 2usize), (4, 1), (8, 4)] {
        let strat = StrategyConfig::new(procs, k, Distribution::Cyclic, 3);
        let sim = PhasedEngine::sim(SimConfig::default())
            .run(&spec, &strat)
            .unwrap();
        let nat = PhasedEngine::native(NativeConfig::default())
            .run(&spec, &strat)
            .unwrap();
        assert!(
            approx_eq(&sim.values[0], &nat.values[0], 1e-9),
            "backend mismatch at P={procs} k={k}"
        );
    }
}

#[test]
fn euler_sim_equals_native() {
    let problem = EulerProblem::from_mesh(Mesh::generate3d(300, 1_600, 4), 4);
    let strat = StrategyConfig::new(4, 2, Distribution::Block, 3);
    let sim = PhasedEngine::sim(SimConfig::default())
        .run(&problem.spec, &strat)
        .unwrap();
    let nat = PhasedEngine::native(NativeConfig::default())
        .run(&problem.spec, &strat)
        .unwrap();
    for a in 0..4 {
        assert!(approx_eq(&sim.values[a], &nat.values[a], 1e-9), "x[{a}]");
    }
    assert!(approx_eq(&sim.read[0], &nat.read[0], 1e-9));
}

#[test]
fn mvm_sim_equals_native() {
    let problem = MvmProblem::from_matrix(Arc::new(SparseMatrix::random(200, 200, 3_000, 5)));
    let strat = StrategyConfig::new(4, 2, Distribution::Block, 2);
    let sim = GatherEngine::sim(SimConfig::default())
        .run(&problem.spec, &strat)
        .unwrap();
    let nat = GatherEngine::native(NativeConfig::default())
        .run(&problem.spec, &strat)
        .unwrap();
    assert!(approx_eq(&sim.values[0], &nat.values[0], 1e-12));
}

#[test]
fn op_counts_agree_across_backends() {
    // Under the nested (naive) layout the two backends execute the
    // identical fiber/message graph. The default flat layout replaces
    // native portion payloads with bare ownership syncs (zero-copy
    // handoff), so for it only the fiber graph is preserved and the
    // native deposit count drops below the simulator's.
    let problem = EulerProblem::from_mesh(Mesh::generate3d(200, 900, 8), 8);
    let strat = StrategyConfig::new(3, 2, Distribution::Cyclic, 2);
    let nested = Tuning::new().layout(LoopLayout::Nested);
    let sim = PhasedEngine::new(ExecutionConfig::sim(SimConfig::default()).with_tuning(nested))
        .run(&problem.spec, &strat)
        .unwrap();
    let nat =
        PhasedEngine::new(ExecutionConfig::native(NativeConfig::default()).with_tuning(nested))
            .run(&problem.spec, &strat)
            .unwrap();
    assert_eq!(sim.stats.ops.messages, nat.stats.ops.messages);
    assert_eq!(sim.stats.ops.bytes, nat.stats.ops.bytes);
    assert_eq!(sim.stats.ops.fibers_fired, nat.stats.ops.fibers_fired);

    let flat = StrategyConfig::new(3, 2, Distribution::Cyclic, 2);
    let nat_flat = PhasedEngine::native(NativeConfig::default())
        .run(&problem.spec, &flat)
        .unwrap();
    assert_eq!(sim.stats.ops.fibers_fired, nat_flat.stats.ops.fibers_fired);
    assert!(nat_flat.stats.ops.messages < sim.stats.ops.messages);
    for a in 0..4 {
        assert!(
            approx_eq(&sim.values[a], &nat_flat.values[a], 1e-9),
            "x[{a}]"
        );
    }
}
