//! Property-based validation of the compiler: for randomly generated DSL
//! programs, phased compiled execution must match the direct interpreter.
//! On the in-tree [`harness::prop`] harness.
//!
//! The former `.proptest-regressions` seed is preserved as the named
//! unit test [`regression_single_sub_stmt_six_procs`].

use earth_model::sim::SimConfig;
use harness::prop::{check, Config, Gen};
use harness::prop_assert;
use threadedc::{compile, interpret, parse, Bindings};

use irred::{Distribution, StrategyConfig};

/// Generate a random DSL program over a fixed set of declared arrays,
/// together with sizes. Programs always sema-check by construction.
fn program(g: &mut Gen) -> (String, usize, usize) {
    let stmts = g.usize_incl(1, 4);
    let use_local = g.prob(0.5);
    let groups = g.usize_incl(1, 2);
    let n = g.usize_incl(16, 64);
    let e = g.usize_incl(50, 400);
    let salt = g.usize_in(0..1000);
    let mut src = String::from(
        "double X[n]; double Z[n]; double W[e]; double V[e]; int A[e]; int B[e]; int C[e];\n",
    );
    src.push_str("forall (i = 0; i < e; i++) {\n");
    if use_local {
        src.push_str("  double f = W[i] * 0.5 + V[i];\n");
    }
    let vias = ["A", "B", "C"];
    for s in 0..stmts {
        let arr = if groups == 2 && s % 2 == 1 { "Z" } else { "X" };
        let via = vias[(s + salt) % if groups == 2 { 2 } else { 3 }];
        let op = if (s + salt).is_multiple_of(3) {
            "-="
        } else {
            "+="
        };
        let val = if use_local { "f * 2.0" } else { "W[i] + 1.0" };
        src.push_str(&format!("  {arr}[{via}[i]] {op} {val};\n"));
    }
    src.push_str("}\n");
    (src, n, e)
}

fn bindings(n: usize, e: usize, seed: u64) -> Bindings {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut b = Bindings::default();
    b.sizes.insert("n".into(), n);
    b.sizes.insert("e".into(), e);
    for name in ["W", "V"] {
        b.f64s.insert(
            name.into(),
            (0..e).map(|_| (next() % 100) as f64 / 11.0).collect(),
        );
    }
    for name in ["A", "B", "C"] {
        b.ints.insert(
            name.into(),
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
        );
    }
    b
}

/// Core check, shared by the property and the pinned regression case.
fn compiled_matches(
    src: &str,
    n: usize,
    e: usize,
    procs: usize,
    k: usize,
    seed: u64,
) -> Result<(), String> {
    let compiled = compile(src).expect("generated programs compile");
    let strat = StrategyConfig::new(procs, k, Distribution::Cyclic, 1);

    let mut phased = bindings(n, e, seed);
    compiled
        .execute_sim(&mut phased, &strat, SimConfig::default())
        .unwrap();

    let mut direct = bindings(n, e, seed);
    interpret(&parse(src).unwrap(), &mut direct).unwrap();

    for arr in ["X", "Z"] {
        for (i, (a, b)) in phased.f64s[arr].iter().zip(&direct.f64s[arr]).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
                "{arr}[{i}]: {a} vs {b}\nprogram:\n{src}"
            );
        }
    }
    Ok(())
}

#[test]
fn compiled_matches_interpreted() {
    check(
        "compiled_matches_interpreted",
        Config::cases(64),
        |g| {
            let (src, n, e) = program(g);
            let procs = g.usize_incl(1, 6);
            let k = g.usize_incl(1, 3);
            let seed = g.u64_in(0..10_000);
            (src, n, e, procs, k, seed)
        },
        |(src, n, e, procs, k, seed)| compiled_matches(src, *n, *e, *procs, *k, *seed),
    );
}

/// Former `.proptest-regressions` seed for `compiled_matches_interpreted`:
/// a single `-=` statement through `A` with `procs = 6, k = 3, seed = 0`.
#[test]
fn regression_single_sub_stmt_six_procs() {
    let src = "double X[n]; double Z[n]; double W[e]; double V[e]; int A[e]; int B[e]; int C[e];\n\
               forall (i = 0; i < e; i++) {\n  X[A[i]] -= W[i] + 1.0;\n}\n";
    compiled_matches(src, 16, 50, 6, 3, 0).unwrap();
}

#[test]
fn fission_temp_arrays_do_not_leak_into_results() {
    let src = "
        double P[n]; double Q[n]; double W[e]; int A[e]; int B[e];
        forall (i = 0; i < e; i++) {
            double f = W[i] * 3.0;
            P[A[i]] += f;
            Q[B[i]] -= f;
        }";
    let compiled = compile(src).unwrap();
    let mut b = bindings_small();
    compiled
        .execute_sim(
            &mut b,
            &StrategyConfig::new(2, 2, Distribution::Block, 1),
            SimConfig::default(),
        )
        .unwrap();
    // The temp array exists in the bindings (materialized) but is an
    // implementation detail with predictable contents.
    assert!(b.f64s.contains_key("__tmp_f"));
    for (i, v) in b.f64s["__tmp_f"].iter().enumerate() {
        assert_eq!(*v, b.f64s["W"][i] * 3.0);
    }
}

fn bindings_small() -> Bindings {
    let mut b = Bindings::default();
    b.sizes.insert("n".into(), 16);
    b.sizes.insert("e".into(), 40);
    b.f64s
        .insert("W".into(), (0..40).map(|i| i as f64).collect());
    b.ints
        .insert("A".into(), (0..40).map(|i| (i * 7 % 16) as u32).collect());
    b.ints
        .insert("B".into(), (0..40).map(|i| (i * 11 % 16) as u32).collect());
    b
}
