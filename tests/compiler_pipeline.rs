//! Property-based validation of the compiler: for randomly generated DSL
//! programs, phased compiled execution must match the direct interpreter.
//! On the in-tree [`harness::prop`] harness.
//!
//! The former `.proptest-regressions` seed is preserved as the named
//! unit test [`regression_single_sub_stmt_six_procs`].

use std::sync::Arc;

use earth_model::native::NativeConfig;
use earth_model::sim::SimConfig;
use earth_model::FaultConfig;
use harness::prop::{check, Config, Gen};
use harness::prop_assert;
use threadedc::{compile, interpret, parse, Bindings};

use irred::{
    Distribution, EdgeKernel, ExecutionConfig, GatherEngine, GatherSpec, PhasedEngine, PhasedSpec,
    ReductionEngine, SeqEngine, StrategyConfig,
};
use workloads::SparseMatrix;

/// Generate a random DSL program over a fixed set of declared arrays,
/// together with sizes. Programs always sema-check by construction.
fn program(g: &mut Gen) -> (String, usize, usize) {
    let stmts = g.usize_incl(1, 4);
    let use_local = g.prob(0.5);
    let groups = g.usize_incl(1, 2);
    let n = g.usize_incl(16, 64);
    let e = g.usize_incl(50, 400);
    let salt = g.usize_in(0..1000);
    let mut src = String::from(
        "double X[n]; double Z[n]; double W[e]; double V[e]; int A[e]; int B[e]; int C[e];\n",
    );
    src.push_str("forall (i = 0; i < e; i++) {\n");
    if use_local {
        src.push_str("  double f = W[i] * 0.5 + V[i];\n");
    }
    let vias = ["A", "B", "C"];
    for s in 0..stmts {
        let arr = if groups == 2 && s % 2 == 1 { "Z" } else { "X" };
        let via = vias[(s + salt) % if groups == 2 { 2 } else { 3 }];
        let op = if (s + salt).is_multiple_of(3) {
            "-="
        } else {
            "+="
        };
        let val = if use_local { "f * 2.0" } else { "W[i] + 1.0" };
        src.push_str(&format!("  {arr}[{via}[i]] {op} {val};\n"));
    }
    src.push_str("}\n");
    (src, n, e)
}

fn bindings(n: usize, e: usize, seed: u64) -> Bindings {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut b = Bindings::default();
    b.sizes.insert("n".into(), n);
    b.sizes.insert("e".into(), e);
    for name in ["W", "V"] {
        b.f64s.insert(
            name.into(),
            (0..e).map(|_| (next() % 100) as f64 / 11.0).collect(),
        );
    }
    for name in ["A", "B", "C"] {
        b.ints.insert(
            name.into(),
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
        );
    }
    b
}

/// Core check, shared by the property and the pinned regression case.
fn compiled_matches(
    src: &str,
    n: usize,
    e: usize,
    procs: usize,
    k: usize,
    seed: u64,
) -> Result<(), String> {
    let compiled = compile(src).expect("generated programs compile");
    let strat = StrategyConfig::new(procs, k, Distribution::Cyclic, 1);

    let mut phased = bindings(n, e, seed);
    compiled
        .execute_sim(&mut phased, &strat, SimConfig::default())
        .unwrap();

    let mut direct = bindings(n, e, seed);
    interpret(&parse(src).unwrap(), &mut direct).unwrap();

    for arr in ["X", "Z"] {
        for (i, (a, b)) in phased.f64s[arr].iter().zip(&direct.f64s[arr]).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
                "{arr}[{i}]: {a} vs {b}\nprogram:\n{src}"
            );
        }
    }
    Ok(())
}

#[test]
fn compiled_matches_interpreted() {
    check(
        "compiled_matches_interpreted",
        Config::cases(64),
        |g| {
            let (src, n, e) = program(g);
            let procs = g.usize_incl(1, 6);
            let k = g.usize_incl(1, 3);
            let seed = g.u64_in(0..10_000);
            (src, n, e, procs, k, seed)
        },
        |(src, n, e, procs, k, seed)| compiled_matches(src, *n, *e, *procs, *k, *seed),
    );
}

/// Former `.proptest-regressions` seed for `compiled_matches_interpreted`:
/// a single `-=` statement through `A` with `procs = 6, k = 3, seed = 0`.
#[test]
fn regression_single_sub_stmt_six_procs() {
    let src = "double X[n]; double Z[n]; double W[e]; double V[e]; int A[e]; int B[e]; int C[e];\n\
               forall (i = 0; i < e; i++) {\n  X[A[i]] -= W[i] + 1.0;\n}\n";
    compiled_matches(src, 16, 50, 6, 3, 0).unwrap();
}

#[test]
fn fission_temp_arrays_do_not_leak_into_results() {
    let src = "
        double P[n]; double Q[n]; double W[e]; int A[e]; int B[e];
        forall (i = 0; i < e; i++) {
            double f = W[i] * 3.0;
            P[A[i]] += f;
            Q[B[i]] -= f;
        }";
    let compiled = compile(src).unwrap();
    let mut b = bindings_small();
    compiled
        .execute_sim(
            &mut b,
            &StrategyConfig::new(2, 2, Distribution::Block, 1),
            SimConfig::default(),
        )
        .unwrap();
    // The temp array exists in the bindings (materialized) but is an
    // implementation detail with predictable contents.
    assert!(b.f64s.contains_key("__tmp_f"));
    for (i, v) in b.f64s["__tmp_f"].iter().enumerate() {
        assert_eq!(*v, b.f64s["W"][i] * 3.0);
    }
}

/// Bindings whose weight values are whole numbers: every partial sum is
/// exact in f64 (all magnitudes stay far below 2^53), so any summation
/// order — phased, sequential, gather, native — produces bit-identical
/// results. The bit-identity properties below all use these.
fn int_bindings(n: usize, e: usize, seed: u64) -> Bindings {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut b = Bindings::default();
    b.sizes.insert("n".into(), n);
    b.sizes.insert("e".into(), e);
    for name in ["W", "V"] {
        b.f64s
            .insert(name.into(), (0..e).map(|_| (next() % 64) as f64).collect());
    }
    for name in ["A", "B", "C"] {
        b.ints.insert(
            name.into(),
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
        );
    }
    b
}

fn assert_bits_eq(label: &str, src: &str, got: &Bindings, want: &Bindings) -> Result<(), String> {
    for arr in ["X", "Z"] {
        for (i, (a, b)) in got.f64s[arr].iter().zip(&want.f64s[arr]).enumerate() {
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "{label}: {arr}[{i}] = {a} vs interpreter {b}\nprogram:\n{src}"
            );
        }
    }
    Ok(())
}

/// Compiled execution is *bit-identical* to the interpreter across every
/// engine and preparation path: the flat fast path on the simulator, the
/// inspector `prepare` path on the same engine, and the sequential
/// engine. The generator includes un-annotated multi-group programs, so
/// automatic fission is exercised on every path.
#[test]
fn engines_bit_identical_to_interpreter() {
    check(
        "engines_bit_identical_to_interpreter",
        Config::cases(48),
        |g| {
            let (src, n, e) = program(g);
            let procs = g.usize_incl(1, 5);
            let k = g.usize_incl(1, 3);
            let seed = g.u64_in(0..10_000);
            (src, n, e, procs, k, seed)
        },
        |(src, n, e, procs, k, seed)| {
            let compiled = compile(src).expect("generated programs compile");
            let strat = StrategyConfig::new(*procs, *k, Distribution::Cyclic, 1);

            let mut want = int_bindings(*n, *e, *seed);
            interpret(&parse(src).unwrap(), &mut want).unwrap();

            // Flat fast path: compiler-emitted CSR plans, no inspector.
            let mut flat = int_bindings(*n, *e, *seed);
            let flat_rep = compiled
                .execute_sim(&mut flat, &strat, SimConfig::default())
                .unwrap();
            assert_bits_eq("flat/sim", src, &flat, &want)?;

            // Inspector prepare path on the same engine: identical
            // results *and* identical simulated cost — the emitted flat
            // plan is the inspector's plan, not an approximation of it.
            let mut insp = int_bindings(*n, *e, *seed);
            let insp_rep = compiled
                .execute_with(&mut insp, &PhasedEngine::sim(SimConfig::default()), &strat)
                .unwrap();
            assert_bits_eq("prepare/sim", src, &insp, &want)?;
            prop_assert!(
                flat_rep.time_cycles == insp_rep.time_cycles,
                "flat path cost {} != prepare path cost {}\nprogram:\n{src}",
                flat_rep.time_cycles,
                insp_rep.time_cycles
            );

            // Sequential engine (the shed path the server falls back to).
            let mut seq = int_bindings(*n, *e, *seed);
            compiled
                .execute_with(
                    &mut seq,
                    &SeqEngine::new(ExecutionConfig::default()),
                    &strat,
                )
                .unwrap();
            assert_bits_eq("seq", src, &seq, &want)
        },
    );
}

/// The native thread-pool backend under a *lossless* fault plan
/// (delayed / duplicated / reordered messages, no drops) is still
/// bit-identical to the interpreter: reductions are pure dataflow and
/// the weights are whole numbers.
#[test]
fn native_with_lossless_faults_bit_identical_to_interpreter() {
    check(
        "native_with_lossless_faults_bit_identical_to_interpreter",
        Config::cases(16),
        |g| {
            let (src, n, e) = program(g);
            let procs = g.usize_incl(1, 3);
            let k = g.usize_incl(1, 2);
            let seed = g.u64_in(0..10_000);
            (src, n, e, procs, k, seed)
        },
        |(src, n, e, procs, k, seed)| {
            let compiled = compile(src).expect("generated programs compile");
            let strat = StrategyConfig::new(*procs, *k, Distribution::Cyclic, 1);

            let mut want = int_bindings(*n, *e, *seed);
            interpret(&parse(src).unwrap(), &mut want).unwrap();

            let native = NativeConfig {
                faults: Some(FaultConfig::lossless(*seed)),
                ..NativeConfig::default()
            };
            let mut got = int_bindings(*n, *e, *seed);
            compiled
                .execute_flat(&mut got, &strat, &PhasedEngine::native(native))
                .unwrap();
            assert_bits_eq("native+lossless", src, &got, &want)
        },
    );
}

/// A hand-written [`EdgeKernel`] mirroring the paper's Fig. 1 loop: the
/// compiled DSL program and the hand-built [`PhasedSpec`] must agree
/// bit-for-bit — the compiler's lowering adds nothing and loses nothing
/// relative to writing the kernel by hand.
struct Fig1Kernel {
    w: Vec<f64>,
}

impl EdgeKernel for Fig1Kernel {
    fn contrib(&self, _read: &[f64], iter: usize, _elems: &[u32], out: &mut [f64]) {
        let f = self.w[iter] * 0.5;
        out[0] = f; // X[IA1[i]] += f
        out[1] = -f; // X[IA2[i]] -= f
    }
}

#[test]
fn compiled_matches_hand_built_kernel_spec() {
    let src = "
        double X[n]; double W[e]; int A[e]; int B[e];
        forall (i = 0; i < e; i++) {
            double f = W[i] * 0.5;
            X[A[i]] += f;
            X[B[i]] -= f;
        }";
    let (n, e, seed) = (32usize, 200usize, 9u64);
    let strat = StrategyConfig::new(3, 2, Distribution::Cyclic, 1);

    let mut b = int_bindings(n, e, seed);
    compile(src)
        .unwrap()
        .execute_sim(&mut b, &strat, SimConfig::default())
        .unwrap();

    let spec = PhasedSpec {
        kernel: Arc::new(Fig1Kernel {
            w: b.f64s["W"].clone(),
        }),
        num_elements: n,
        indirection: Arc::new(vec![b.ints["A"].clone(), b.ints["B"].clone()]),
    };
    let out = PhasedEngine::sim(SimConfig::default())
        .run(&spec, &strat)
        .unwrap();

    // The DSL accumulates onto X's prior contents (zeros here), so the
    // engine's pure sum is directly comparable.
    for (i, (got, want)) in b.f64s["X"].iter().zip(&out.values[0]).enumerate() {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "X[{i}]: compiled {got} vs hand-built kernel {want}"
        );
    }
}

/// Cross-executor check: a single-group `X[A[i]] += W[i]` reduction is
/// an SpMV in disguise. Build the equivalent CSR matrix by hand (row
/// `r` holds one entry of value `W[i]` per iteration `i` with
/// `A[i] == r`), run it through the gather-rotation executor on both
/// the simulator and the native backend, and demand bit-identity with
/// the compiled phased result.
#[test]
fn single_group_reduction_matches_hand_built_gather_spmv() {
    let src = "
        double X[n]; double W[e]; int A[e];
        forall (i = 0; i < e; i++) {
            X[A[i]] += W[i];
        }";
    let (n, e, seed) = (24usize, 180usize, 17u64);
    let strat = StrategyConfig::new(2, 2, Distribution::Block, 1);

    let mut b = int_bindings(n, e, seed);
    compile(src)
        .unwrap()
        .execute_sim(&mut b, &strat, SimConfig::default())
        .unwrap();

    // Rows = reduction elements, columns = iterations, entries in
    // ascending iteration order within each row — the same order the
    // phased executor's owner-local accumulation visits them.
    let a = &b.ints["A"];
    let mut row_ptr = vec![0u64; n + 1];
    let mut col_idx = Vec::with_capacity(e);
    let mut values = Vec::with_capacity(e);
    for r in 0..n {
        for (i, &ai) in a.iter().enumerate() {
            if ai as usize == r {
                col_idx.push(i as u32);
                values.push(b.f64s["W"][i]);
            }
        }
        row_ptr[r + 1] = col_idx.len() as u64;
    }
    let spec = GatherSpec {
        matrix: Arc::new(SparseMatrix {
            nrows: n,
            ncols: e,
            row_ptr,
            col_idx,
            values,
        }),
        x: Arc::new(vec![1.0; e]),
    };

    for (label, out) in [
        (
            "gather/sim",
            GatherEngine::sim(SimConfig::default())
                .run(&spec, &strat)
                .unwrap(),
        ),
        (
            "gather/native",
            GatherEngine::native(NativeConfig::default())
                .run(&spec, &strat)
                .unwrap(),
        ),
    ] {
        for (i, (got, want)) in out.values[0].iter().zip(&b.f64s["X"]).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{label}: y[{i}] = {got} vs compiled X {want}"
            );
        }
    }
}

/// An un-annotated two-group loop with a shared scalar must fission into
/// two phased loops plus a temp prelude, and each fissioned loop must
/// run on the flat fast path — checked through the public report, not
/// crate internals.
#[test]
fn multi_group_fission_reaches_flat_path_on_every_engine() {
    let src = "
        double X[n]; double Z[n]; double W[e]; int A[e]; int B[e];
        forall (i = 0; i < e; i++) {
            double f = W[i] * 2.0;
            X[A[i]] += f;
            Z[B[i]] -= f;
        }";
    let compiled = compile(src).unwrap();
    assert!(
        compiled.log.iter().any(|l| l.contains("fission")),
        "compile log must record the fission decision: {:?}",
        compiled.log
    );

    let strat = StrategyConfig::new(2, 2, Distribution::Cyclic, 1);
    let (n, e, seed) = (20usize, 120usize, 5u64);

    let mut want = int_bindings(n, e, seed);
    interpret(&parse(src).unwrap(), &mut want).unwrap();

    let mut b = int_bindings(n, e, seed);
    let rep = compiled
        .execute_sim(&mut b, &strat, SimConfig::default())
        .unwrap();
    assert_eq!(rep.phased_loops, 2, "one phased loop per reference group");
    assert_eq!(rep.regular_loops, 1, "temp-array prelude runs sequentially");
    assert_bits_eq("fissioned flat/sim", src, &b, &want).unwrap();

    let mut nat = int_bindings(n, e, seed);
    compiled
        .execute_flat(
            &mut nat,
            &strat,
            &PhasedEngine::native(NativeConfig::default()),
        )
        .unwrap();
    assert_bits_eq("fissioned flat/native", src, &nat, &want).unwrap();
}

fn bindings_small() -> Bindings {
    let mut b = Bindings::default();
    b.sizes.insert("n".into(), 16);
    b.sizes.insert("e".into(), 40);
    b.f64s
        .insert("W".into(), (0..40).map(|i| i as f64).collect());
    b.ints
        .insert("A".into(), (0..40).map(|i| (i * 7 % 16) as u32).collect());
    b.ints
        .insert("B".into(), (0..40).map(|i| (i * 11 % 16) as u32).collect());
    b
}
