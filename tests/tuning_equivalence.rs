//! Property suite for the [`Tuning`] API's vectorized and tiled flat
//! kernels.
//!
//! Three contracts:
//!
//! 1. **Vector bit-identity on all inputs.** The chunked (and, when the
//!    `simd` feature is on, intrinsics) flat path stages contributions
//!    in a stack buffer and scatters them in original iteration order,
//!    so it performs exactly the floating-point operations of the
//!    scalar path in exactly the same order — bit-identical results on
//!    *arbitrary* float inputs, across three workload families, on the
//!    simulator and on the native backend under a lossless fault plan.
//!
//! 2. **Tile bit-identity on whole-number weights.** Tiling reorders
//!    iterations within a phase, which reassociates the sums; on
//!    whole-number weights every partial sum is an exactly-representable
//!    integer, so any association gives the same bits. (On general
//!    floats tiling is approximate by design — that path is covered by
//!    the tolerance-based equivalence suites.)
//!
//! 3. **Tile-boundary stable order.** Within one tile bucket the tiled
//!    iteration order is exactly the untiled order filtered to that
//!    bucket (stable sort), and bucket ids are monotone non-decreasing
//!    across the phase — proven against the prepared plan's exposed
//!    `phase_order` / `phase_first_ref_targets`.

use std::sync::Arc;
use std::time::Duration;

use earth_model::native::NativeConfig;
use earth_model::sim::SimConfig;
use earth_model::FaultConfig;
use harness::prop::{check, Config, Gen};
use harness::prop_assert;
use irred::{
    Distribution, EdgeKernel, ExecutionConfig, PhasedEngine, PhasedSpec, ReductionEngine, SimdMode,
    StrategyConfig, TileChoice, Tuning,
};
use kernels::{FamilyProblem, MolDynProblem};
use workloads::{HotKeyScatter, MolDyn, PowerLawGraph};

#[derive(Debug, Clone)]
struct Case {
    size: usize,
    procs: usize,
    k: usize,
    dist: Distribution,
    sweeps: usize,
    seed: u64,
}

fn gen_case(g: &mut Gen) -> Case {
    Case {
        size: g.usize_incl(0, 2),
        procs: g.usize_incl(1, 6),
        k: g.usize_incl(1, 3),
        dist: if g.prob(0.5) {
            Distribution::Cyclic
        } else {
            Distribution::Block
        },
        sweeps: g.usize_incl(1, 3),
        seed: g.u64_any(),
    }
}

fn native_cfg(fault_seed: u64) -> NativeConfig {
    NativeConfig {
        watchdog: Duration::from_secs(30),
        faults: Some(FaultConfig::lossless(fault_seed)),
        starved_is_error: true,
        host_threads: None,
        deadline: None,
    }
}

/// The SIMD modes whose results must be bit-identical to scalar.
/// `Intrinsics` resolves to the chunked path when the `simd` feature is
/// off, so listing it unconditionally tests the real intrinsics lane in
/// `--features simd` builds and degrades to a (cheap) duplicate of the
/// chunked check otherwise.
const VECTOR_MODES: [SimdMode; 2] = [SimdMode::Chunked, SimdMode::Intrinsics];

/// Run one spec scalar, then under every vector mode, on the simulator
/// and on the faulted native backend; demand exact equality throughout.
fn assert_vector_modes_agree<K: EdgeKernel>(spec: &PhasedSpec<K>, c: &Case) -> Result<(), String> {
    let strat = StrategyConfig::new(c.procs, c.k, c.dist, c.sweeps);
    let scalar = PhasedEngine::new(ExecutionConfig::sim(SimConfig::default()))
        .run(spec, &strat)
        .map_err(|e| format!("{e}"))?;
    for mode in VECTOR_MODES {
        let tuning = Tuning::new().simd(mode);
        let sim = PhasedEngine::new(ExecutionConfig::sim(SimConfig::default()).with_tuning(tuning))
            .run(spec, &strat)
            .map_err(|e| format!("{e}"))?;
        prop_assert!(
            sim.values == scalar.values && sim.read == scalar.read,
            "sim {mode:?} != sim scalar for {c:?}"
        );
        let nat =
            PhasedEngine::new(ExecutionConfig::native(native_cfg(c.seed)).with_tuning(tuning))
                .run(spec, &strat)
                .map_err(|e| format!("{e}"))?;
        prop_assert!(
            nat.values == scalar.values && nat.read == scalar.read,
            "native {mode:?} (lossless faults) != sim scalar for {c:?}"
        );
    }
    Ok(())
}

#[test]
fn moldyn_vector_modes_equal_scalar() {
    check(
        "moldyn_vector_modes_equal_scalar",
        Config::cases_quick(48),
        gen_case,
        |c| {
            let cells = 2 + c.size.min(1);
            let cutoff = 1.2 + 0.3 * c.size as f64;
            let problem = MolDynProblem::from_config(MolDyn::fcc(cells, cutoff));
            assert_vector_modes_agree(&problem.spec, c)
        },
    );
}

#[test]
fn powerlaw_vector_modes_equal_scalar() {
    check(
        "powerlaw_vector_modes_equal_scalar",
        Config::cases_quick(48),
        gen_case,
        |c| {
            let nodes = 32 + 32 * c.size;
            let edges = nodes * (3 + c.size);
            let alpha = 0.5 + (c.seed % 4) as f64 * 0.7;
            let g =
                PowerLawGraph::generate(nodes, edges, alpha, c.seed).map_err(|e| format!("{e}"))?;
            let p = FamilyProblem::from_family(g.to_family(c.seed));
            assert_vector_modes_agree(&p.spec, c)
        },
    );
}

#[test]
fn hotkey_vector_modes_equal_scalar() {
    check(
        "hotkey_vector_modes_equal_scalar",
        Config::cases_quick(48),
        gen_case,
        |c| {
            let keys = 48 + 32 * c.size;
            let rows = 200 + 150 * c.size;
            let hot_frac = [0.0, 0.6, 0.95, 0.99][(c.seed % 4) as usize];
            let d = HotKeyScatter::generate(keys, rows, 2, hot_frac, 1 + c.size, c.seed)
                .map_err(|e| format!("{e}"))?;
            let p = FamilyProblem::from_family(d.to_family(c.seed));
            assert_vector_modes_agree(&p.spec, c)
        },
    );
}

// ---------------------------------------------------------------------
// Tiling
// ---------------------------------------------------------------------

/// A multi-ref reduction whose every contribution is a small integer:
/// partial sums stay exactly representable, so *any* summation order
/// produces identical bits — the precondition for the tiled-vs-untiled
/// exactness property.
#[derive(Debug)]
struct IntWeightKernel {
    num_refs: usize,
    weights: Vec<f64>,
}

impl EdgeKernel for IntWeightKernel {
    fn num_refs(&self) -> usize {
        self.num_refs
    }

    fn num_arrays(&self) -> usize {
        1
    }

    fn contrib(&self, _read: &[f64], iter: usize, _elems: &[u32], out: &mut [f64]) {
        let w = self.weights[iter];
        for (r, slot) in out.iter_mut().enumerate().take(self.num_refs) {
            *slot = w * (r + 1) as f64;
        }
    }

    fn flops_per_iter(&self) -> u64 {
        self.num_refs as u64
    }
}

fn int_weight_spec(c: &Case) -> PhasedSpec<IntWeightKernel> {
    let num_elements = 24 + 24 * c.size;
    let iters = 120 + 100 * c.size;
    let num_refs = 1 + (c.seed % 3) as usize;
    let mut rng = c.seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let weights = (0..iters).map(|_| (next() % 10) as f64).collect();
    let indirection: Vec<Vec<u32>> = (0..num_refs)
        .map(|_| {
            (0..iters)
                .map(|_| (next() % num_elements as u64) as u32)
                .collect()
        })
        .collect();
    PhasedSpec {
        kernel: Arc::new(IntWeightKernel { num_refs, weights }),
        num_elements,
        indirection: Arc::new(indirection),
    }
}

#[test]
fn tiled_equals_untiled_on_integer_weights() {
    check(
        "tiled_equals_untiled_on_integer_weights",
        Config::cases_quick(48),
        gen_case,
        |c| {
            let spec = int_weight_spec(c);
            let strat = StrategyConfig::new(c.procs, c.k, c.dist, c.sweeps);
            let untiled = PhasedEngine::new(ExecutionConfig::sim(SimConfig::default()))
                .run(&spec, &strat)
                .map_err(|e| format!("{e}"))?;
            let spans = [
                TileChoice::Elements(1),
                TileChoice::Elements(3),
                TileChoice::Elements(8 + (c.seed % 16) as usize),
                TileChoice::Auto,
            ];
            for tile in spans {
                let tuning = Tuning::new().tile(tile).simd(SimdMode::Chunked);
                let sim = PhasedEngine::new(
                    ExecutionConfig::sim(SimConfig::default()).with_tuning(tuning),
                )
                .run(&spec, &strat)
                .map_err(|e| format!("{e}"))?;
                prop_assert!(
                    sim.values == untiled.values,
                    "sim tiled {tile:?} != untiled for {c:?}"
                );
                let nat = PhasedEngine::new(
                    ExecutionConfig::native(native_cfg(c.seed)).with_tuning(tuning),
                )
                .run(&spec, &strat)
                .map_err(|e| format!("{e}"))?;
                prop_assert!(
                    nat.values == untiled.values,
                    "native tiled {tile:?} (lossless faults) != untiled for {c:?}"
                );
            }
            Ok(())
        },
    );
}

/// The stable-order proof: prepare the same spec untiled and tiled and
/// compare phase by phase. Tiled targets must walk tile buckets in
/// non-decreasing order, and filtering the untiled order to one bucket
/// must reproduce the tiled order within that bucket exactly.
#[test]
fn tile_boundaries_preserve_stable_order() {
    check(
        "tile_boundaries_preserve_stable_order",
        Config::cases_quick(48),
        gen_case,
        |c| {
            let spec = int_weight_spec(c);
            let strat = StrategyConfig::new(c.procs, c.k, c.dist, c.sweeps);
            let span = 2 + (c.seed % 13) as usize;
            let engine = |tile| {
                PhasedEngine::new(
                    ExecutionConfig::sim(SimConfig::default())
                        .with_tuning(Tuning::new().tile(tile)),
                )
            };
            let plain = engine(TileChoice::Off)
                .prepare(&spec, &strat)
                .map_err(|e| format!("{e}"))?;
            let tiled = engine(TileChoice::Elements(span))
                .prepare(&spec, &strat)
                .map_err(|e| format!("{e}"))?;
            prop_assert!(
                tiled.tile_span() == Some(span),
                "requested span {span} not recorded for {c:?}"
            );
            for proc in 0..tiled.num_procs() {
                for p in 0..tiled.num_phases() {
                    let t_order = tiled.phase_order(proc, p);
                    let t_targets = tiled.phase_first_ref_targets(proc, p);
                    let u_order = plain.phase_order(proc, p);
                    let u_targets = plain.phase_first_ref_targets(proc, p);
                    prop_assert!(
                        t_order.len() == u_order.len(),
                        "tiling changed the iteration count in proc {proc} phase {p} for {c:?}"
                    );
                    // Bucket ids never decrease across the tiled phase.
                    let buckets: Vec<usize> =
                        t_targets.iter().map(|&t| t as usize / span).collect();
                    prop_assert!(
                        buckets.windows(2).all(|w| w[0] <= w[1]),
                        "tile buckets not monotone in proc {proc} phase {p} for {c:?}"
                    );
                    // Within each bucket: exactly the untiled subsequence.
                    let max_bucket = buckets.iter().copied().max().unwrap_or(0);
                    for b in 0..=max_bucket {
                        let tiled_in_b: Vec<u32> = t_order
                            .iter()
                            .zip(&buckets)
                            .filter(|(_, &tb)| tb == b)
                            .map(|(&g, _)| g)
                            .collect();
                        let untiled_in_b: Vec<u32> = u_order
                            .iter()
                            .zip(&u_targets)
                            .filter(|(_, &t)| t as usize / span == b)
                            .map(|(&g, _)| g)
                            .collect();
                        prop_assert!(
                            tiled_in_b == untiled_in_b,
                            "bucket {b} of proc {proc} phase {p} is not the stable \
                             untiled subsequence for {c:?}"
                        );
                    }
                }
            }
            Ok(())
        },
    );
}
