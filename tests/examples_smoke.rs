//! Smoke test: every program in `examples/` builds and runs to
//! completion at small (`REPRO_QUICK=1`) problem sizes **within a hard
//! deadline**, so examples can't silently rot as the APIs evolve and a
//! wedged example shows up as a test failure, not a hung CI job.
//!
//! Runs each example through the same `cargo` that is running the tests
//! (`cargo test` has already compiled the examples, so these are cheap
//! re-invocations of existing binaries). All examples run in one test
//! function to keep the recursive cargo invocations serial.

use std::io::Read;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const EXAMPLES: &[&str] = &[
    "quickstart",
    "inspector_walkthrough",
    "euler_cfd",
    "mvm_cg",
    "moldyn_adaptive",
    "compile_pipeline",
];

/// Generous per-example bound: each runs in well under 10 s at
/// `REPRO_QUICK` sizes, but a cold target/ directory may have to link.
const DEADLINE: Duration = Duration::from_secs(180);

/// Spawn a reader thread draining one pipe, so a chatty example can't
/// deadlock against a full pipe buffer while we poll the deadline.
fn drain<R: Read + Send + 'static>(r: R) -> std::thread::JoinHandle<String> {
    std::thread::spawn(move || {
        let mut buf = String::new();
        let mut r = r;
        let _ = r.read_to_string(&mut buf);
        buf
    })
}

#[test]
fn every_example_terminates_within_deadline() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    for name in EXAMPLES {
        let started = Instant::now();
        let mut child = Command::new(env!("CARGO"))
            .args(["run", "--quiet", "--offline", "--example", name])
            .arg("--manifest-path")
            .arg(&manifest)
            .env("CARGO_NET_OFFLINE", "true")
            .env("REPRO_QUICK", "1")
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
        let out = drain(child.stdout.take().expect("stdout piped"));
        let err = drain(child.stderr.take().expect("stderr piped"));

        let status = loop {
            match child.try_wait().expect("try_wait") {
                Some(status) => break status,
                None if started.elapsed() > DEADLINE => {
                    let _ = child.kill();
                    let _ = child.wait();
                    panic!(
                        "example '{name}' still running after {DEADLINE:?} — killed.\n\
                         --- stderr so far ---\n{}",
                        err.join().unwrap_or_default()
                    );
                }
                None => std::thread::sleep(Duration::from_millis(25)),
            }
        };
        assert!(
            status.success(),
            "example '{name}' failed ({status}):\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.join().unwrap_or_default(),
            err.join().unwrap_or_default(),
        );
    }
}
