//! Smoke test: every program in `examples/` builds and runs to
//! completion at small (`REPRO_QUICK=1`) problem sizes, so examples
//! can't silently rot as the APIs evolve.
//!
//! Runs each example through the same `cargo` that is running the tests
//! (`cargo test` has already compiled the examples, so these are cheap
//! re-invocations of existing binaries). All examples run in one test
//! function to keep the recursive cargo invocations serial.

use std::path::Path;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "inspector_walkthrough",
    "euler_cfd",
    "mvm_cg",
    "moldyn_adaptive",
    "compile_pipeline",
];

#[test]
fn every_example_runs() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    for name in EXAMPLES {
        let out = Command::new(env!("CARGO"))
            .args(["run", "--quiet", "--offline", "--example", name])
            .arg("--manifest-path")
            .arg(&manifest)
            .env("CARGO_NET_OFFLINE", "true")
            .env("REPRO_QUICK", "1")
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
        assert!(
            out.status.success(),
            "example '{name}' failed ({}):\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status,
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
    }
}
