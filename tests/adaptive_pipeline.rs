//! Adaptivity end to end: perturb a moldyn configuration, update the
//! plans incrementally, and verify a fresh phased execution of the new
//! interaction list still matches the sequential reference.

use earth_model::sim::SimConfig;
use irred::{
    approx_eq, seq_reduction, Distribution, PhasedEngine, ReductionEngine, StrategyConfig,
};
use kernels::MolDynProblem;
use lightinspector::{diff_pairs, verify_plan, IncrementalInspector, PhaseGeometry};
use workloads::{hash_distribute_pairs, MolDyn};

#[test]
fn incremental_plans_stay_valid_across_rebuilds() {
    let procs = 4usize;
    let mut md = MolDyn::fcc(4, 0.75);
    let g = PhaseGeometry::new(procs, 2, md.num_molecules);

    let initial = hash_distribute_pairs(&md.ia1, &md.ia2, procs);
    let caps: Vec<usize> = initial.iter().map(|v| v.len() + v.len() / 4 + 8).collect();
    let mut incs: Vec<IncrementalInspector> = initial
        .iter()
        .zip(&caps)
        .enumerate()
        .map(|(q, (pairs, &cap))| {
            let mut a: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            let mut b: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            a.resize(cap, 0);
            b.resize(cap, 0);
            IncrementalInspector::new(g, q, vec![a, b])
        })
        .collect();

    for round in 0..4 {
        md.perturb(0.06, round);
        md.rebuild_interactions();
        let fresh = hash_distribute_pairs(&md.ia1, &md.ia2, procs);
        for (q, inc) in incs.iter_mut().enumerate() {
            let mut na: Vec<u32> = fresh[q].iter().map(|p| p.0).collect();
            let mut nb: Vec<u32> = fresh[q].iter().map(|p| p.1).collect();
            na.resize(caps[q], 0);
            nb.resize(caps[q], 0);
            let new_pairs: Vec<(u32, u32)> = na.iter().zip(&nb).map(|(&x, &y)| (x, y)).collect();
            let d = diff_pairs(
                inc.indirection()[0].as_slice(),
                inc.indirection()[1].as_slice(),
                &new_pairs,
            );
            for (slot, x, y) in d {
                inc.update(slot, &[x, y]);
            }
            let refs: Vec<&[u32]> = inc.indirection().iter().map(|v| v.as_slice()).collect();
            verify_plan(inc.plan(), &refs).expect("plan valid after rebuild");
            // The plan's pairs are exactly the fresh local list (as a set).
            let mut have: Vec<(u32, u32)> =
                refs[0].iter().zip(refs[1]).map(|(&x, &y)| (x, y)).collect();
            let mut want = new_pairs;
            have.sort_unstable();
            want.sort_unstable();
            assert_eq!(have, want, "proc {q} round {round}");
        }
    }
}

#[test]
fn phased_run_after_adaptation_matches_sequential() {
    let mut md = MolDyn::fcc(4, 0.75);
    for round in 0..3 {
        md.perturb(0.05, round);
        md.rebuild_interactions();
    }
    let problem = MolDynProblem::from_config(md);
    let sweeps = 2;
    let seq = seq_reduction(&problem.spec, sweeps, SimConfig::default());
    let strat = StrategyConfig::new(4, 2, Distribution::Cyclic, sweeps);
    let r = PhasedEngine::sim(SimConfig::default())
        .run(&problem.spec, &strat)
        .unwrap();
    for a in 0..3 {
        assert!(approx_eq(&r.values[a], &seq.x[a], 1e-8));
        assert!(approx_eq(&r.read[a], &seq.read[a], 1e-8));
    }
}
