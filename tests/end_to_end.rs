//! Cross-crate integration: every kernel, on reduced datasets, across
//! the full strategy space, validated against its sequential reference.

use std::sync::Arc;

use earth_model::sim::SimConfig;
use irred::{
    approx_eq, seq_reduction, Distribution, GatherEngine, PhasedEngine, ReductionEngine,
    StrategyConfig,
};
use kernels::{EulerProblem, MolDynProblem, MvmProblem};
use workloads::{Mesh, MolDyn, SparseMatrix};

fn strategies(sweeps: usize) -> Vec<StrategyConfig> {
    let mut out = Vec::new();
    for procs in [1usize, 2, 3, 4, 8] {
        for k in [1usize, 2, 4] {
            for d in [Distribution::Block, Distribution::Cyclic] {
                out.push(StrategyConfig::new(procs, k, d, sweeps));
            }
        }
    }
    out
}

#[test]
fn euler_all_strategies_match_sequential() {
    let problem = EulerProblem::from_mesh(Mesh::generate3d(400, 2_200, 11), 11);
    let sweeps = 3;
    let seq = seq_reduction(&problem.spec, sweeps, SimConfig::default());
    for strat in strategies(sweeps) {
        let r = PhasedEngine::sim(SimConfig::default())
            .run(&problem.spec, &strat)
            .unwrap();
        for a in 0..4 {
            assert!(
                approx_eq(&r.values[a], &seq.x[a], 1e-8),
                "euler x[{a}] mismatch at P={} {}",
                strat.procs,
                strat.label()
            );
        }
        assert!(
            approx_eq(&r.read[0], &seq.read[0], 1e-8),
            "euler state mismatch at P={} {}",
            strat.procs,
            strat.label()
        );
    }
}

#[test]
fn moldyn_all_strategies_match_sequential() {
    let mut config = MolDyn::fcc(4, 0.75);
    config.perturb(0.03, 5);
    config.rebuild_interactions();
    let problem = MolDynProblem::from_config(config);
    let sweeps = 2;
    let seq = seq_reduction(&problem.spec, sweeps, SimConfig::default());
    for strat in strategies(sweeps) {
        let r = PhasedEngine::sim(SimConfig::default())
            .run(&problem.spec, &strat)
            .unwrap();
        for a in 0..3 {
            assert!(
                approx_eq(&r.read[a], &seq.read[a], 1e-8),
                "moldyn pos[{a}] mismatch at P={} {}",
                strat.procs,
                strat.label()
            );
        }
    }
}

#[test]
fn mvm_all_strategies_match_spmv() {
    let problem = MvmProblem::from_matrix(Arc::new(SparseMatrix::random(300, 300, 5_000, 9)));
    let mut want = vec![0.0; 300];
    problem.spec.matrix.spmv(&problem.spec.x, &mut want);
    for strat in strategies(2) {
        let r = GatherEngine::sim(SimConfig::default())
            .run(&problem.spec, &strat)
            .unwrap();
        assert!(
            approx_eq(&r.values[0], &want, 1e-10),
            "mvm mismatch at P={} {}",
            strat.procs,
            strat.label()
        );
    }
}

#[test]
fn conservation_holds_under_any_numbering() {
    // Euler's edge fluxes are conservative (±f per edge): the global sum
    // of every reduction array is zero regardless of mesh numbering or
    // strategy.
    let mesh = Mesh::generate3d(300, 1_500, 3);
    let strat = StrategyConfig::new(4, 2, Distribution::Cyclic, 3);
    for m in [mesh.clone(), mesh.shuffled(99)] {
        let p = EulerProblem::from_mesh(m, 3);
        let r = PhasedEngine::sim(SimConfig::default())
            .run(&p.spec, &strat)
            .unwrap();
        for a in 0..4 {
            let total: f64 = r.values[a].iter().sum();
            assert!(total.abs() < 1e-7, "array {a} drifted: {total}");
        }
        // And the phased run matches its own sequential reference.
        let seq = seq_reduction(&p.spec, 3, SimConfig::default());
        assert!(approx_eq(&r.read[0], &seq.read[0], 1e-8));
    }
}

#[test]
fn inspector_cost_excluded_from_loop_time() {
    // Same spec, 1 sweep vs 4 sweeps: time scales with sweeps (the
    // inspector runs once at build time, outside the timed loop).
    let problem = EulerProblem::from_mesh(Mesh::generate3d(400, 2_200, 7), 7);
    let strat1 = StrategyConfig::new(4, 2, Distribution::Cyclic, 2);
    let strat4 = StrategyConfig::new(4, 2, Distribution::Cyclic, 8);
    let engine = PhasedEngine::sim(SimConfig::default());
    let t1 = engine.run(&problem.spec, &strat1).unwrap().time_cycles;
    let t4 = engine.run(&problem.spec, &strat4).unwrap().time_cycles;
    let ratio = t4 as f64 / t1 as f64;
    assert!(
        (3.0..5.0).contains(&ratio),
        "time should scale ~4x with sweeps, got {ratio}"
    );
}
