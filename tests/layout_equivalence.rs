//! Property suite for the native fast path: the phase-sorted CSR
//! iteration layout plus pooled zero-copy region handoff
//! ([`LoopLayout::Flat`], the default) must be **bit-identical** to the
//! naive nested plan walk ([`LoopLayout::Nested`]) on all three paper
//! workloads — on the simulator AND on the native backend running
//! under a lossless fault plan (delays, reorders, duplicate
//! deliveries). The fault arm doubles as a dedup check on the SPSC
//! lanes: a duplicated deposit that slipped through, or a lost one,
//! would shift the reduction sums and break exact equality.

use std::sync::Arc;
use std::time::Duration;

use earth_model::native::NativeConfig;
use earth_model::sim::SimConfig;
use earth_model::FaultConfig;
use harness::prop::{check, Config, Gen};
use harness::prop_assert;
use irred::{
    Distribution, EdgeKernel, GatherEngine, LoopLayout, PhasedEngine, PhasedSpec, ReductionEngine,
    StrategyConfig,
};
use kernels::{EulerProblem, MolDynProblem, MvmProblem};
use workloads::{Mesh, MolDyn, SparseMatrix};

#[derive(Debug, Clone)]
struct Case {
    size: usize,
    procs: usize,
    k: usize,
    dist: Distribution,
    sweeps: usize,
    seed: u64,
}

fn gen_case(g: &mut Gen) -> Case {
    Case {
        size: g.usize_incl(0, 2),
        procs: g.usize_incl(1, 6),
        k: g.usize_incl(1, 3),
        dist: if g.prob(0.5) {
            Distribution::Cyclic
        } else {
            Distribution::Block
        },
        sweeps: g.usize_incl(1, 3),
        seed: g.u64_any(),
    }
}

fn native_cfg(fault_seed: u64) -> NativeConfig {
    NativeConfig {
        watchdog: Duration::from_secs(30),
        faults: Some(FaultConfig::lossless(fault_seed)),
        starved_is_error: true,
        host_threads: None,
    }
}

/// Run one phased spec all four ways (sim/native × flat/nested) and
/// demand exact `f64` equality of every reduction and read array.
fn assert_layouts_agree<K: EdgeKernel>(spec: &PhasedSpec<K>, c: &Case) -> Result<(), String> {
    let flat = StrategyConfig::new(c.procs, c.k, c.dist, c.sweeps);
    let nested = flat.with_layout(LoopLayout::Nested);
    let sim = PhasedEngine::sim(SimConfig::default());
    let sf = sim.run(spec, &flat).map_err(|e| format!("{e}"))?;
    let sn = sim.run(spec, &nested).map_err(|e| format!("{e}"))?;
    prop_assert!(
        sf.values == sn.values && sf.read == sn.read,
        "sim flat != sim nested for {c:?}"
    );
    let nf = PhasedEngine::native(native_cfg(c.seed))
        .run(spec, &flat)
        .map_err(|e| format!("{e}"))?;
    prop_assert!(
        nf.values == sf.values && nf.read == sf.read,
        "native flat (lossless faults) != sim for {c:?}"
    );
    let nn = PhasedEngine::native(native_cfg(c.seed))
        .run(spec, &nested)
        .map_err(|e| format!("{e}"))?;
    prop_assert!(
        nn.values == sf.values && nn.read == sf.read,
        "native nested (lossless faults) != sim for {c:?}"
    );
    Ok(())
}

#[test]
fn moldyn_flat_equals_nested() {
    check(
        "moldyn_flat_equals_nested",
        Config::cases(64),
        gen_case,
        |c| {
            // 2–3 fcc cells: 32–108 molecules, enough for portions on up
            // to 6 nodes while keeping 4 runs per case cheap.
            let cells = 2 + c.size.min(1);
            let cutoff = 1.2 + 0.3 * c.size as f64;
            let problem = MolDynProblem::from_config(MolDyn::fcc(cells, cutoff));
            assert_layouts_agree(&problem.spec, c)
        },
    );
}

#[test]
fn euler_flat_equals_nested() {
    check(
        "euler_flat_equals_nested",
        Config::cases(64),
        gen_case,
        |c| {
            let nodes = 48 + 40 * c.size;
            let edges = nodes * (3 + c.size);
            let problem =
                EulerProblem::from_mesh(Mesh::generate3d(nodes, edges, c.seed), c.seed ^ 7);
            assert_layouts_agree(&problem.spec, c)
        },
    );
}

#[test]
fn mvm_flat_equals_nested() {
    check("mvm_flat_equals_nested", Config::cases(64), gen_case, |c| {
        let rows = 24 + 32 * c.size;
        let nnz = rows * (3 + c.size);
        let problem =
            MvmProblem::from_matrix(Arc::new(SparseMatrix::random(rows, rows, nnz, c.seed)));
        let flat = StrategyConfig::new(c.procs, c.k, c.dist, c.sweeps);
        let nested = flat.with_layout(LoopLayout::Nested);
        let sim = GatherEngine::sim(SimConfig::default());
        let sf = sim.run(&problem.spec, &flat).map_err(|e| format!("{e}"))?;
        let sn = sim
            .run(&problem.spec, &nested)
            .map_err(|e| format!("{e}"))?;
        prop_assert!(sf.values == sn.values, "sim flat != sim nested for {c:?}");
        let nf = GatherEngine::native(native_cfg(c.seed))
            .run(&problem.spec, &flat)
            .map_err(|e| format!("{e}"))?;
        prop_assert!(
            nf.values == sf.values,
            "native flat (lossless faults) != sim for {c:?}"
        );
        let nn = GatherEngine::native(native_cfg(c.seed))
            .run(&problem.spec, &nested)
            .map_err(|e| format!("{e}"))?;
        prop_assert!(
            nn.values == sf.values,
            "native nested (lossless faults) != sim for {c:?}"
        );
        Ok(())
    });
}
