//! Property suite for the native fast path: the phase-sorted CSR
//! iteration layout plus pooled zero-copy region handoff
//! ([`LoopLayout::Flat`], the default) must be **bit-identical** to the
//! naive nested plan walk ([`LoopLayout::Nested`]) on all three paper
//! workloads — on the simulator AND on the native backend running
//! under a lossless fault plan (delays, reorders, duplicate
//! deliveries). The fault arm doubles as a dedup check on the SPSC
//! lanes: a duplicated deposit that slipped through, or a lost one,
//! would shift the reduction sums and break exact equality.

use std::sync::Arc;
use std::time::Duration;

use earth_model::native::NativeConfig;
use earth_model::sim::SimConfig;
use earth_model::FaultConfig;
use harness::prop::{check, Config, Gen};
use harness::prop_assert;
use irred::{
    Distribution, EdgeKernel, ExecutionConfig, GatherEngine, LoopLayout, PhasedEngine, PhasedSpec,
    ReductionEngine, StrategyConfig, Tuning,
};
use kernels::{EulerProblem, FamilyProblem, MolDynProblem, MvmProblem};
use workloads::{HotKeyScatter, Mesh, MolDyn, PicDeck, PowerLawGraph, SparseMatrix};

#[derive(Debug, Clone)]
struct Case {
    size: usize,
    procs: usize,
    k: usize,
    dist: Distribution,
    sweeps: usize,
    seed: u64,
}

fn gen_case(g: &mut Gen) -> Case {
    Case {
        size: g.usize_incl(0, 2),
        procs: g.usize_incl(1, 6),
        k: g.usize_incl(1, 3),
        dist: if g.prob(0.5) {
            Distribution::Cyclic
        } else {
            Distribution::Block
        },
        sweeps: g.usize_incl(1, 3),
        seed: g.u64_any(),
    }
}

fn native_cfg(fault_seed: u64) -> NativeConfig {
    NativeConfig {
        watchdog: Duration::from_secs(30),
        faults: Some(FaultConfig::lossless(fault_seed)),
        starved_is_error: true,
        host_threads: None,
        deadline: None,
    }
}

/// The nested (naive plan walk) layout, requested through the Tuning API.
fn nested() -> Tuning {
    Tuning::new().layout(LoopLayout::Nested)
}

/// Run one phased spec all four ways (sim/native × flat/nested) and
/// demand exact `f64` equality of every reduction and read array.
fn assert_layouts_agree<K: EdgeKernel>(spec: &PhasedSpec<K>, c: &Case) -> Result<(), String> {
    let strat = StrategyConfig::new(c.procs, c.k, c.dist, c.sweeps);
    let sf = PhasedEngine::sim(SimConfig::default())
        .run(spec, &strat)
        .map_err(|e| format!("{e}"))?;
    let sn = PhasedEngine::new(ExecutionConfig::sim(SimConfig::default()).with_tuning(nested()))
        .run(spec, &strat)
        .map_err(|e| format!("{e}"))?;
    prop_assert!(
        sf.values == sn.values && sf.read == sn.read,
        "sim flat != sim nested for {c:?}"
    );
    let nf = PhasedEngine::native(native_cfg(c.seed))
        .run(spec, &strat)
        .map_err(|e| format!("{e}"))?;
    prop_assert!(
        nf.values == sf.values && nf.read == sf.read,
        "native flat (lossless faults) != sim for {c:?}"
    );
    let nn = PhasedEngine::new(ExecutionConfig::native(native_cfg(c.seed)).with_tuning(nested()))
        .run(spec, &strat)
        .map_err(|e| format!("{e}"))?;
    prop_assert!(
        nn.values == sf.values && nn.read == sf.read,
        "native nested (lossless faults) != sim for {c:?}"
    );
    Ok(())
}

#[test]
fn moldyn_flat_equals_nested() {
    check(
        "moldyn_flat_equals_nested",
        Config::cases_quick(64),
        gen_case,
        |c| {
            // 2–3 fcc cells: 32–108 molecules, enough for portions on up
            // to 6 nodes while keeping 4 runs per case cheap.
            let cells = 2 + c.size.min(1);
            let cutoff = 1.2 + 0.3 * c.size as f64;
            let problem = MolDynProblem::from_config(MolDyn::fcc(cells, cutoff));
            assert_layouts_agree(&problem.spec, c)
        },
    );
}

#[test]
fn euler_flat_equals_nested() {
    check(
        "euler_flat_equals_nested",
        Config::cases_quick(64),
        gen_case,
        |c| {
            let nodes = 48 + 40 * c.size;
            let edges = nodes * (3 + c.size);
            let problem =
                EulerProblem::from_mesh(Mesh::generate3d(nodes, edges, c.seed), c.seed ^ 7);
            assert_layouts_agree(&problem.spec, c)
        },
    );
}

#[test]
fn powerlaw_flat_equals_nested() {
    check(
        "powerlaw_flat_equals_nested",
        Config::cases_quick(64),
        gen_case,
        |c| {
            let nodes = 32 + 32 * c.size;
            let edges = nodes * (3 + c.size);
            let alpha = 0.5 + (c.seed % 4) as f64 * 0.7; // sweep mild → severe skew
            let g =
                PowerLawGraph::generate(nodes, edges, alpha, c.seed).map_err(|e| format!("{e}"))?;
            let p = FamilyProblem::from_family(g.to_family(c.seed));
            assert_layouts_agree(&p.spec, c)
        },
    );
}

#[test]
fn hotkey_flat_equals_nested() {
    check(
        "hotkey_flat_equals_nested",
        Config::cases_quick(64),
        gen_case,
        |c| {
            let keys = 48 + 32 * c.size;
            let rows = 200 + 150 * c.size;
            let hot_frac = [0.0, 0.6, 0.95, 0.99][(c.seed % 4) as usize];
            let d = HotKeyScatter::generate(keys, rows, 2, hot_frac, 1 + c.size, c.seed)
                .map_err(|e| format!("{e}"))?;
            let p = FamilyProblem::from_family(d.to_family(c.seed));
            assert_layouts_agree(&p.spec, c)
        },
    );
}

/// The PIC family through the churn path: both layouts must stay
/// bit-identical to each other *after* `apply_updates` re-targets the
/// deposits — on the simulator and on the faulted native backend.
#[test]
fn pic_flat_equals_nested_across_churn() {
    check(
        "pic_flat_equals_nested_across_churn",
        Config::cases_quick(64),
        gen_case,
        |c| {
            let cells = 24 + 16 * c.size;
            let particles = 120 + 120 * c.size;
            let d =
                PicDeck::generate(cells, particles, 2, 0.4, c.seed).map_err(|e| format!("{e}"))?;
            let strat = StrategyConfig::new(c.procs, c.k, c.dist, c.sweeps);
            let engine = PhasedEngine::sim(SimConfig::default());
            let engine_n =
                PhasedEngine::new(ExecutionConfig::sim(SimConfig::default()).with_tuning(nested()));
            let problem = FamilyProblem::from_family(d.initial());
            let mut pf = engine
                .prepare(&problem.spec, &strat)
                .map_err(|e| format!("{e}"))?;
            let mut pn = engine_n
                .prepare(&problem.spec, &strat)
                .map_err(|e| format!("{e}"))?;
            let mut ws = irred::Workspace::new();
            for step in 0..d.steps {
                let of = engine
                    .execute(&mut pf, &mut ws)
                    .map_err(|e| format!("{e}"))?;
                let on = engine_n
                    .execute(&mut pn, &mut ws)
                    .map_err(|e| format!("{e}"))?;
                prop_assert!(
                    of.values == on.values,
                    "sim flat != sim nested at churn step {step} for {c:?}"
                );
                // The churned spec, run cold on the faulted native
                // backend in both layouts, must match too.
                let churned = FamilyProblem::from_family(d.family_at(step));
                let nf = PhasedEngine::native(native_cfg(c.seed ^ step as u64))
                    .run(&churned.spec, &strat)
                    .map_err(|e| format!("{e}"))?;
                prop_assert!(
                    nf.values == of.values,
                    "native flat != churned sim at step {step} for {c:?}"
                );
                let updates = d.step_updates(step);
                pf.apply_updates(&updates).map_err(|e| format!("{e}"))?;
                pn.apply_updates(&updates).map_err(|e| format!("{e}"))?;
            }
            Ok(())
        },
    );
}

#[test]
fn mvm_flat_equals_nested() {
    check(
        "mvm_flat_equals_nested",
        Config::cases_quick(64),
        gen_case,
        |c| {
            let rows = 24 + 32 * c.size;
            let nnz = rows * (3 + c.size);
            let problem =
                MvmProblem::from_matrix(Arc::new(SparseMatrix::random(rows, rows, nnz, c.seed)));
            let strat = StrategyConfig::new(c.procs, c.k, c.dist, c.sweeps);
            let sf = GatherEngine::sim(SimConfig::default())
                .run(&problem.spec, &strat)
                .map_err(|e| format!("{e}"))?;
            let sn =
                GatherEngine::new(ExecutionConfig::sim(SimConfig::default()).with_tuning(nested()))
                    .run(&problem.spec, &strat)
                    .map_err(|e| format!("{e}"))?;
            prop_assert!(sf.values == sn.values, "sim flat != sim nested for {c:?}");
            let nf = GatherEngine::native(native_cfg(c.seed))
                .run(&problem.spec, &strat)
                .map_err(|e| format!("{e}"))?;
            prop_assert!(
                nf.values == sf.values,
                "native flat (lossless faults) != sim for {c:?}"
            );
            let nn = GatherEngine::new(
                ExecutionConfig::native(native_cfg(c.seed)).with_tuning(nested()),
            )
            .run(&problem.spec, &strat)
            .map_err(|e| format!("{e}"))?;
            prop_assert!(
                nn.values == sf.values,
                "native nested (lossless faults) != sim for {c:?}"
            );
            Ok(())
        },
    );
}
