//! Golden-oracle property suite for the skewed workload families.
//!
//! Every generated deck — power-law graph, hot-key scatter-add,
//! particle-in-cell — is checked against the straight-line sequential
//! oracle ([`workloads::oracle`]) **bit for bit** on every engine that
//! can run it: the sequential reference, the inspector/executor
//! baseline, the phased executor (simulator and native backend, flat
//! and nested layouts, the native runs under a lossless fault plan),
//! and the gather engine via the sparse-matrix re-expression of each
//! reduction array. Family weights are integer-valued, so summation
//! order cannot perturb the bits: any lost, duplicated, or misrouted
//! contribution fails `assert_eq!` on the raw `f64`s.
//!
//! The suite also records the inspector statistics (portion histogram,
//! max/mean refs, skew coefficient) for every deck and checks their
//! invariants, exercises the particle-in-cell churn path through
//! `PreparedPhased::apply_updates` against freshly prepared plans, and
//! pins `StrategyConfig::auto_select` on the skew endpoints.

use std::time::Duration;

use earth_model::native::NativeConfig;
use earth_model::sim::SimConfig;
use earth_model::FaultConfig;
use harness::prop::{check, Config, Gen};
use harness::prop_assert;
use irred::baseline::IeEngine;
use irred::{
    Distribution, EngineChoice, ExecutionConfig, GatherEngine, LoopLayout, PhasedEngine,
    ReductionEngine, SeqEngine, StrategyConfig, Tuning, Workspace,
};
use kernels::FamilyProblem;
use workloads::{oracle_reduce, FamilySpec, HotKeyScatter, PicDeck, PowerLawGraph};

#[derive(Debug, Clone)]
struct Case {
    procs: usize,
    k: usize,
    dist: Distribution,
    sweeps: usize,
    /// Size scale 0..=2.
    size: usize,
    /// Skew scale 0..=3 (family-specific meaning).
    skew: usize,
    seed: u64,
}

fn gen_case(g: &mut Gen) -> Case {
    Case {
        procs: g.usize_incl(1, 6),
        k: g.usize_incl(1, 3),
        dist: if g.prob(0.5) {
            Distribution::Cyclic
        } else {
            Distribution::Block
        },
        sweeps: g.usize_incl(1, 2),
        size: g.usize_incl(0, 2),
        skew: g.usize_incl(0, 3),
        seed: g.u64_any(),
    }
}

fn native_cfg(fault_seed: u64) -> NativeConfig {
    NativeConfig {
        watchdog: Duration::from_secs(30),
        faults: Some(FaultConfig::lossless(fault_seed)),
        starved_is_error: true,
        host_threads: None,
        deadline: None,
    }
}

/// Run one family deck through every engine × backend × layout and
/// demand exact equality with the golden oracle.
fn assert_family_matches_oracle(family: &FamilySpec, c: &Case) -> Result<(), String> {
    family.validate().map_err(|e| format!("generator: {e}"))?;
    let want = oracle_reduce(family);
    let problem = FamilyProblem::from_family(family.clone());
    let name = &problem.family.name;
    let flat = StrategyConfig::new(c.procs, c.k, c.dist, c.sweeps);
    let nested = Tuning::new().layout(LoopLayout::Nested);
    let sim = SimConfig::default();

    let seq = SeqEngine::new(sim)
        .run(&problem.spec, &flat)
        .map_err(|e| format!("seq: {e}"))?;
    prop_assert!(seq.values == want, "{name}: seq != oracle for {c:?}");

    let ie = IeEngine::sim(sim)
        .run(&problem.spec, &flat)
        .map_err(|e| format!("ie: {e}"))?;
    prop_assert!(ie.values == want, "{name}: ie != oracle for {c:?}");

    // Phased: prepare once so the statistics surface is exercised, then
    // check both layouts on both backends.
    let phased = PhasedEngine::sim(sim);
    let mut prepared = phased
        .prepare(&problem.spec, &flat)
        .map_err(|e| format!("prepare: {e}"))?;
    let stats = prepared.plan_stats();
    let m = problem.family.num_refs();
    prop_assert!(
        stats.total_refs == (problem.family.num_iterations() * m) as u64,
        "{name}: stats.total_refs miscounts for {c:?}"
    );
    prop_assert!(
        stats.portion_refs.iter().sum::<u64>() == stats.total_refs,
        "{name}: portion histogram does not sum to total for {c:?}"
    );
    prop_assert!(
        stats.portion_refs.len() == flat.phases_per_sweep(),
        "{name}: histogram length != k·P for {c:?}"
    );
    prop_assert!(
        stats.distinct_elements <= problem.family.num_elements,
        "{name}: distinct overflow for {c:?}"
    );
    prop_assert!(stats.skew >= 1.0 - 1e-12, "{name}: skew below 1 for {c:?}");
    let mut ws = Workspace::new();
    let ps = phased
        .execute(&mut prepared, &mut ws)
        .map_err(|e| format!("phased sim: {e}"))?;
    prop_assert!(ps.values == want, "{name}: phased sim != oracle for {c:?}");

    let pn = PhasedEngine::new(ExecutionConfig::sim(sim).with_tuning(nested))
        .run(&problem.spec, &flat)
        .map_err(|e| format!("phased sim nested: {e}"))?;
    prop_assert!(
        pn.values == want,
        "{name}: phased sim nested != oracle for {c:?}"
    );

    let nf = PhasedEngine::native(native_cfg(c.seed))
        .run(&problem.spec, &flat)
        .map_err(|e| format!("phased native flat: {e}"))?;
    prop_assert!(
        nf.values == want,
        "{name}: phased native flat (lossless faults) != oracle for {c:?}"
    );
    let nn =
        PhasedEngine::new(ExecutionConfig::native(native_cfg(c.seed ^ 0xA5)).with_tuning(nested))
            .run(&problem.spec, &flat)
            .map_err(|e| format!("phased native nested: {e}"))?;
    prop_assert!(
        nn.values == want,
        "{name}: phased native nested (lossless faults) != oracle for {c:?}"
    );

    // Gather re-expression: every reduction array as y = A·w on the
    // simulator, array 0 additionally on the native backend.
    for (a, want_a) in want.iter().enumerate().take(problem.family.num_arrays()) {
        let gspec = problem.gather_formulation(a);
        let gs = GatherEngine::sim(sim)
            .run(&gspec, &flat)
            .map_err(|e| format!("gather sim array {a}: {e}"))?;
        prop_assert!(
            &gs.values[0] == want_a,
            "{name}: gather sim != oracle, array {a}, {c:?}"
        );
        if a == 0 {
            let gn = GatherEngine::native(native_cfg(c.seed ^ 0x5A))
                .run(&gspec, &flat)
                .map_err(|e| format!("gather native: {e}"))?;
            prop_assert!(
                &gn.values[0] == want_a,
                "{name}: gather native != oracle, array {a}, {c:?}"
            );
        }
    }
    Ok(())
}

#[test]
fn powerlaw_family_matches_oracle() {
    check(
        "powerlaw_family_matches_oracle",
        Config::cases_quick(64),
        gen_case,
        |c| {
            let nodes = 32 + 32 * c.size;
            let edges = nodes * (3 + 2 * c.size);
            let alpha = [0.0, 0.8, 1.5, 2.5][c.skew];
            let g = PowerLawGraph::generate(nodes, edges, alpha, c.seed)
                .map_err(|e| format!("generate: {e}"))?;
            assert_family_matches_oracle(&g.to_family(c.seed), c)
        },
    );
}

#[test]
fn hotkey_family_matches_oracle() {
    check(
        "hotkey_family_matches_oracle",
        Config::cases_quick(64),
        gen_case,
        |c| {
            let keys = 48 + 48 * c.size;
            let rows = 200 + 200 * c.size;
            let hot_frac = [0.0, 0.5, 0.9, 0.99][c.skew];
            let d = HotKeyScatter::generate(keys, rows, 1 + c.skew, hot_frac, 1 + c.size, c.seed)
                .map_err(|e| format!("generate: {e}"))?;
            assert_family_matches_oracle(&d.to_family(c.seed), c)
        },
    );
}

#[test]
fn pic_family_matches_oracle_at_every_step() {
    check(
        "pic_family_matches_oracle",
        Config::cases_quick(64),
        gen_case,
        |c| {
            let cells = 24 + 24 * c.size;
            let particles = 150 + 150 * c.size;
            let churn = [0.0, 0.1, 0.4, 0.8][c.skew];
            let d = PicDeck::generate(cells, particles, 2, churn, c.seed)
                .map_err(|e| format!("generate: {e}"))?;
            // Step 0 through the full engine matrix; later steps are
            // covered by the churn test below at full depth.
            assert_family_matches_oracle(&d.initial(), c)
        },
    );
}

/// The particle-in-cell churn path: feeding each step's re-targeted
/// deposits through `apply_updates` must give bit-identical values to a
/// freshly prepared plan of the post-churn family — and both must match
/// the oracle.
#[test]
fn pic_churn_through_apply_updates_matches_fresh_prepare() {
    check(
        "pic_churn_matches_fresh_prepare",
        Config::cases_quick(32),
        gen_case,
        |c| {
            let cells = 24 + 24 * c.size;
            let particles = 150 + 150 * c.size;
            let churn = [0.05, 0.1, 0.4, 0.8][c.skew];
            let d = PicDeck::generate(cells, particles, 3, churn, c.seed)
                .map_err(|e| format!("generate: {e}"))?;
            let strat = StrategyConfig::new(c.procs, c.k, c.dist, c.sweeps);
            let engine = PhasedEngine::sim(SimConfig::default());
            let problem = FamilyProblem::from_family(d.initial());
            let mut prepared = engine
                .prepare(&problem.spec, &strat)
                .map_err(|e| format!("prepare: {e}"))?;
            let mut ws = Workspace::new();
            for step in 0..d.steps {
                let out = engine
                    .execute(&mut prepared, &mut ws)
                    .map_err(|e| format!("execute step {step}: {e}"))?;
                let fam = d.family_at(step);
                let want = oracle_reduce(&fam);
                prop_assert!(
                    out.values == want,
                    "incremental != oracle at step {step} for {c:?}"
                );
                let fresh = engine
                    .run(&FamilyProblem::from_family(fam).spec, &strat)
                    .map_err(|e| format!("fresh run step {step}: {e}"))?;
                prop_assert!(
                    out.values == fresh.values,
                    "incremental != fresh prepare at step {step} for {c:?}"
                );
                prepared
                    .apply_updates(&d.step_updates(step))
                    .map_err(|e| format!("apply_updates step {step}: {e}"))?;
            }
            Ok(())
        },
    );
}

/// The skew endpoints of the generated sweep: a flat deck must keep the
/// rotating-portions strategy, an extreme hot-key deck must switch to
/// the inspector/executor — driven purely by the recorded statistics.
#[test]
fn auto_select_picks_by_skew_endpoint() {
    let strat = StrategyConfig::new(8, 2, Distribution::Cyclic, 1);

    let flat = HotKeyScatter::generate(512, 8_000, 1, 0.0, 1, 42)
        .unwrap()
        .to_family(42);
    let flat_stats = FamilyProblem::from_family(flat.clone());
    let prepared = PhasedEngine::sim(SimConfig::default())
        .prepare(&flat_stats.spec, &strat)
        .unwrap();
    let s = prepared.plan_stats();
    assert!(s.skew < 2.0, "flat deck skew {}", s.skew);
    let auto = strat.auto_select(&s);
    assert_eq!(auto.engine, EngineChoice::RotatingPortions);
    // The phased pick recommends the full performance bundle.
    assert_eq!(auto.tuning, Tuning::auto());

    let hot = HotKeyScatter::generate(512, 8_000, 1, 0.995, 1, 42)
        .unwrap()
        .to_family(42);
    let hot_stats = FamilyProblem::from_family(hot.clone());
    let prepared = PhasedEngine::sim(SimConfig::default())
        .prepare(&hot_stats.spec, &strat)
        .unwrap();
    let s = prepared.plan_stats();
    assert!(s.skew > 8.0, "hot deck skew {}", s.skew);
    let auto = strat.auto_select(&s);
    assert_eq!(auto.engine, EngineChoice::InspectorExecutor);
    // The IE engine has no phase-local iteration space to tile.
    assert_eq!(auto.tuning.tile, irred::TileChoice::Off);
}
