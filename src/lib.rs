//! # earth-irred — umbrella crate
//!
//! Reproduction of *"Compiler and Runtime Support for Irregular
//! Reductions on a Multithreaded Architecture"* (IPPS 2002) in Rust.
//! This crate ties the workspace together for the runnable examples and
//! the cross-crate integration tests; the substance lives in the member
//! crates:
//!
//! * [`earth_model`] — the EARTH execution model (fibers, sync slots,
//!   split-phase operations) with native-thread and discrete-event
//!   simulator backends;
//! * [`memsim`] — the cache / memory cost model behind the simulator;
//! * [`lightinspector`] — the LightInspector runtime (plus the
//!   incremental variant for adaptive problems);
//! * [`threadedc`] — the mini EARTH-C compiler (sections, reference
//!   groups, loop fission, phased code generation);
//! * [`irred`] — the rotating-portion phased execution strategy (the
//!   paper's core contribution) and baselines;
//! * [`workloads`] — dataset generators at the paper's sizes;
//! * [`kernels`] — `mvm`, `euler`, and `moldyn`.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use earth_model;
pub use irred;
pub use kernels;
pub use lightinspector;
pub use memsim;
pub use threadedc;
pub use workloads;
