#!/usr/bin/env bash
# Tier-1 verification, hermetically: the workspace must build, test, and
# lint clean with no network access and no external crates. This is the
# same gate CI runs (.github/workflows/ci.yml); run it locally before
# pushing.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release

echo "== test =="
cargo test -q --workspace

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "ci.sh: all green"
