#!/usr/bin/env bash
# Tier-1 verification, hermetically: the workspace must build, test, and
# lint clean with no network access and no external crates. This is the
# same gate CI runs (.github/workflows/ci.yml); run it locally before
# pushing.
#
# Usage:
#   ./ci.sh          # tier1 + faults (everything)
#   ./ci.sh tier1    # fmt --check + build + full test suite + clippy
#   ./ci.sh faults   # fault-injection / recovery sweeps only
#   ./ci.sh perf     # quick native-bench subset vs checked-in baseline;
#                    # fails on >20 % median regression on any workload
#                    # headline OR any per-core-count curve point,
#                    # reproduced on 3 consecutive runs (host-noise
#                    # guard), then smoke-checks the schema-2 sweep
#                    # fields are present in the quick report
#   ./ci.sh workloads # skewed-family golden-oracle sweeps (3 fixed
#                    # seeds + one randomized pass) plus the strategy
#                    # auto-selection check on the deterministic sim
#   ./ci.sh server   # daemon robustness: frame-decoder fuzz (3 fixed
#                    # seeds + one randomized pass), the chaos-client
#                    # soak, and a quick bench_server smoke — all under
#                    # the hard timeout (the daemon's contract is
#                    # "typed error, never a hang")
#   ./ci.sh simd     # `--features simd` lane: build + the engine tests
#                    # + the vector-vs-scalar bit-identity property
#                    # suite with the core::arch kernels enabled
#   ./ci.sh compiler # threadedc front door: the compiled-vs-interpreter
#                    # property suite (3 fixed seeds + one randomized
#                    # pass), the source-over-the-wire server tests, a
#                    # CLI smoke over the checked-in fixtures, and the
#                    # compile-cache hit/miss gate via bench_compile
#   ./ci.sh sim      # parallel sim core: serial ≡ parallel equivalence
#                    # suite (3 fixed seeds + one randomized pass), then
#                    # a 256-proc quick scaling smoke via bench_sim
#                    # --check (byte-identical cycles/values across
#                    # host_threads), all under the hard timeout
#
# Every test invocation runs under a hard timeout: a hang anywhere —
# including in the code under test, whose whole contract is "typed error,
# never a hang" — fails the pipeline instead of wedging it.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

# Hard ceiling per test invocation (seconds). SIGKILL 30 s after the
# polite SIGTERM in case a wedged thread ignores it.
TEST_TIMEOUT="${CI_TEST_TIMEOUT:-900}"

run_tests() {
    timeout -k 30 "$TEST_TIMEOUT" "$@"
}

tier1() {
    echo "== fmt (--check) =="
    cargo fmt --all -- --check

    echo "== build (release) =="
    cargo build --release

    echo "== test =="
    run_tests cargo test -q --workspace

    echo "== clippy (-D warnings) =="
    cargo clippy --workspace --all-targets -- -D warnings

    echo "== trace smoke (fig5 --trace) =="
    # The --trace path must emit a phase-timeline table and a Chrome
    # trace_event JSON that passes the hand validator (dump_trace
    # panics on invalid JSON, so a non-empty file implies it parsed).
    rm -f bench_results/fig5_trace.json
    # Capture, then grep: `| grep -q` would close the pipe at first
    # match and SIGPIPE the still-printing binary.
    local trace_out
    trace_out=$(REPRO_QUICK=1 run_tests cargo run --release -q -p repro-bench --bin fig5 -- --trace)
    grep -q "phase timeline (fig5)" <<<"$trace_out"
    test -s bench_results/fig5_trace.json
}

faults() {
    # Deterministic replay: the same base seed must inject the same
    # faults. Three fixed seeds, then one randomized pass to keep
    # widening coverage over time (its seeds print on failure for
    # replay via PROP_SEED).
    for seed in 1 2 3; do
        echo "== fault injection (PROP_BASE_SEED=$seed) =="
        PROP_BASE_SEED=$seed run_tests cargo test -q -p earth-model --test fault_injection
        PROP_BASE_SEED=$seed run_tests cargo test -q -p irred --test recovery
    done

    echo "== fault injection (randomized pass) =="
    rand_seed=$(od -An -N8 -tu8 /dev/urandom | tr -d ' ')
    echo "   PROP_BASE_SEED=$rand_seed"
    PROP_BASE_SEED="$rand_seed" run_tests cargo test -q -p earth-model --test fault_injection
    PROP_BASE_SEED="$rand_seed" run_tests cargo test -q -p irred --test recovery

    # The watchdog deadline is wall-clock: verify it also holds without
    # debug-build slack.
    echo "== watchdog deadline (release) =="
    run_tests cargo test -q --release -p earth-model --test fault_injection watchdog
}

workloads() {
    # The golden-oracle property suite for the skewed workload families:
    # three fixed base seeds for deterministic replay, then one
    # randomized pass to keep widening coverage (its seed prints on
    # failure for replay via PROP_SEED).
    for seed in 1 2 3; do
        echo "== workload families (PROP_BASE_SEED=$seed) =="
        PROP_BASE_SEED=$seed run_tests cargo test -q -p earth-irred --test workload_families
    done

    echo "== workload families (randomized pass) =="
    rand_seed=$(od -An -N8 -tu8 /dev/urandom | tr -d ' ')
    echo "   PROP_BASE_SEED=$rand_seed"
    PROP_BASE_SEED="$rand_seed" run_tests cargo test -q -p earth-irred --test workload_families

    # The skew sweep runs on the metered simulator — cycle counts are
    # deterministic, so this check is immune to host noise: auto_select
    # must pick the empirically faster strategy at the no-skew and
    # extreme-skew endpoints.
    echo "== strategy auto-selection (skew sweep, sim) =="
    REPRO_QUICK=1 run_tests cargo run --release -q -p repro-bench --bin bench_workloads -- --check
}

server() {
    # Frame-decoder fuzz: three fixed base seeds for deterministic
    # replay, then one randomized pass to keep widening coverage (its
    # seed prints on failure for replay via PROP_SEED).
    for seed in 1 2 3; do
        echo "== server decoder fuzz (PROP_BASE_SEED=$seed) =="
        PROP_BASE_SEED=$seed run_tests cargo test -q -p server --test protocol_fuzz
    done

    echo "== server decoder fuzz (randomized pass) =="
    rand_seed=$(od -An -N8 -tu8 /dev/urandom | tr -d ' ')
    echo "   PROP_BASE_SEED=$rand_seed"
    PROP_BASE_SEED="$rand_seed" run_tests cargo test -q -p server --test protocol_fuzz

    # Chaos soak: concurrent healthy + adversarial tenants against a
    # live daemon; bit-identity, backpressure, deadlines, slowloris,
    # clean shutdown. The hard timeout is the hang detector.
    echo "== server chaos soak =="
    run_tests cargo test -q -p server --test soak

    # End-to-end smoke over a real socket with verification on: an
    # in-process daemon, two tenants plus a chaos neighbour, every
    # reply checked bit-identical against a direct engine run.
    echo "== server bench smoke (--check --chaos) =="
    REPRO_QUICK=1 run_tests cargo run --release -q -p repro-bench --bin bench_server -- \
        --check --chaos
}

compiler() {
    # The compiler property suite (compiled execution vs the
    # interpreter, bit-identity across engines, fission, gather
    # cross-check) and the server's SubmitSource path: three fixed base
    # seeds for deterministic replay, then one randomized pass to keep
    # widening coverage (its seed prints on failure for replay via
    # PROP_SEED).
    for seed in 1 2 3; do
        echo "== compiler pipeline (PROP_BASE_SEED=$seed) =="
        PROP_BASE_SEED=$seed run_tests cargo test -q -p earth-irred --test compiler_pipeline
        PROP_BASE_SEED=$seed run_tests cargo test -q -p server --test source_jobs
    done

    echo "== compiler pipeline (randomized pass) =="
    rand_seed=$(od -An -N8 -tu8 /dev/urandom | tr -d ' ')
    echo "   PROP_BASE_SEED=$rand_seed"
    PROP_BASE_SEED="$rand_seed" run_tests cargo test -q -p earth-irred --test compiler_pipeline
    PROP_BASE_SEED="$rand_seed" run_tests cargo test -q -p server --test source_jobs

    # CLI smoke over the checked-in fixtures: the good programs must
    # report plans (multigroup via automatic fission), the bad one must
    # exit non-zero with a spanned diagnostic on stderr.
    echo "== threadedc CLI smoke =="
    local cli_out
    cli_out=$(run_tests cargo run --release -q -p threadedc --bin threadedc -- \
        --procs 4 --k 2 crates/threadedc/testdata/fig1.tc)
    grep -q "flat plan" <<<"$cli_out"
    cli_out=$(run_tests cargo run --release -q -p threadedc --bin threadedc -- \
        --run crates/threadedc/testdata/multigroup.tc)
    grep -q "fissioned into 3 loops" <<<"$cli_out"
    grep -q "2 phased loop(s)" <<<"$cli_out"
    if cli_out=$(run_tests cargo run --release -q -p threadedc --bin threadedc -- \
        crates/threadedc/testdata/bad_nonreduction.tc 2>&1); then
        echo "compiler gate: bad_nonreduction.tc unexpectedly compiled" >&2
        return 1
    fi
    grep -q "line 3" <<<"$cli_out"
    grep -q "not a recognized reduction" <<<"$cli_out"

    # Compile-cache gate: every reply bit-identical to the interpreter,
    # and the daemon's hit/miss counters must account for exactly one
    # miss per distinct program.
    echo "== compile-cache gate (bench_compile --check) =="
    REPRO_QUICK=1 run_tests cargo run --release -q -p repro-bench --bin bench_compile -- --check
}

perf() {
    # Quick-mode native benchmark against the checked-in quick baseline
    # (bench_results/BENCH_native_quick.json). >20 % median regression on
    # any workload fails the pipeline — but only if it reproduces on
    # three consecutive runs: shared CI hosts have wall-clock noise
    # bands wider than the tolerance, and a real regression is sticky
    # where a noisy neighbour is not. Each run rewrites the quick
    # report, so the committed baseline is pinned to a temp copy first
    # and every attempt compares against that.
    echo "== perf (quick native bench vs baseline) =="
    local pinned
    pinned=$(mktemp)
    cp bench_results/BENCH_native_quick.json "$pinned"
    local attempt
    for attempt in 1 2 3; do
        if REPRO_QUICK=1 run_tests cargo run --release -q -p repro-bench --bin bench_native -- \
            --check "$pinned"; then
            rm -f "$pinned"
            # Core-count-sweep smoke: the quick report must be schema 2 —
            # a real host_cores count, the tuning label, and at least one
            # per-core-count curve point per workload. A report that
            # silently dropped the sweep would pass the median gate while
            # losing the scaling curves the gate is supposed to protect.
            echo "== perf (core-count sweep smoke) =="
            grep -q '"schema": 2' bench_results/BENCH_native_quick.json
            grep -q '"tuning"' bench_results/BENCH_native_quick.json
            grep -q '"core_curve"' bench_results/BENCH_native_quick.json
            grep -q '"host_threads"' bench_results/BENCH_native_quick.json
            return 0
        fi
        echo "perf gate: regression reported (attempt $attempt/3); retrying to rule out host noise"
    done
    rm -f "$pinned"
    echo "perf gate: regression reproduced on 3 consecutive runs" >&2
    return 1
}

sim() {
    # Serial ≡ parallel equivalence for the conservative time-window sim
    # core: three fixed base seeds for deterministic replay, then one
    # randomized pass to keep widening coverage (its seed prints on
    # failure for replay via PROP_SEED). Byte-determinism — identical
    # cycles, RunStats, and trace CSV at every host_threads — is the
    # core's whole contract; any divergence fails the lane.
    for seed in 1 2 3; do
        echo "== pdes equivalence (PROP_BASE_SEED=$seed) =="
        PROP_BASE_SEED=$seed run_tests cargo test -q -p earth-model --test pdes_equivalence
    done

    echo "== pdes equivalence (randomized pass) =="
    rand_seed=$(od -An -N8 -tu8 /dev/urandom | tr -d ' ')
    echo "   PROP_BASE_SEED=$rand_seed"
    PROP_BASE_SEED="$rand_seed" run_tests cargo test -q -p earth-model --test pdes_equivalence

    # 256-proc scaling smoke: the quick sweep keeps the 256-proc point,
    # and --check gates parallel-vs-serial cycle and value equality at
    # every (family, P, k, host_threads) point. The wall-clock speedup
    # gate self-skips with a log line on hosts with fewer than 4 cores.
    echo "== sim scaling smoke (bench_sim --check, quick) =="
    REPRO_QUICK=1 run_tests cargo run --release -q -p repro-bench --bin bench_sim -- --check
}

simd() {
    # The explicit-SIMD lane: the `simd` cargo feature swaps the chunked
    # auto-vectorizable inner kernels for core::arch intrinsics, and the
    # whole point of the design is that the swap is invisible — every
    # engine test and the vector-vs-scalar bit-identity property suite
    # must pass unchanged with the feature on.
    echo "== simd lane (build + engine tests, --features simd) =="
    cargo build --release --features simd
    run_tests cargo test -q -p irred --features simd
    echo "== simd lane (bit-identity property suite) =="
    run_tests cargo test -q --features simd --test tuning_equivalence
}

case "${1:-all}" in
    tier1) tier1 ;;
    faults) faults ;;
    perf) perf ;;
    workloads) workloads ;;
    server) server ;;
    compiler) compiler ;;
    sim) sim ;;
    simd) simd ;;
    all)
        tier1
        faults
        workloads
        server
        compiler
        sim
        simd
        perf
        ;;
    *)
        echo "usage: $0 [tier1|faults|perf|workloads|server|compiler|sim|simd]" >&2
        exit 2
        ;;
esac

echo "ci.sh: all green"
