//! Conjugate gradient with phased sparse matrix–vector products.
//!
//! `mvm` in the paper is extracted from NAS CG; this example puts it
//! back: a CG solve where every `A·p` runs under the rotating-portion
//! strategy on the simulated EARTH machine. Total simulated time and the
//! solver trajectory are reported; the result is validated against a
//! sequential solve.
//!
//! ```sh
//! cargo run --release --example mvm_cg
//! ```

use std::sync::Arc;

use earth_model::sim::SimConfig;
use irred::{Distribution, GatherSpec, PhasedGather, StrategyConfig};
use workloads::SparseMatrix;

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn main() {
    // `REPRO_QUICK=1` shrinks the system for smoke tests.
    let quick = std::env::var("REPRO_QUICK").is_ok_and(|v| v == "1");
    let n = if quick { 400usize } else { 2_000 };
    let nnz = if quick { 4_000usize } else { 30_000 };
    let matrix = Arc::new(SparseMatrix::symmetric_dd(n, nnz, 42));
    let b_rhs: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) / 7.0).collect();
    println!("CG on a {n}×{n} SPD matrix with {} nonzeros", matrix.nnz());

    let cfg = SimConfig::default();
    let strat = StrategyConfig::new(8, 2, Distribution::Block, 1);

    // Phased SpMV: one simulated run per product.
    let mut spmv_time = 0u64;
    let mut products = 0usize;
    let mut spmv = |p: &[f64]| -> Vec<f64> {
        let spec = GatherSpec {
            matrix: Arc::clone(&matrix),
            x: Arc::new(p.to_vec()),
        };
        let r = PhasedGather::run_sim(&spec, &strat, cfg);
        spmv_time += r.time_cycles;
        products += 1;
        r.y
    };

    // Standard CG.
    let mut x = vec![0.0f64; n];
    let mut r = b_rhs.clone();
    let mut p = r.clone();
    let mut rs = dot(&r, &r);
    let mut iters = 0usize;
    while rs.sqrt() > 1e-10 && iters < 200 {
        let ap = spmv(&p);
        let alpha = rs / dot(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs2 = dot(&r, &r);
        let beta = rs2 / rs;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs = rs2;
        iters += 1;
        if iters.is_multiple_of(5) || rs.sqrt() <= 1e-10 {
            println!("  iter {iters:>3}: residual {:.3e}", rs.sqrt());
        }
    }

    // Validate: A·x ≈ b.
    let mut ax = vec![0.0; n];
    matrix.spmv(&x, &mut ax);
    let err = ax
        .iter()
        .zip(&b_rhs)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "converged in {iters} iterations; max |Ax-b| = {err:.3e}; \
         {products} phased products took {:.3} simulated seconds on {} nodes",
        cfg.seconds(spmv_time),
        strat.procs
    );
    assert!(err < 1e-7, "CG did not converge correctly");
}
