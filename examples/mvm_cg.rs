//! Conjugate gradient with phased sparse matrix–vector products.
//!
//! `mvm` in the paper is extracted from NAS CG; this example puts it
//! back: a CG solve where every `A·p` runs under the rotating-portion
//! strategy on the simulated EARTH machine. The phase bucketing depends
//! only on the matrix structure, so the solve **prepares once** and
//! re-executes the same [`irred::PreparedGather`] for every product,
//! swapping in the next direction vector with
//! [`irred::PreparedGather::set_x`] — no re-bucketing, no program
//! rebuild, and the steady-state phase costs measured on the first
//! product are replayed for the rest. Total simulated time and the
//! solver trajectory are reported; the result is validated against a
//! sequential solve.
//!
//! ```sh
//! cargo run --release --example mvm_cg
//! ```

use std::sync::Arc;

use earth_model::sim::SimConfig;
use irred::{Distribution, GatherEngine, GatherSpec, ReductionEngine, StrategyConfig, Workspace};
use workloads::SparseMatrix;

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn main() {
    // `REPRO_QUICK=1` shrinks the system for smoke tests.
    let quick = std::env::var("REPRO_QUICK").is_ok_and(|v| v == "1");
    let n = if quick { 400usize } else { 2_000 };
    let nnz = if quick { 4_000usize } else { 30_000 };
    let matrix = Arc::new(SparseMatrix::symmetric_dd(n, nnz, 42));
    let b_rhs: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) / 7.0).collect();
    println!("CG on a {n}×{n} SPD matrix with {} nonzeros", matrix.nnz());

    let cfg = SimConfig::default();
    let strat = StrategyConfig::new(8, 2, Distribution::Block, 1);

    // Prepare the gather plan once for the whole solve: the bucketing of
    // nonzeros into phases and the EARTH program template depend on the
    // matrix and strategy, never on the vector contents.
    let engine = GatherEngine::sim(cfg);
    let spec = GatherSpec {
        matrix: Arc::clone(&matrix),
        x: Arc::new(vec![0.0; n]),
    };
    let mut prepared = engine.prepare(&spec, &strat).expect("valid mvm spec");
    let mut ws = Workspace::new();

    // Phased SpMV: one execute of the prepared plan per product.
    let mut spmv_time = 0u64;
    let mut reused = 0usize;
    let mut spmv = |p: &[f64]| -> Vec<f64> {
        prepared.set_x(p).expect("vector length matches the matrix");
        let mut out = engine.execute(&mut prepared, &mut ws).expect("phased SpMV");
        spmv_time += out.time_cycles;
        reused += out.provenance.reused_plan as usize;
        out.values.pop().expect("gather returns one value array")
    };

    // Standard CG.
    let mut x = vec![0.0f64; n];
    let mut r = b_rhs.clone();
    let mut p = r.clone();
    let mut rs = dot(&r, &r);
    let mut iters = 0usize;
    while rs.sqrt() > 1e-10 && iters < 200 {
        let ap = spmv(&p);
        let alpha = rs / dot(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs2 = dot(&r, &r);
        let beta = rs2 / rs;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs = rs2;
        iters += 1;
        if iters.is_multiple_of(5) || rs.sqrt() <= 1e-10 {
            println!("  iter {iters:>3}: residual {:.3e}", rs.sqrt());
        }
    }
    // Validate: A·x ≈ b.
    let mut ax = vec![0.0; n];
    matrix.spmv(&x, &mut ax);
    let err = ax
        .iter()
        .zip(&b_rhs)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let products = prepared.executions();
    println!(
        "converged in {iters} iterations; max |Ax-b| = {err:.3e}; \
         {products} phased products took {:.3} simulated seconds on {} nodes \
         ({reused} reused the prepared plan)",
        cfg.seconds(spmv_time),
        strat.procs
    );
    assert!(err < 1e-7, "CG did not converge correctly");
    assert_eq!(
        reused as u64,
        products - 1,
        "every product after the first must reuse the plan"
    );
}
