//! Adaptive molecular dynamics: the scenario the paper's strategy is
//! built for (and its stated future work, which this library
//! implements).
//!
//! Molecules drift; every few time steps the cutoff neighbour list is
//! rebuilt, changing the indirection arrays. Partitioning-based schemes
//! must re-partition and re-run a communicating inspector; the
//! LightInspector just re-runs locally — and the *incremental*
//! LightInspector only touches the entries that changed.
//!
//! Pairs are distributed by a stable hash of their identity and each
//! processor keeps a fixed-capacity list padded with inactive `(0,0)`
//! slots — the standard adaptive neighbour-list discipline — so that a
//! rebuild's reordering does not masquerade as churn.
//!
//! ```sh
//! cargo run --release --example moldyn_adaptive
//! ```

use earth_model::sim::SimConfig;
use irred::{seq_reduction, Distribution, PhasedReduction, StrategyConfig};
use kernels::MolDynProblem;
use lightinspector::{diff_pairs, verify_plan, IncrementalInspector, PhaseGeometry};
use workloads::{hash_distribute_pairs, MolDyn};

/// Pad a pair list to `capacity` with inactive self-pairs.
fn padded(pairs: &[(u32, u32)], capacity: usize) -> (Vec<u32>, Vec<u32>) {
    assert!(pairs.len() <= capacity, "neighbour list overflowed its capacity");
    let mut a: Vec<u32> = pairs.iter().map(|p| p.0).collect();
    let mut b: Vec<u32> = pairs.iter().map(|p| p.1).collect();
    a.resize(capacity, 0);
    b.resize(capacity, 0);
    (a, b)
}

fn main() {
    // `REPRO_QUICK=1` shrinks the lattice and epoch count for smoke tests.
    let quick = std::env::var("REPRO_QUICK").is_ok_and(|v| v == "1");
    let procs = 8usize;
    let k = 2usize;
    let cfg = SimConfig::default();

    let mut md = MolDyn::fcc(if quick { 4 } else { 9 }, 1.05);
    println!(
        "moldyn: {} molecules, {} interactions (the paper's 2K dataset)",
        md.num_molecules,
        md.num_interactions()
    );
    let g = PhaseGeometry::new(procs, k, md.num_molecules);

    // Fixed-capacity local lists with 15% slack, stable hash ownership.
    let initial = hash_distribute_pairs(&md.ia1, &md.ia2, procs);
    let caps: Vec<usize> = initial.iter().map(|v| v.len() + v.len() / 7 + 8).collect();
    let mut incs: Vec<IncrementalInspector> = initial
        .iter()
        .zip(&caps)
        .enumerate()
        .map(|(q, (pairs, &cap))| {
            let (a, b) = padded(pairs, cap);
            IncrementalInspector::new(g, q, vec![a, b])
        })
        .collect();

    for epoch in 0..if quick { 2 } else { 5 } {
        // Run a burst of time steps under the current neighbour list.
        let problem = MolDynProblem::from_config(md.clone());
        let sweeps = if quick { 5 } else { 20 };
        let seq = seq_reduction(&problem.spec, sweeps, cfg);
        let strat = StrategyConfig::new(procs, k, Distribution::Cyclic, sweeps);
        let r = PhasedReduction::run_sim(&problem.spec, &strat, cfg);
        println!(
            "epoch {epoch}: {sweeps} steps in {:.3} sim-s on {procs} nodes (speedup {:.2})",
            r.seconds,
            seq.seconds / r.seconds
        );

        // Adapt: drift positions, rebuild the neighbour list.
        md.perturb(0.05, epoch as u64);
        let churn = md.rebuild_interactions();

        // Update the inspectors incrementally: stable ownership + multiset
        // diff keeps the update count proportional to the real churn.
        let t = std::time::Instant::now();
        let fresh = hash_distribute_pairs(&md.ia1, &md.ia2, procs);
        let mut updated = 0usize;
        for (q, inc) in incs.iter_mut().enumerate() {
            let (na, nb) = padded(&fresh[q], caps[q]);
            let new_pairs: Vec<(u32, u32)> = na.iter().zip(&nb).map(|(&x, &y)| (x, y)).collect();
            let d = diff_pairs(
                inc.indirection()[0].as_slice(),
                inc.indirection()[1].as_slice(),
                &new_pairs,
            );
            updated += d.len();
            for (slot, x, y) in d {
                inc.update(slot, &[x, y]);
            }
            let refs: Vec<&[u32]> = inc.indirection().iter().map(|v| v.as_slice()).collect();
            verify_plan(inc.plan(), &refs).expect("incremental plan valid");
        }
        println!(
            "         adapted: {churn} pairs churned → {updated} plan updates in {:.2?} (no communication)",
            t.elapsed()
        );
    }
    println!("done — every incremental plan verified against its indirection arrays ✓");
}
