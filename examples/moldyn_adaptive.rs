//! Adaptive molecular dynamics: the scenario the paper's strategy is
//! built for (and its stated future work, which this library
//! implements).
//!
//! Molecules drift; every few time steps the cutoff neighbour list is
//! rebuilt, changing the indirection arrays. Partitioning-based schemes
//! must re-partition and re-run a communicating inspector; the phased
//! engine's [`irred::PreparedPhased`] just patches itself: the global
//! pair list lives in a fixed-capacity buffer padded with inactive
//! `(0, 0)` self-pairs (which contribute exactly zero force), a multiset
//! diff of the old and new lists yields the changed slots, and
//! [`irred::PreparedPhased::apply_updates`] re-runs the incremental
//! LightInspector on only the processors that own a changed iteration —
//! the EARTH program template, the untouched processors' plans, and the
//! pooled buffers all survive the adaptation.
//!
//! ```sh
//! cargo run --release --example moldyn_adaptive
//! ```

use std::sync::Arc;

use earth_model::sim::SimConfig;
use irred::{
    approx_eq, seq_reduction, Distribution, PhasedEngine, PhasedSpec, ReductionEngine,
    StrategyConfig, Workspace,
};
use kernels::moldyn::MolDynKernel;
use lightinspector::diff_pairs;
use workloads::MolDyn;

/// Pad a pair list to `capacity` with inactive self-pairs.
fn padded(pairs: &[(u32, u32)], capacity: usize) -> (Vec<u32>, Vec<u32>) {
    assert!(
        pairs.len() <= capacity,
        "neighbour list overflowed its capacity"
    );
    let mut a: Vec<u32> = pairs.iter().map(|p| p.0).collect();
    let mut b: Vec<u32> = pairs.iter().map(|p| p.1).collect();
    a.resize(capacity, 0);
    b.resize(capacity, 0);
    (a, b)
}

fn pairs_of(md: &MolDyn) -> Vec<(u32, u32)> {
    md.ia1.iter().zip(&md.ia2).map(|(&a, &b)| (a, b)).collect()
}

fn main() {
    // `REPRO_QUICK=1` shrinks the lattice and epoch count for smoke tests.
    let quick = std::env::var("REPRO_QUICK").is_ok_and(|v| v == "1");
    let procs = 8usize;
    let k = 2usize;
    let cfg = SimConfig::default();

    let mut md = MolDyn::fcc(if quick { 4 } else { 9 }, 1.05);
    println!(
        "moldyn: {} molecules, {} interactions (the paper's 2K dataset)",
        md.num_molecules,
        md.num_interactions()
    );

    // Global fixed-capacity pair list with 15% slack — the standard
    // adaptive neighbour-list discipline, so a rebuild's reordering does
    // not force a reallocation (and the prepared plan keeps its shape).
    let capacity = md.num_interactions() + md.num_interactions() / 7 + 8;
    let (ia1, ia2) = padded(&pairs_of(&md), capacity);
    let kernel = Arc::new(MolDynKernel {
        pos0: Arc::new(md.pos.clone()),
        box_side: md.box_side,
    });
    let spec = PhasedSpec {
        kernel: Arc::clone(&kernel),
        num_elements: md.num_molecules,
        indirection: Arc::new(vec![ia1, ia2]),
    };

    let sweeps = if quick { 5 } else { 20 };
    let strat = StrategyConfig::new(procs, k, Distribution::Cyclic, sweeps);
    let engine = PhasedEngine::sim(cfg);

    // Prepare ONCE: inspector plans, remapped indirection, and the EARTH
    // program template are built here and reused for every epoch below.
    let mut prepared = engine.prepare(&spec, &strat).expect("valid moldyn spec");
    let mut ws = Workspace::new();

    for epoch in 0..if quick { 2 } else { 5 } {
        // Run a burst of time steps under the current neighbour list.
        let r = engine.execute(&mut prepared, &mut ws).expect("phased run");

        // Sequential reference over the same kernel + current pair list.
        let cur = PhasedSpec {
            kernel: Arc::clone(&kernel),
            num_elements: md.num_molecules,
            indirection: Arc::new(prepared.indirection().to_vec()),
        };
        let seq = seq_reduction(&cur, sweeps, cfg);
        for a in 0..3 {
            assert!(
                approx_eq(&r.values[a], &seq.x[a], 1e-8),
                "epoch {epoch}: prepared run diverged from sequential reference"
            );
        }
        println!(
            "epoch {epoch}: {sweeps} steps in {:.3} sim-s on {procs} nodes (speedup {:.2}, plan {})",
            r.seconds,
            seq.seconds / r.seconds,
            if r.provenance.reused_plan {
                "reused"
            } else {
                "built"
            }
        );

        // Adapt: drift positions, rebuild the neighbour list.
        md.perturb(0.05, epoch as u64);
        let churn = md.rebuild_interactions();

        // Patch the prepared run incrementally: a multiset diff against
        // the plan's current indirection yields the changed slots, and
        // apply_updates re-inspects only the owning processors.
        let t = std::time::Instant::now();
        let (na, nb) = padded(&pairs_of(&md), capacity);
        let new_pairs: Vec<(u32, u32)> = na.iter().zip(&nb).map(|(&x, &y)| (x, y)).collect();
        let d = diff_pairs(
            prepared.indirection()[0].as_slice(),
            prepared.indirection()[1].as_slice(),
            &new_pairs,
        );
        let updates: Vec<(usize, Vec<u32>)> = d
            .into_iter()
            .map(|(slot, x, y)| (slot, vec![x, y]))
            .collect();
        let updated = updates.len();
        prepared
            .apply_updates(&updates)
            .expect("incremental update valid");
        println!(
            "         adapted: {churn} pairs churned → {updated} plan updates in {:.2?} (no communication, no re-prepare)",
            t.elapsed()
        );
    }
    println!(
        "done — one prepare served {} executes across every adaptation ✓",
        prepared.executions()
    );
}
