//! Quickstart: run an irregular reduction under the phased strategy.
//!
//! Builds the paper's Figure-1 loop shape — `X[IA1[i]] += f(i)`,
//! `X[IA2[i]] += g(i)` — on a random graph, executes it (a) sequentially,
//! (b) on the simulated 8-node EARTH machine, and (c) on real host
//! threads, and checks all three agree.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use earth_model::native::NativeConfig;
use earth_model::sim::SimConfig;
use irred::{
    approx_eq, seq_reduction, Distribution, EdgeKernel, ExecutionConfig, PhasedEngine, PhasedSpec,
    ReductionEngine, StrategyConfig, Tuning,
};

/// The loop body: contributions `w` and `2w` through the two references.
struct PairKernel {
    weights: Arc<Vec<f64>>,
}

impl EdgeKernel for PairKernel {
    fn contrib(&self, _read: &[f64], iter: usize, _elems: &[u32], out: &mut [f64]) {
        let w = self.weights[iter];
        out[0] = w; // through IA1
        out[1] = 2.0 * w; // through IA2
    }
}

fn main() {
    // A random "mesh": 10 000 elements, 60 000 iterations.
    // (`REPRO_QUICK=1` shrinks everything for smoke tests.)
    let quick = std::env::var("REPRO_QUICK").is_ok_and(|v| v == "1");
    let n = if quick { 500usize } else { 10_000 };
    let e = if quick { 2_000usize } else { 60_000 };
    let mut s = 0xABCDu64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let spec = PhasedSpec {
        kernel: Arc::new(PairKernel {
            weights: Arc::new((0..e).map(|_| (next() % 1000) as f64 / 100.0).collect()),
        }),
        num_elements: n,
        indirection: Arc::new(vec![
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
        ]),
    };

    let sweeps = if quick { 2 } else { 10 };
    let cfg = SimConfig::default();

    // (a) sequential reference, metered on the same cost model.
    let seq = seq_reduction(&spec, sweeps, cfg);
    println!("sequential:  {:>8.3} simulated seconds", seq.seconds);

    // (b) phased strategy on the simulated EARTH machine (P=8, k=2, cyclic).
    let strat = StrategyConfig::new(8, 2, Distribution::Cyclic, sweeps);
    let sim = PhasedEngine::sim(cfg)
        .run(&spec, &strat)
        .expect("valid spec");
    println!(
        "phased sim:  {:>8.3} simulated seconds on {} nodes (speedup {:.2})",
        sim.seconds,
        strat.procs,
        seq.seconds / sim.seconds
    );
    println!(
        "             {} messages, {} payload bytes — independent of the indirection contents",
        sim.messages(),
        sim.bytes()
    );

    // (c) the same program on real OS threads, with the performance
    // tuning bundle: vectorized flat loops and memory-model-predicted
    // cache tiling. `Tuning::auto()` is the one knob; results stay
    // within reassociation tolerance of the scalar reference (and the
    // SIMD part is bit-identical — see `Tuning::new()` for the strict
    // determinism reference).
    let native = PhasedEngine::new(
        ExecutionConfig::native(NativeConfig::default()).with_tuning(Tuning::auto()),
    )
    .run(&spec, &strat)
    .expect("native run");
    println!(
        "phased host: {:>8.2?} wall on {} threads [{}]",
        native.wall,
        strat.procs,
        Tuning::auto().label()
    );

    assert!(
        approx_eq(&sim.values[0], &seq.x[0], 1e-9),
        "sim result mismatch"
    );
    assert!(
        approx_eq(&native.values[0], &seq.x[0], 1e-9),
        "native result mismatch"
    );
    println!("all three executions agree ✓");

    // Visualize the overlap: trace one 2-sweep run and fold the event
    // stream into a Gantt chart plus the per-phase timeline table.
    let small = StrategyConfig::new(8, 2, Distribution::Cyclic, 2);
    let t = PhasedEngine::new(ExecutionConfig::sim(cfg).traced())
        .run(&spec, &small)
        .expect("valid spec");
    println!("\nEU occupancy (2 sweeps, {} nodes, k = 2):", small.procs);
    print!(
        "{}",
        earth_model::render_gantt(&t.trace, small.procs, t.time_cycles, 72)
    );
    println!("\nPhase timeline:");
    print!("{}", t.timeline().table());
}
