//! The compiler pipeline end to end: DSL source → analysis → reference
//! groups → loop fission → LightInspector-based phased execution.
//!
//! The input reproduces the paper's Figure-1 loop plus a second loop
//! with two reference groups, so every stage (including fission with a
//! temporary array) is exercised.
//!
//! ```sh
//! cargo run --release --example compile_pipeline
//! ```

use earth_model::sim::SimConfig;
use irred::{Distribution, StrategyConfig};
use threadedc::{compile, interpret, parse, Bindings};

const SRC: &str = "
    // Figure 1 of the paper: an edge loop over an unstructured mesh.
    double X[num_nodes];
    double Y[num_edges];
    int IA1[num_edges];
    int IA2[num_edges];

    forall (i = 0; i < num_edges; i++) {
        double f = Y[i] * 0.5;
        X[IA1[i]] += f;
        X[IA2[i]] -= f;
    }

    // A second loop with two reference groups: P through {A}, Q through
    // {B}. The shared scalar g forces a temporary array during fission.
    double P[num_nodes];
    double Q[num_nodes];
    int A[num_edges];
    int B[num_edges];

    forall (i = 0; i < num_edges; i++) {
        double g = Y[i] + 1.0;
        P[A[i]] += g;
        Q[B[i]] += g * 2.0;
    }
";

fn bindings(n: usize, e: usize) -> Bindings {
    let mut s = 77u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut b = Bindings::default();
    b.sizes.insert("num_nodes".into(), n);
    b.sizes.insert("num_edges".into(), e);
    b.f64s.insert(
        "Y".into(),
        (0..e).map(|_| (next() % 100) as f64 / 9.0).collect(),
    );
    for name in ["IA1", "IA2", "A", "B"] {
        b.ints.insert(
            name.into(),
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
        );
    }
    b
}

fn main() {
    println!("--- source ---{SRC}");
    let compiled = compile(SRC).expect("compiles");
    println!("--- compiler log ---");
    for line in &compiled.log {
        println!("  {line}");
    }

    // `REPRO_QUICK=1` shrinks the dataset for smoke tests.
    let quick = std::env::var("REPRO_QUICK").is_ok_and(|v| v == "1");
    let (n, e) = if quick {
        (500usize, 3_000usize)
    } else {
        (5_000, 40_000)
    };
    let strat = StrategyConfig::new(8, 2, Distribution::Cyclic, 1);
    println!(
        "--- executing on {} simulated EARTH nodes (k = {}) ---",
        strat.procs, strat.k
    );
    let mut phased = bindings(n, e);
    let report = compiled
        .execute_sim(&mut phased, &strat, SimConfig::default())
        .expect("executes");
    println!(
        "  {} phased loop(s), {} sequential loop(s), {:.3} simulated seconds",
        report.phased_loops,
        report.regular_loops,
        SimConfig::default().seconds(report.time_cycles)
    );

    // Validate against the direct interpreter.
    let mut direct = bindings(n, e);
    interpret(&parse(SRC).unwrap(), &mut direct).expect("interprets");
    for arr in ["X", "P", "Q"] {
        let max_diff = phased.f64s[arr]
            .iter()
            .zip(&direct.f64s[arr])
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!("  {arr}: max |compiled − interpreted| = {max_diff:.2e}");
        assert!(max_diff < 1e-9);
    }
    println!("compiled execution matches the interpreter ✓");
}
