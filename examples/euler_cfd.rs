//! The `euler` CFD kernel on the paper's 2.8K-node mesh: a miniature of
//! Figure 6, sweeping the four strategies at a few machine sizes.
//!
//! ```sh
//! cargo run --release --example euler_cfd
//! ```

use earth_model::sim::SimConfig;
use irred::{seq_reduction, Distribution, PhasedEngine, ReductionEngine, StrategyConfig};
use kernels::EulerProblem;
use workloads::MeshPreset;

fn main() {
    // `REPRO_QUICK=1` shrinks the sweep count for smoke tests.
    let quick = std::env::var("REPRO_QUICK").is_ok_and(|v| v == "1");
    let sweeps = if quick { 4 } else { 100 };
    let cfg = SimConfig::default();
    let problem = EulerProblem::preset(MeshPreset::Euler2K, 1);
    println!(
        "euler: {} nodes, {} edges, {} time steps",
        problem.spec.num_elements,
        problem.spec.num_iterations(),
        sweeps
    );

    let seq = seq_reduction(&problem.spec, sweeps, cfg);
    println!(
        "sequential: {:.2} simulated seconds (paper: 7.84 s)",
        seq.seconds
    );

    println!(
        "{:<6} {:>6} {:>12} {:>9}",
        "strat", "procs", "sim seconds", "speedup"
    );
    for (k, d, name) in [
        (1usize, Distribution::Cyclic, "1c"),
        (2, Distribution::Cyclic, "2c"),
        (4, Distribution::Cyclic, "4c"),
        (2, Distribution::Block, "2b"),
    ] {
        for procs in [2usize, 8, 32] {
            let strat = StrategyConfig::new(procs, k, d, sweeps);
            let r = PhasedEngine::sim(cfg).run(&problem.spec, &strat).unwrap();
            println!(
                "{:<6} {:>6} {:>12.3} {:>9.2}",
                name,
                procs,
                r.seconds,
                seq.seconds / r.seconds
            );
        }
    }
    println!("\npaper's relative speedups 2→32 on this mesh: 1c 7.12, 2c 9.28, 4c 8.49, 2b 6.78");

    // Show the load-balance signature that favors cyclic distributions.
    let imbalance = |d: Distribution| {
        let strat = StrategyConfig::new(32, 2, d, 1);
        let r = PhasedEngine::sim(cfg).run(&problem.spec, &strat).unwrap();
        let per_phase_max: usize = (0..strat.phases_per_sweep())
            .map(|p| r.phase_iter_counts.iter().map(|c| c[p]).max().unwrap())
            .sum();
        let ideal: usize = r.phase_iter_counts.iter().flatten().sum::<usize>() / 32;
        per_phase_max as f64 / ideal as f64
    };
    println!(
        "per-phase load imbalance at 32 procs (max/ideal): block {:.2}, cyclic {:.2} — §5.4.2's explanation",
        imbalance(Distribution::Block),
        imbalance(Distribution::Cyclic)
    );
}
