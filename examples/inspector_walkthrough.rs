//! A walkthrough of the LightInspector in the style of the paper's
//! Figure 3: 2 processors, k = 2, a mesh of 8 nodes and 20 edges.
//!
//! Prints the input indirection arrays and, for processor 0, the phase
//! assignment, the rewritten (buffered) references, and the second-loop
//! copy lists — the exact artifacts Figure 3 tabulates.
//!
//! ```sh
//! cargo run --example inspector_walkthrough
//! ```

use lightinspector::{inspect, verify_plan, InspectorInput, PhaseGeometry};

fn main() {
    // 8 nodes, 20 edges, split as 10 edges per processor (block).
    let geometry = PhaseGeometry::new(2, 2, 8);
    println!(
        "geometry: P = 2, k = 2 → {} phases, portions of {} nodes",
        geometry.num_phases(),
        geometry.portion_size()
    );
    for p in 0..geometry.num_phases() {
        let portion = geometry.portion_owned_by(0, p);
        let r = geometry.portion_range(portion);
        println!("  phase {p}: P0 owns nodes {:?}", r);
    }

    // Processor 0's ten edges (endpoint pairs).
    let indir1_in: Vec<u32> = vec![0, 2, 4, 6, 1, 3, 5, 7, 0, 5];
    let indir2_in: Vec<u32> = vec![1, 3, 5, 7, 2, 4, 6, 4, 7, 2];
    println!("\nindir1_in = {indir1_in:?}");
    println!("indir2_in = {indir2_in:?}");

    let plan = inspect(InspectorInput {
        geometry,
        proc_id: 0,
        indirection: &[&indir1_in, &indir2_in],
    })
    .expect("inspector input valid");
    verify_plan(&plan, &[&indir1_in, &indir2_in]).expect("plan valid");

    println!(
        "\nremote buffer starts at location {} (= num_nodes)",
        geometry.num_elements()
    );
    println!("buffer slots allocated: {}", plan.buffer_len);

    for (p, phase) in plan.phases.iter().enumerate() {
        println!("\nphase {p}:");
        println!("  edges     = {:?}", phase.iters);
        println!("  indir1_out = {:?}", phase.refs[0]);
        println!("  indir2_out = {:?}", phase.refs[1]);
        if phase.copies.is_empty() {
            println!("  second loop: (empty)");
        } else {
            for c in &phase.copies {
                println!(
                    "  second loop: X[{}] += X[{}]; X[{}] = 0",
                    c.dest, c.src, c.src
                );
            }
        }
    }

    // The Figure-3 narrative: an edge whose second endpoint is owned in
    // a future phase gets a buffer location.
    let edge = 7usize; // endpoints (7, 4): phases 3 and 2 on P0
    let p = plan.iter_phase[edge] as usize;
    println!(
        "\nedge {edge} touches nodes ({}, {}) → assigned to phase {p}; \
         the other endpoint is folded later by the second loop",
        indir1_in[edge], indir2_in[edge]
    );
}
