//! Validation of [`memsim::predict_tile_elems`] against an empirical
//! tile-size sweep on the memory model itself.
//!
//! The phased executor's tiling policy stable-sorts one phase's
//! iterations by the cache block of their first-reference scatter
//! target. This test duplicates that policy locally (the dependency
//! arrow points irred → memsim, so the executor cannot be used here),
//! replays the resulting access sequence through a [`MemModel`] for a
//! ladder of candidate spans, and demands that the span the analytic
//! model predicts is **within 1.2× of the empirically best candidate's
//! miss count** — on the two datasets the tentpole names: the randomly
//! renumbered moldyn-10K and a power-law graph at α = 1.5.

use memsim::{predict_tile_elems, MemConfig, MemModel, MIN_TILE_ELEMS};
use workloads::{MolDyn, MolDynPreset, PowerLawGraph};

/// One phase's worth of work on one processor: `P = 8, k = 2` cuts the
/// element space into 16 portions; phase 0 on processor 0 executes the
/// iterations whose *first* reference lands in portion 0. This mirrors
/// the executor's first-loop ownership rule without replicating its
/// distribution machinery.
const PORTIONS: usize = 16;

struct PhaseWork {
    /// Iteration ids of the phase, in original (untiled) order.
    order: Vec<usize>,
    /// All indirection arrays (the replay gathers/scatters per ref).
    refs: Vec<Vec<u32>>,
    /// Doubles of reduction state written per referenced element.
    write_dpe: usize,
    /// Doubles of read state gathered per referenced element.
    read_dpe: usize,
    /// Elements in one portion (the tiled iteration space's extent).
    portion: usize,
}

fn phase_work(
    refs: Vec<Vec<u32>>,
    num_elements: usize,
    write_dpe: usize,
    read_dpe: usize,
) -> PhaseWork {
    let portion = num_elements.div_ceil(PORTIONS);
    let order: Vec<usize> = (0..refs[0].len())
        .filter(|&j| (refs[0][j] as usize) < portion)
        .collect();
    PhaseWork {
        order,
        refs,
        write_dpe,
        read_dpe,
        portion,
    }
}

/// Replay the phase under tile span `span` (usize::MAX = untiled) and
/// return the modeled miss count. Per iteration the kernel gathers
/// `read_dpe` doubles and read-modify-writes `write_dpe` doubles at
/// every referenced element; the iteration-id / refs / weights streams
/// are pure flow-through and carry no reuse, so they are left out of
/// the replay (they cost the same under every ordering).
fn replay(work: &PhaseWork, cfg: &MemConfig, span: usize) -> u64 {
    let mut order = work.order.clone();
    // The executor's policy verbatim: stable sort by the first
    // reference's tile block.
    order.sort_by_key(|&j| work.refs[0][j] as usize / span.max(1));
    let mut m = MemModel::new(*cfg);
    // Read arrays live in a disjoint address region from the reduction
    // group, as they do in the real node heap.
    let read_base = 1u64 << 30;
    for &j in &order {
        for r in &work.refs {
            let e = r[j] as u64;
            for d in 0..work.read_dpe as u64 {
                m.read(read_base + (e * work.read_dpe as u64 + d) * 8);
            }
            for d in 0..work.write_dpe as u64 {
                let a = (e * work.write_dpe as u64 + d) * 8;
                m.read(a);
                m.write(a);
            }
        }
    }
    m.stats().misses
}

/// Sweep candidate spans (the power-of-two ladder from the floor up to
/// the portion size, the portion itself ≈ untiled) plus the predicted
/// span; assert the prediction is within 1.2× of the best.
fn assert_prediction_competitive(work: &PhaseWork, cfg: &MemConfig, label: &str) {
    let predicted = predict_tile_elems(cfg, work.write_dpe, work.read_dpe).min(work.portion);
    let mut candidates = vec![work.portion];
    let mut s = MIN_TILE_ELEMS;
    while s < work.portion {
        candidates.push(s);
        s *= 2;
    }
    let best = candidates
        .iter()
        .map(|&s| replay(work, cfg, s))
        .min()
        .expect("candidate ladder is nonempty");
    let predicted_misses = replay(work, cfg, predicted);
    assert!(
        predicted_misses as f64 <= 1.2 * best as f64,
        "{label}: predicted span {predicted} costs {predicted_misses} misses, \
         best candidate costs {best} (ratio {:.3} > 1.2)",
        predicted_misses as f64 / best as f64
    );
    // Sanity: the sweep is not degenerate — tiling at the floor span
    // and running effectively untiled must actually differ, otherwise
    // the 1.2× bound is vacuous.
    let untiled = replay(work, cfg, work.portion);
    let floor = replay(work, cfg, MIN_TILE_ELEMS);
    assert_ne!(
        untiled, floor,
        "{label}: the sweep never changed the miss count — dataset too small to validate"
    );
}

#[test]
fn moldyn_10k_prediction_is_within_20_percent_of_best() {
    // The paper's 10K dataset with random renumbering — the worst index
    // locality in the stable. 3 force doubles written, 3 position
    // doubles read per referenced molecule.
    let md = MolDyn::preset(MolDynPreset::MolDyn10K).shuffled(42);
    let n = md.num_molecules;
    let work = phase_work(vec![md.ia1, md.ia2], n, 3, 3);
    assert!(work.order.len() > 500, "phase 0 carries real work");
    assert_prediction_competitive(&work, &MemConfig::i860xp(), "moldyn-10K/i860xp");
    assert_prediction_competitive(&work, &MemConfig::host_l2(), "moldyn-10K/host_l2");
}

#[test]
fn powerlaw_alpha_1_5_prediction_is_within_20_percent_of_best() {
    // Skewed scatter: a few hub nodes absorb most updates. 1 reduction
    // double per element, no node-level reads (the family kernel is
    // weight-driven). Sized so one portion (n/16 elements) overflows
    // even the host L2's half-capacity budget — otherwise every span
    // ties and the sweep validates nothing.
    let g = PowerLawGraph::generate(400_000, 1_200_000, 1.5, 7).expect("valid powerlaw graph");
    let n = g.num_nodes;
    let work = phase_work(vec![g.src, g.dst], n, 1, 0);
    assert!(work.order.len() > 500, "phase 0 carries real work");
    assert_prediction_competitive(&work, &MemConfig::i860xp(), "powerlaw-1.5/i860xp");
    assert_prediction_competitive(&work, &MemConfig::host_l2(), "powerlaw-1.5/host_l2");
}
