//! The per-node memory cost model: one data cache in front of flat memory.
//!
//! [`MemModel`] turns an address trace into cycles. It is deliberately a
//! single-level model — the i860XP had a single on-chip data cache — and
//! the three parameters (hit cost, miss penalty, write-back penalty) are
//! calibrated in `EXPERIMENTS.md` against the paper's sequential running
//! times.

use crate::cache::{AccessKind, Cache, CacheConfig};

/// Cycle costs of the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    pub cache: CacheConfig,
    /// Cycles for a cache hit (fully pipelined loads ⇒ 1).
    pub hit_cycles: u64,
    /// Additional cycles for a miss (line fill from local memory).
    pub miss_cycles: u64,
    /// Additional cycles when a miss evicts a dirty line.
    pub writeback_cycles: u64,
}

impl MemConfig {
    /// Calibrated approximation of a MANNA node (i860XP @ 50 MHz, local
    /// DRAM): 16 KiB 4-way cache, 1-cycle hits, ~22-cycle line fills.
    pub const fn i860xp() -> Self {
        MemConfig {
            cache: CacheConfig::i860xp(),
            hit_cycles: 1,
            miss_cycles: 22,
            writeback_cycles: 6,
        }
    }

    /// A generic modern host's per-core L2 slice (256 KiB, 8-way, 64 B
    /// lines): the geometry the native backend's tile-size prediction
    /// targets. Deliberately conservative — undershooting a real L2
    /// still tiles well, overshooting thrashes.
    pub const fn host_l2() -> Self {
        MemConfig {
            cache: CacheConfig {
                capacity: 256 * 1024,
                ways: 8,
                line: 64,
            },
            hit_cycles: 1,
            miss_cycles: 40,
            writeback_cycles: 10,
        }
    }

    /// Tiny geometry for unit tests.
    pub const fn tiny() -> Self {
        MemConfig {
            cache: CacheConfig::tiny(),
            hit_cycles: 1,
            miss_cycles: 10,
            writeback_cycles: 4,
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        Self::i860xp()
    }
}

/// Hit/miss counters accumulated by a [`MemModel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    pub reads: u64,
    pub writes: u64,
    pub misses: u64,
    pub writebacks: u64,
    pub cycles: u64,
}

impl MemStats {
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Miss ratio over all accesses (0 when there were none).
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }

    pub fn merge(&mut self, other: &MemStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
        self.cycles += other.cycles;
    }
}

/// One node's memory system: cache + cost accounting.
#[derive(Debug, Clone)]
pub struct MemModel {
    cfg: MemConfig,
    cache: Cache,
    stats: MemStats,
}

impl MemModel {
    pub fn new(cfg: MemConfig) -> Self {
        MemModel {
            cache: Cache::new(cfg.cache),
            cfg,
            stats: MemStats::default(),
        }
    }

    pub fn config(&self) -> MemConfig {
        self.cfg
    }

    /// Simulate a read of `addr`; returns the cycles it cost.
    #[inline]
    pub fn read(&mut self, addr: u64) -> u64 {
        self.access(addr, AccessKind::Read)
    }

    /// Simulate a write of `addr`; returns the cycles it cost.
    #[inline]
    pub fn write(&mut self, addr: u64) -> u64 {
        self.access(addr, AccessKind::Write)
    }

    fn access(&mut self, addr: u64, kind: AccessKind) -> u64 {
        let r = self.cache.access(addr, kind);
        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        let mut c = self.cfg.hit_cycles;
        if !r.hit {
            self.stats.misses += 1;
            c += self.cfg.miss_cycles;
        }
        if r.writeback {
            self.stats.writebacks += 1;
            c += self.cfg.writeback_cycles;
        }
        self.stats.cycles += c;
        c
    }

    /// Bring `addr`'s line into the cache without charging cycles or
    /// counting statistics — models data deposited by DMA / the SU
    /// (e.g. a received portion) that is warm when the EU first reads it.
    pub fn touch(&mut self, addr: u64) {
        self.cache.access(addr, AccessKind::Read);
    }

    /// Cycles for a sequential sweep over `bytes` bytes starting at a
    /// line-aligned address, computed without touching the cache — used for
    /// bulk operations (portion receive copies) whose per-byte behaviour is
    /// a pure stream.
    pub fn stream_cycles(&self, bytes: u64) -> u64 {
        let line = self.cfg.cache.line as u64;
        let lines = bytes.div_ceil(line);
        let accesses = bytes / 8;
        accesses * self.cfg.hit_cycles + lines * self.cfg.miss_cycles
    }

    pub fn stats(&self) -> MemStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// Flush the cache (cold restart) without clearing counters.
    pub fn flush(&mut self) {
        self.cache.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_sweep_misses_once_per_line() {
        let mut m = MemModel::new(MemConfig::tiny()); // 16 B lines
        for i in 0..32u64 {
            m.read(i * 8); // f64 stream: 2 elements per line
        }
        let s = m.stats();
        assert_eq!(s.reads, 32);
        assert_eq!(s.misses, 16);
        assert_eq!(s.cycles, 32 + 16 * 10);
    }

    #[test]
    fn repeated_access_costs_hits() {
        let mut m = MemModel::new(MemConfig::tiny());
        m.read(0);
        let before = m.stats().cycles;
        for _ in 0..10 {
            m.read(0);
        }
        assert_eq!(m.stats().cycles - before, 10);
    }

    #[test]
    fn stream_cycles_matches_simulated_stream() {
        let m = MemModel::new(MemConfig::tiny());
        let analytic = m.stream_cycles(256);
        let mut sim = MemModel::new(MemConfig::tiny());
        for i in 0..32u64 {
            sim.read(0x10000 + i * 8);
        }
        assert_eq!(analytic, sim.stats().cycles);
    }

    #[test]
    fn random_access_worse_than_sequential() {
        let cfg = MemConfig::i860xp();
        let n = 100_000usize;
        let mut seq = MemModel::new(cfg);
        for i in 0..n {
            seq.read((i as u64) * 8);
        }
        let mut rnd = MemModel::new(cfg);
        // Deterministic scatter over a footprint much larger than the cache.
        let mut x = 12345u64;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rnd.read((x % (n as u64)) * 8);
        }
        assert!(
            rnd.stats().cycles > 2 * seq.stats().cycles,
            "random {} vs sequential {}",
            rnd.stats().cycles,
            seq.stats().cycles
        );
    }

    #[test]
    fn miss_ratio_bounds() {
        let mut m = MemModel::new(MemConfig::tiny());
        assert_eq!(m.stats().miss_ratio(), 0.0);
        m.read(0);
        assert!(m.stats().miss_ratio() > 0.0 && m.stats().miss_ratio() <= 1.0);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = MemStats {
            reads: 1,
            writes: 2,
            misses: 3,
            writebacks: 4,
            cycles: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.reads, 2);
        assert_eq!(a.cycles, 10);
    }
}
