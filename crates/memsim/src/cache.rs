//! Set-associative cache with LRU replacement.
//!
//! The cache stores tags only (no data): it answers "hit or miss" for an
//! address trace. Write policy is write-allocate / write-back, which is
//! what the i860XP data cache used; a write miss therefore behaves like a
//! read miss for timing purposes, and dirty evictions add a write-back
//! charge accounted by [`crate::MemModel`].

/// Whether an access reads or writes the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// Geometry of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set). `1` gives a direct-mapped cache.
    pub ways: usize,
    /// Line size in bytes; must be a power of two.
    pub line: usize,
}

impl CacheConfig {
    /// The i860XP data cache: 16 KiB, 4-way, 32-byte lines.
    pub const fn i860xp() -> Self {
        CacheConfig {
            capacity: 16 * 1024,
            ways: 4,
            line: 32,
        }
    }

    /// A tiny cache useful in tests (256 B, 2-way, 16 B lines).
    pub const fn tiny() -> Self {
        CacheConfig {
            capacity: 256,
            ways: 2,
            line: 16,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.capacity / (self.ways * self.line)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotone timestamp of last touch, for LRU.
    stamp: u64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    stamp: 0,
};

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    pub hit: bool,
    /// A dirty line was evicted to make room (costs a write-back).
    pub writeback: bool,
}

/// A set-associative cache simulated per access.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    set_shift: u32,
    set_mask: u64,
    clock: u64,
}

impl Cache {
    /// Build a cache; panics if the geometry is degenerate (zero sets,
    /// non-power-of-two line size).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways >= 1, "need at least one way");
        let sets = cfg.sets();
        assert!(sets >= 1, "geometry implies zero sets");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            cfg,
            lines: vec![INVALID; sets * cfg.ways],
            set_shift: cfg.line.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            clock: 0,
        }
    }

    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Simulate one access; returns hit/miss and whether a dirty line was
    /// evicted.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessResult {
        self.clock += 1;
        let line_addr = addr >> self.set_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let base = set * self.cfg.ways;
        let ways = &mut self.lines[base..base + self.cfg.ways];

        // Hit?
        for l in ways.iter_mut() {
            if l.valid && l.tag == tag {
                l.stamp = self.clock;
                if kind == AccessKind::Write {
                    l.dirty = true;
                }
                return AccessResult {
                    hit: true,
                    writeback: false,
                };
            }
        }

        // Miss: choose victim (invalid first, else LRU).
        let mut victim = 0usize;
        let mut best = u64::MAX;
        for (i, l) in ways.iter().enumerate() {
            if !l.valid {
                victim = i;
                break;
            }
            if l.stamp < best {
                best = l.stamp;
                victim = i;
            }
        }
        let writeback = ways[victim].valid && ways[victim].dirty;
        ways[victim] = Line {
            tag,
            valid: true,
            dirty: kind == AccessKind::Write,
            stamp: self.clock,
        };
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Invalidate the whole cache (e.g., between independent experiments).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            *l = INVALID;
        }
    }

    /// Number of currently valid lines (for tests / introspection).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig::tiny())
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x100, AccessKind::Read).hit);
        assert!(c.access(0x100, AccessKind::Read).hit);
        // Same line, different byte.
        assert!(c.access(0x10f, AccessKind::Read).hit);
        // Next line.
        assert!(!c.access(0x110, AccessKind::Read).hit);
    }

    #[test]
    fn spatial_locality_within_line() {
        let mut c = tiny();
        c.access(0, AccessKind::Read);
        for b in 1..16u64 {
            assert!(c.access(b, AccessKind::Read).hit, "byte {b} should hit");
        }
        assert!(!c.access(16, AccessKind::Read).hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // tiny: 256 B / (2 ways * 16 B) = 8 sets. Three lines mapping to
        // set 0: line addresses 0, 8, 16 (i.e., byte addrs 0, 128, 256).
        let mut c = tiny();
        c.access(0, AccessKind::Read); // A
        c.access(128, AccessKind::Read); // B — set 0 now {A, B}
        c.access(0, AccessKind::Read); // touch A, B becomes LRU
        c.access(256, AccessKind::Read); // C evicts B
        assert!(c.access(0, AccessKind::Read).hit, "A survives");
        assert!(!c.access(128, AccessKind::Read).hit, "B was evicted");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = Cache::new(CacheConfig {
            capacity: 32,
            ways: 1,
            line: 16,
        }); // 2 sets, direct-mapped
        c.access(0, AccessKind::Write);
        let r = c.access(32, AccessKind::Read); // same set 0, evicts dirty line
        assert!(!r.hit);
        assert!(r.writeback);
        let r2 = c.access(64, AccessKind::Read); // evicts clean line
        assert!(!r2.hit);
        assert!(!r2.writeback);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.access(0, AccessKind::Read);
        c.access(512, AccessKind::Write);
        assert_eq!(c.valid_lines(), 2);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.access(0, AccessKind::Read).hit);
    }

    #[test]
    fn capacity_bound_respected() {
        let cfg = CacheConfig::tiny();
        let mut c = Cache::new(cfg);
        // Touch far more distinct lines than fit.
        for i in 0..64u64 {
            c.access(i * cfg.line as u64, AccessKind::Read);
        }
        assert!(c.valid_lines() <= cfg.capacity / cfg.line);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig {
            capacity: 64,
            ways: 1,
            line: 16,
        }); // 4 sets
            // Two addresses 64 apart conflict in a 4-set direct-mapped cache.
        assert!(!c.access(0, AccessKind::Read).hit);
        assert!(!c.access(64, AccessKind::Read).hit);
        assert!(!c.access(0, AccessKind::Read).hit, "ping-pong conflict");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_line() {
        Cache::new(CacheConfig {
            capacity: 256,
            ways: 2,
            line: 24,
        });
    }
}
