//! Tile-size prediction for phase-local iteration tiling.
//!
//! The phased executor can stable-sort each phase's iterations by the
//! cache block of their scatter target, so that all updates landing in
//! one `span`-element block of the reduction array (and the
//! correspondingly clustered read-array gathers) happen together while
//! the block's lines are resident. This module answers the one question
//! that policy needs: **how many elements should a tile span** on a
//! given memory model?
//!
//! ## The model
//!
//! While a tile executes, the resident working set is the tile's slice
//! of the reduction group (`write_doubles_per_elem` doubles per
//! element, read-modify-written) plus the clustered slice of the read
//! group (`read_doubles_per_elem` doubles per element; indirection
//! targets correlate with read gathers in the paper's kernels, so the
//! two slices cover about the same elements). Everything else the loop
//! touches — the iteration ids, the `m`-interleaved refs/elems streams,
//! per-iteration edge data, buffered contributions — is *streamed*: each
//! line is used once and never revisited, so it needs flow-through
//! space, not residency.
//!
//! We therefore budget **half** the cache capacity for the resident
//! slices and leave the other half to the streams and to
//! associativity-conflict slack (an LRU set under a mixed
//! stream/resident load keeps roughly half its ways useful):
//!
//! ```text
//! span = (capacity / 2) / (8 · (write_dpe + read_dpe))
//! ```
//!
//! The prediction is validated against an empirical sweep on the sim's
//! memory model in `tests/tile_prediction.rs`: the predicted span's
//! modeled miss count must be within 1.2× of the best candidate.

use crate::model::MemConfig;

/// Smallest tile span worth sorting for: below this the per-tile stream
/// fraction dominates and the sort just shuffles lines that were going
/// to miss anyway.
pub const MIN_TILE_ELEMS: usize = 16;

/// Predict the tile span (in reduction-array elements) for phase-local
/// iteration tiling on the memory model `cfg`.
///
/// * `write_doubles_per_elem` — doubles of reduction state per element
///   (the reference-group width, e.g. 3 for a force field).
/// * `read_doubles_per_elem` — doubles of read-array state gathered per
///   referenced element (e.g. 3 for positions), 0 for kernels without
///   node-level reads.
///
/// Callers should compare the result against their portion length and
/// skip tiling when a whole portion already fits.
pub fn predict_tile_elems(
    cfg: &MemConfig,
    write_doubles_per_elem: usize,
    read_doubles_per_elem: usize,
) -> usize {
    let bytes_per_elem = 8 * (write_doubles_per_elem + read_doubles_per_elem).max(1);
    let budget = cfg.cache.capacity / 2;
    (budget / bytes_per_elem).max(MIN_TILE_ELEMS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i860xp_moldyn_span_fits_half_the_cache() {
        // moldyn: 3 force components written, 3 position components read.
        let span = predict_tile_elems(&MemConfig::i860xp(), 3, 3);
        assert_eq!(span, (16 * 1024 / 2) / 48);
        assert!(span * 48 <= 16 * 1024 / 2);
    }

    #[test]
    fn wider_elements_shrink_the_span() {
        let cfg = MemConfig::i860xp();
        assert!(predict_tile_elems(&cfg, 4, 4) < predict_tile_elems(&cfg, 1, 0));
    }

    #[test]
    fn span_never_collapses_below_the_floor() {
        let cfg = MemConfig::tiny();
        assert!(predict_tile_elems(&cfg, 64, 64) >= MIN_TILE_ELEMS);
    }

    #[test]
    fn host_cache_predicts_larger_tiles_than_i860xp() {
        assert!(
            predict_tile_elems(&MemConfig::host_l2(), 3, 3)
                > predict_tile_elems(&MemConfig::i860xp(), 3, 3)
        );
    }
}
