//! Closed-form memory cost estimation for very large traces.
//!
//! Per-access cache simulation of the class-B `mvm` runs (13.7 M nonzeros
//! per sweep) is too slow to repeat for every (k, P) configuration. The
//! paper's figures only need per-phase cycle totals, and within one run
//! the access pattern of a phase is identical across sweeps, so the
//! discrete-event backend simulates the first sweep exactly and reuses the
//! measured per-phase cost. [`StreamModel`] covers the remaining corner:
//! estimating the cost of a pattern *without* replaying it, from its
//! footprint and stride statistics. It is also used by the classic
//! inspector/executor baseline whose gather/scatter costs are pure
//! streams.
//!
//! The model distinguishes three canonical patterns:
//!
//! * **stream** — sequential sweep: one miss per line;
//! * **gather** — random accesses into a footprint of `f` bytes with a
//!   cache of `c` bytes: miss probability `max(0, 1 - c/f)` under the
//!   usual independent-reference approximation;
//! * **resident** — repeated access to data that fits in cache: all hits.

use crate::model::MemConfig;

/// Closed-form estimator mirroring a [`crate::MemModel`]'s parameters.
#[derive(Debug, Clone, Copy)]
pub struct StreamModel {
    cfg: MemConfig,
}

impl StreamModel {
    pub fn new(cfg: MemConfig) -> Self {
        StreamModel { cfg }
    }

    /// Cycles for a sequential sweep of `n` elements of `elem_bytes`.
    pub fn stream(&self, n: u64, elem_bytes: u64) -> u64 {
        let bytes = n * elem_bytes;
        let lines = bytes.div_ceil(self.cfg.cache.line as u64);
        n * self.cfg.hit_cycles + lines * self.cfg.miss_cycles
    }

    /// Cycles for `n` random accesses into a working set of
    /// `footprint_bytes`, assuming independent references.
    pub fn gather(&self, n: u64, footprint_bytes: u64) -> u64 {
        let c = self.cfg.cache.capacity as f64;
        let f = footprint_bytes.max(1) as f64;
        let miss_p = (1.0 - c / f).max(0.0);
        let misses = (n as f64 * miss_p).round() as u64;
        n * self.cfg.hit_cycles + misses * self.cfg.miss_cycles
    }

    /// Cycles for `n` accesses to cache-resident data.
    pub fn resident(&self, n: u64) -> u64 {
        n * self.cfg.hit_cycles
    }

    pub fn config(&self) -> MemConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MemModel;

    #[test]
    fn gather_in_cache_is_all_hits() {
        let m = StreamModel::new(MemConfig::i860xp());
        // 8 KiB footprint fits the 16 KiB cache.
        assert_eq!(m.gather(1000, 8 * 1024), m.resident(1000));
    }

    #[test]
    fn gather_cost_grows_with_footprint() {
        let m = StreamModel::new(MemConfig::i860xp());
        let small = m.gather(10_000, 32 * 1024);
        let big = m.gather(10_000, 32 * 1024 * 1024);
        assert!(big > small);
    }

    #[test]
    fn stream_estimate_matches_simulation() {
        let cfg = MemConfig::i860xp();
        let est = StreamModel::new(cfg).stream(4096, 8);
        let mut sim = MemModel::new(cfg);
        for i in 0..4096u64 {
            sim.read(i * 8);
        }
        assert_eq!(est, sim.stats().cycles);
    }

    #[test]
    fn gather_estimate_tracks_simulation_within_factor() {
        // The independent-reference approximation should land within ~25%
        // of a simulated uniform-random gather.
        let cfg = MemConfig::i860xp();
        let n = 200_000u64;
        let footprint_elems = 1_000_000u64; // 8 MB >> cache
        let est = StreamModel::new(cfg).gather(n, footprint_elems * 8);
        let mut sim = MemModel::new(cfg);
        let mut x = 99u64;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            sim.read((x % footprint_elems) * 8);
        }
        let simc = sim.stats().cycles as f64;
        let estc = est as f64;
        assert!(
            (estc / simc - 1.0).abs() < 0.25,
            "estimate {estc} vs simulated {simc}"
        );
    }
}
