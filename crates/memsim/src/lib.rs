//! # memsim — cache and memory-cost simulation
//!
//! The paper evaluates its execution strategy on a cycle-accurate simulator
//! of the MANNA multiprocessor (i860XP processors). Locality effects are
//! central to its results: the phased execution strategy loses spatial
//! locality relative to the sequential code (visible as low absolute
//! speedups on 2 processors, §5.4.3), and block distributions enjoy
//! slightly better locality than cyclic ones on small configurations.
//!
//! This crate provides the memory-system half of our discrete-event
//! substitute for that simulator:
//!
//! * [`Cache`] — a set-associative, write-allocate cache with LRU
//!   replacement, simulated per access.
//! * [`MemModel`] — a single-level cache + flat memory cost model that maps
//!   an address trace to cycles, with hit/miss counters.
//! * [`AddressMap`] — a bump allocator assigning disjoint address ranges to
//!   arrays so kernels can generate realistic address traces.
//! * [`analytic`] — a cheap closed-form alternative for very large runs
//!   where per-access simulation is too slow (used for the class-B `mvm`
//!   sweeps).
//! * [`tile`] — tile-size prediction for the phased executor's
//!   phase-local iteration tiling (validated against a per-access sweep
//!   in `tests/tile_prediction.rs`).
//!
//! The default parameters ([`MemConfig::i860xp`]) approximate the i860XP's
//! 16 KiB 4-way data cache with 32-byte lines; the miss penalty is the
//! knob we calibrate against the paper's sequential running times (see
//! `EXPERIMENTS.md`).

pub mod address;
pub mod analytic;
pub mod cache;
pub mod model;
pub mod tile;

pub use address::{AddressMap, Region};
pub use analytic::StreamModel;
pub use cache::{AccessKind, Cache, CacheConfig};
pub use model::{MemConfig, MemModel, MemStats};
pub use tile::{predict_tile_elems, MIN_TILE_ELEMS};
