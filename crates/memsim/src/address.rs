//! Address-space bookkeeping for simulated nodes.
//!
//! Each simulated node has its own flat address space. Arrays are
//! registered once through [`AddressMap::alloc`] and the returned
//! [`Region`] converts element indices to byte addresses, which the
//! kernels feed to the cache model. Regions are aligned to cache lines so
//! distinct arrays never share a line (the common case on a real
//! allocator for large arrays).

/// A contiguous allocation inside a node's simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    elem_bytes: u32,
    len: usize,
}

impl Region {
    /// Byte address of element `i`. Panics in debug builds when out of
    /// bounds — an out-of-range address would silently alias another array
    /// and corrupt the locality measurement.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "index {i} out of region of len {}", self.len);
        self.base + (i as u64) * u64::from(self.elem_bytes)
    }

    /// Base byte address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of one element in bytes.
    pub fn elem_bytes(&self) -> u32 {
        self.elem_bytes
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        self.len as u64 * u64::from(self.elem_bytes)
    }
}

/// Bump allocator for one node's simulated address space.
#[derive(Debug, Clone)]
pub struct AddressMap {
    next: u64,
    align: u64,
}

impl Default for AddressMap {
    fn default() -> Self {
        Self::new(64)
    }
}

impl AddressMap {
    /// `align` is the alignment applied to every region (use the cache
    /// line size or larger).
    pub fn new(align: u64) -> Self {
        assert!(align.is_power_of_two());
        // Start away from address 0 so "null-ish" addresses stand out in
        // traces.
        AddressMap { next: 4096, align }
    }

    /// Reserve a region of `len` elements of `elem_bytes` each.
    pub fn alloc(&mut self, len: usize, elem_bytes: u32) -> Region {
        let base = self.next;
        let sz = (len as u64) * u64::from(elem_bytes);
        self.next = (base + sz + self.align - 1) & !(self.align - 1);
        Region {
            base,
            elem_bytes,
            len,
        }
    }

    /// Convenience: a region of `len` f64 elements.
    pub fn alloc_f64(&mut self, len: usize) -> Region {
        self.alloc(len, 8)
    }

    /// Convenience: a region of `len` u32 elements.
    pub fn alloc_u32(&mut self, len: usize) -> Region {
        self.alloc(len, 4)
    }

    /// Total bytes reserved so far.
    pub fn reserved(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_aligned() {
        let mut m = AddressMap::new(64);
        let a = m.alloc_f64(100);
        let b = m.alloc_u32(7);
        let c = m.alloc_f64(1);
        assert!(
            a.base().is_multiple_of(64)
                && b.base().is_multiple_of(64)
                && c.base().is_multiple_of(64)
        );
        assert!(a.base() + a.bytes() <= b.base());
        assert!(b.base() + b.bytes() <= c.base());
    }

    #[test]
    fn addr_strides_by_elem_size() {
        let mut m = AddressMap::default();
        let r = m.alloc_f64(10);
        assert_eq!(r.addr(3) - r.addr(0), 24);
        let r2 = m.alloc_u32(10);
        assert_eq!(r2.addr(5) - r2.addr(0), 20);
    }

    #[test]
    #[should_panic(expected = "out of region")]
    #[cfg(debug_assertions)]
    fn out_of_bounds_panics_in_debug() {
        let mut m = AddressMap::default();
        let r = m.alloc_f64(4);
        let _ = r.addr(4);
    }

    #[test]
    fn empty_region() {
        let mut m = AddressMap::default();
        let r = m.alloc_f64(0);
        assert!(r.is_empty());
        assert_eq!(r.bytes(), 0);
    }
}
