//! The wire protocol: length-prefixed, versioned frames with a
//! panic-free decoder.
//!
//! Every frame on the wire is `[len: u32 LE][type: u8][payload]`, where
//! `len` counts the type byte plus the payload. The codec never trusts
//! a length field: counts are validated against the bytes actually
//! present *before* any allocation, every read is bounds-checked, and
//! malformed input yields a typed [`ProtocolError`] — the decoder is
//! total over arbitrary byte strings (property-fuzzed in
//! `tests/protocol_fuzz.rs`).
//!
//! A connection opens with [`Hello`] / [`HelloAck`], which pins the
//! protocol version and negotiates the frame-size limit; until the
//! handshake completes the server only accepts frames up to
//! [`HELLO_MAX_FRAME`], so an unauthenticated peer cannot ask it to
//! buffer megabytes.

/// Magic bytes opening every [`Hello`] payload.
pub const MAGIC: [u8; 4] = *b"IRED";
/// Protocol version this build speaks.
pub const VERSION: u16 = 1;
/// Default (and maximum negotiable) frame size.
pub const DEFAULT_MAX_FRAME: u32 = 16 << 20;
/// Frame-size cap before the handshake completes: a [`Hello`] is tiny.
pub const HELLO_MAX_FRAME: u32 = 4096;
/// Hard caps on job geometry, independent of frame size.
pub const MAX_ELEMENTS: u32 = 1 << 24;
pub const MAX_ITERATIONS: u32 = 1 << 24;
/// Largest DSL source a [`SubmitSource`] may carry (bytes).
pub const MAX_SOURCE: u32 = 64 << 10;
/// Most named bindings (per kind) a [`SubmitSource`] may carry.
pub const MAX_BINDINGS: u8 = 32;

/// `SubmitJob.flags` bit: fail the job instead of falling back to the
/// sequential executor when the native ladder is exhausted.
pub const FLAG_NO_FALLBACK: u8 = 1;

const T_HELLO: u8 = 0x01;
const T_HELLO_ACK: u8 = 0x02;
const T_SUBMIT_JOB: u8 = 0x03;
const T_JOB_OK: u8 = 0x04;
const T_JOB_ERR: u8 = 0x05;
const T_BUSY: u8 = 0x06;
const T_GET_METRICS: u8 = 0x07;
const T_METRICS_REPORT: u8 = 0x08;
const T_SHUTDOWN: u8 = 0x09;
const T_SHUTDOWN_ACK: u8 = 0x0A;
const T_PROTO_ERR: u8 = 0x0B;
const T_SUBMIT_SOURCE: u8 = 0x0C;

/// Why a frame (or frame header) was rejected. Every variant is a
/// protocol-level fault of the *peer*; none of them are server bugs,
/// and none of them panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The `Hello` payload did not open with [`MAGIC`].
    BadMagic,
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion { got: u16 },
    /// Unknown frame-type byte.
    UnknownType(u8),
    /// A declared length field exceeds the negotiated frame limit.
    Oversized { len: u32, max: u32 },
    /// A zero-length frame (no type byte).
    EmptyFrame,
    /// The payload ended before `what` could be read in full.
    Truncated { what: &'static str },
    /// A field held a value outside its legal range.
    BadValue { what: &'static str, got: u64 },
    /// Bytes left over after the last field of the frame.
    TrailingBytes { extra: usize },
    /// A string field was not valid UTF-8.
    BadUtf8 { what: &'static str },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadMagic => write!(f, "handshake does not start with IRED magic"),
            ProtocolError::UnsupportedVersion { got } => {
                write!(f, "unsupported protocol version {got} (want {VERSION})")
            }
            ProtocolError::UnknownType(t) => write!(f, "unknown frame type 0x{t:02X}"),
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            ProtocolError::EmptyFrame => write!(f, "zero-length frame"),
            ProtocolError::Truncated { what } => write!(f, "frame truncated reading {what}"),
            ProtocolError::BadValue { what, got } => {
                write!(f, "illegal value {got} for {what}")
            }
            ProtocolError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame payload")
            }
            ProtocolError::BadUtf8 { what } => write!(f, "{what} is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Typed per-job failure codes carried by [`JobErr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrCode {
    /// The inspector rejected the indirection/geometry.
    InvalidSpec = 1,
    /// Array shapes disagree with the kernel.
    Shape = 2,
    /// The strategy configuration is malformed.
    Strategy = 3,
    /// The engine cannot run this spec/backend combination.
    Unsupported = 4,
    /// A node panicked on every attempt.
    Panicked = 5,
    /// The watchdog declared the run stalled on every attempt.
    Stalled = 6,
    /// The job's deadline expired (before or during execution).
    Deadline = 7,
    /// Admission refused the job for a non-queue reason (e.g. shutdown).
    Refused = 8,
    /// A [`SubmitSource`] program failed to compile; the message is the
    /// compiler diagnostic verbatim (`line L:C: …`).
    Compile = 9,
}

impl ErrCode {
    pub fn from_u8(v: u8) -> Option<ErrCode> {
        Some(match v {
            1 => ErrCode::InvalidSpec,
            2 => ErrCode::Shape,
            3 => ErrCode::Strategy,
            4 => ErrCode::Unsupported,
            5 => ErrCode::Panicked,
            6 => ErrCode::Stalled,
            7 => ErrCode::Deadline,
            8 => ErrCode::Refused,
            9 => ErrCode::Compile,
            _ => return None,
        })
    }
}

/// Client handshake: pins the version, names the tenant, optionally
/// requests a frame limit (`0` = take the server default).
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    pub version: u16,
    pub tenant: String,
    pub max_frame: u32,
}

/// Server handshake reply: the granted limits.
#[derive(Debug, Clone, PartialEq)]
pub struct HelloAck {
    pub version: u16,
    pub max_frame: u32,
    pub queue_capacity: u32,
    pub tenant_inflight: u16,
}

/// Deterministic per-job fault injection (testing/chaos tenants).
/// `kind`: 0 = none, 1 = lossless, 2 = lossy, 3 = chaos — the
/// [`earth_model::FaultConfig`] preset ladders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    pub kind: u8,
    pub seed: u64,
}

/// One reduction job: a weighted-contribution kernel over `iterations`
/// edges into `num_refs` indirection arrays, reduced into `num_arrays`
/// component arrays of `num_elements` elements, swept `sweeps` times
/// under the given phased strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitJob {
    pub job_id: u64,
    /// Hard wall-clock budget in milliseconds; `0` = none.
    pub deadline_ms: u32,
    /// See [`FLAG_NO_FALLBACK`].
    pub flags: u8,
    pub num_elements: u32,
    pub iterations: u32,
    pub num_refs: u8,
    pub num_arrays: u8,
    pub procs: u16,
    pub k: u16,
    /// 0 = block, 1 = cyclic.
    pub dist: u8,
    pub sweeps: u16,
    pub fault: Option<FaultSpec>,
    /// One weight per iteration.
    pub weights: Vec<f64>,
    /// `num_refs` arrays of `iterations` element indices.
    pub indirection: Vec<Vec<u32>>,
}

/// A source-submitted job: a DSL program compiled server-side (through
/// the per-tenant compile cache) and executed under the given strategy
/// against the named bindings. Symbolic sizes bind through `sizes`;
/// input arrays through `f64s` / `ints`; declared f64 arrays not bound
/// start zeroed. The reply's `values` are every non-temporary declared
/// f64 array, in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitSource {
    pub job_id: u64,
    /// Hard wall-clock budget in milliseconds; `0` = none.
    pub deadline_ms: u32,
    pub procs: u16,
    pub k: u16,
    /// 0 = block, 1 = cyclic.
    pub dist: u8,
    pub sweeps: u16,
    /// DSL program text (at most [`MAX_SOURCE`] bytes).
    pub source: String,
    /// Symbolic size bindings (`n`, `e`, …).
    pub sizes: Vec<(String, u32)>,
    /// Named f64 input arrays.
    pub f64s: Vec<(String, Vec<f64>)>,
    /// Named int (indirection) input arrays.
    pub ints: Vec<(String, Vec<u32>)>,
}

/// Successful job result.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOk {
    pub job_id: u64,
    /// Severity of service degradation: 0 = native parallel
    /// (vectorized loops), 1 = native parallel with scalar loops (first
    /// shed rung), 2 = sequential (second shed rung, or the recovery
    /// ladder's fallback after native failures). Values are
    /// bit-identical at every level.
    pub degraded: u8,
    /// Native attempts made (0 when the job ran sequentially outright).
    pub attempts: u32,
    /// Fault-plan seed in effect at each attempt (replayability).
    pub fault_seeds: Vec<Option<u64>>,
    /// `num_arrays` arrays of `num_elements` values.
    pub values: Vec<Vec<f64>>,
}

/// Typed job failure. The daemon stays up; only this job failed.
#[derive(Debug, Clone, PartialEq)]
pub struct JobErr {
    pub job_id: u64,
    pub code: ErrCode,
    pub attempts: u32,
    pub fault_seeds: Vec<Option<u64>>,
    /// Engine error `Display` text verbatim (including the `StallDump`
    /// summary for watchdog stalls).
    pub message: String,
}

/// Admission backpressure: the queue is full, try again later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy {
    pub job_id: u64,
    pub retry_after_ms: u32,
}

/// Connection-level protocol fault report, sent before closing.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoErr {
    pub message: String,
}

/// Every frame the protocol speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    Hello(Hello),
    HelloAck(HelloAck),
    SubmitJob(SubmitJob),
    SubmitSource(SubmitSource),
    JobOk(JobOk),
    JobErr(JobErr),
    Busy(Busy),
    GetMetrics,
    MetricsReport(String),
    Shutdown,
    ShutdownAck,
    ProtoErr(ProtoErr),
}

// ---------------------------------------------------------------- encode

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn seeds(&mut self, seeds: &[Option<u64>]) {
        self.u32(seeds.len() as u32);
        for s in seeds {
            match s {
                Some(v) => {
                    self.u8(1);
                    self.u64(*v);
                }
                None => self.u8(0),
            }
        }
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

/// Encode a frame, *including* the 4-byte length prefix.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut e = Enc(vec![0, 0, 0, 0]);
    match frame {
        Frame::Hello(h) => {
            e.u8(T_HELLO);
            e.0.extend_from_slice(&MAGIC);
            e.u16(h.version);
            e.str(&h.tenant);
            e.u32(h.max_frame);
        }
        Frame::HelloAck(a) => {
            e.u8(T_HELLO_ACK);
            e.u16(a.version);
            e.u32(a.max_frame);
            e.u32(a.queue_capacity);
            e.u16(a.tenant_inflight);
        }
        Frame::SubmitJob(j) => {
            e.u8(T_SUBMIT_JOB);
            e.u64(j.job_id);
            e.u32(j.deadline_ms);
            e.u8(j.flags);
            e.u32(j.num_elements);
            e.u32(j.iterations);
            e.u8(j.num_refs);
            e.u8(j.num_arrays);
            e.u16(j.procs);
            e.u16(j.k);
            e.u8(j.dist);
            e.u16(j.sweeps);
            match j.fault {
                Some(f) => {
                    e.u8(f.kind);
                    e.u64(f.seed);
                }
                None => e.u8(0),
            }
            for w in &j.weights {
                e.f64(*w);
            }
            for arr in &j.indirection {
                for v in arr {
                    e.u32(*v);
                }
            }
        }
        Frame::SubmitSource(s) => {
            e.u8(T_SUBMIT_SOURCE);
            e.u64(s.job_id);
            e.u32(s.deadline_ms);
            e.u16(s.procs);
            e.u16(s.k);
            e.u8(s.dist);
            e.u16(s.sweeps);
            e.str(&s.source);
            e.u8(s.sizes.len() as u8);
            for (name, v) in &s.sizes {
                e.str(name);
                e.u32(*v);
            }
            e.u8(s.f64s.len() as u8);
            for (name, arr) in &s.f64s {
                e.str(name);
                e.u32(arr.len() as u32);
                for v in arr {
                    e.f64(*v);
                }
            }
            e.u8(s.ints.len() as u8);
            for (name, arr) in &s.ints {
                e.str(name);
                e.u32(arr.len() as u32);
                for v in arr {
                    e.u32(*v);
                }
            }
        }
        Frame::JobOk(o) => {
            e.u8(T_JOB_OK);
            e.u64(o.job_id);
            e.u8(o.degraded);
            e.u32(o.attempts);
            e.seeds(&o.fault_seeds);
            e.u8(o.values.len() as u8);
            for arr in &o.values {
                e.u32(arr.len() as u32);
                for v in arr {
                    e.f64(*v);
                }
            }
        }
        Frame::JobErr(j) => {
            e.u8(T_JOB_ERR);
            e.u64(j.job_id);
            e.u8(j.code as u8);
            e.u32(j.attempts);
            e.seeds(&j.fault_seeds);
            e.str(&j.message);
        }
        Frame::Busy(b) => {
            e.u8(T_BUSY);
            e.u64(b.job_id);
            e.u32(b.retry_after_ms);
        }
        Frame::GetMetrics => e.u8(T_GET_METRICS),
        Frame::MetricsReport(text) => {
            e.u8(T_METRICS_REPORT);
            e.str(text);
        }
        Frame::Shutdown => e.u8(T_SHUTDOWN),
        Frame::ShutdownAck => e.u8(T_SHUTDOWN_ACK),
        Frame::ProtoErr(p) => {
            e.u8(T_PROTO_ERR);
            e.str(&p.message);
        }
    }
    let len = (e.0.len() - 4) as u32;
    e.0[..4].copy_from_slice(&len.to_le_bytes());
    e.0
}

// ---------------------------------------------------------------- decode

/// Bounds-checked cursor over one frame's bytes. Every read either
/// returns the value or a [`ProtocolError::Truncated`] naming the field
/// — no slicing panics anywhere in the decode path.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ProtocolError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, ProtocolError> {
        let b = self.bytes(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ProtocolError> {
        let b = self.bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ProtocolError> {
        let b = self.bytes(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A `u32` count that must be coverable by `elem_size`-byte items in
    /// the bytes that remain — checked *before* any allocation, so a
    /// hostile length field cannot trigger an OOM.
    fn count(&mut self, elem_size: usize, what: &'static str) -> Result<usize, ProtocolError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(elem_size) > self.remaining() {
            return Err(ProtocolError::Truncated { what });
        }
        Ok(n)
    }

    fn str(&mut self, what: &'static str) -> Result<String, ProtocolError> {
        let n = self.count(1, what)?;
        let b = self.bytes(n, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| ProtocolError::BadUtf8 { what })
    }

    fn seeds(&mut self) -> Result<Vec<Option<u64>>, ProtocolError> {
        let n = self.count(1, "fault seed list")?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(match self.u8("fault seed tag")? {
                0 => None,
                1 => Some(self.u64("fault seed")?),
                t => {
                    return Err(ProtocolError::BadValue {
                        what: "fault seed tag",
                        got: u64::from(t),
                    })
                }
            });
        }
        Ok(out)
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.remaining() != 0 {
            return Err(ProtocolError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Validate a frame-length prefix against the negotiated limit.
pub fn check_len(len: u32, max: u32) -> Result<usize, ProtocolError> {
    if len == 0 {
        return Err(ProtocolError::EmptyFrame);
    }
    if len > max {
        return Err(ProtocolError::Oversized { len, max });
    }
    Ok(len as usize)
}

/// Decode one frame from its bytes (type byte + payload, *without* the
/// length prefix). Total over arbitrary input: returns a typed error
/// for anything malformed, never panics, never over-allocates.
pub fn decode(frame: &[u8]) -> Result<Frame, ProtocolError> {
    let mut d = Dec::new(frame);
    let ty = d.u8("frame type").map_err(|_| ProtocolError::EmptyFrame)?;
    let frame = match ty {
        T_HELLO => {
            let magic = d.bytes(4, "magic")?;
            if magic != MAGIC {
                return Err(ProtocolError::BadMagic);
            }
            let version = d.u16("version")?;
            if version != VERSION {
                return Err(ProtocolError::UnsupportedVersion { got: version });
            }
            let tenant = d.str("tenant name")?;
            if tenant.is_empty() || tenant.len() > 128 {
                return Err(ProtocolError::BadValue {
                    what: "tenant name length",
                    got: tenant.len() as u64,
                });
            }
            let max_frame = d.u32("requested max frame")?;
            Frame::Hello(Hello {
                version,
                tenant,
                max_frame,
            })
        }
        T_HELLO_ACK => {
            let version = d.u16("version")?;
            let max_frame = d.u32("max frame")?;
            let queue_capacity = d.u32("queue capacity")?;
            let tenant_inflight = d.u16("tenant inflight cap")?;
            Frame::HelloAck(HelloAck {
                version,
                max_frame,
                queue_capacity,
                tenant_inflight,
            })
        }
        T_SUBMIT_JOB => Frame::SubmitJob(decode_submit(&mut d)?),
        T_SUBMIT_SOURCE => Frame::SubmitSource(decode_submit_source(&mut d)?),
        T_JOB_OK => {
            let job_id = d.u64("job id")?;
            let degraded = d.u8("degraded flag")?;
            let attempts = d.u32("attempts")?;
            let fault_seeds = d.seeds()?;
            let num_arrays = d.u8("value array count")? as usize;
            let mut values = Vec::with_capacity(num_arrays);
            for _ in 0..num_arrays {
                // Per-array length (source jobs return decl arrays of
                // differing sizes), validated against the bytes present
                // before the allocation.
                let per = d.count(8, "values per array")?;
                let mut arr = Vec::with_capacity(per);
                for _ in 0..per {
                    arr.push(d.f64("value")?);
                }
                values.push(arr);
            }
            Frame::JobOk(JobOk {
                job_id,
                degraded,
                attempts,
                fault_seeds,
                values,
            })
        }
        T_JOB_ERR => {
            let job_id = d.u64("job id")?;
            let code_raw = d.u8("error code")?;
            let code = ErrCode::from_u8(code_raw).ok_or(ProtocolError::BadValue {
                what: "error code",
                got: u64::from(code_raw),
            })?;
            let attempts = d.u32("attempts")?;
            let fault_seeds = d.seeds()?;
            let message = d.str("error message")?;
            Frame::JobErr(JobErr {
                job_id,
                code,
                attempts,
                fault_seeds,
                message,
            })
        }
        T_BUSY => Frame::Busy(Busy {
            job_id: d.u64("job id")?,
            retry_after_ms: d.u32("retry-after")?,
        }),
        T_GET_METRICS => Frame::GetMetrics,
        T_METRICS_REPORT => Frame::MetricsReport(d.str("metrics text")?),
        T_SHUTDOWN => Frame::Shutdown,
        T_SHUTDOWN_ACK => Frame::ShutdownAck,
        T_PROTO_ERR => Frame::ProtoErr(ProtoErr {
            message: d.str("protocol error message")?,
        }),
        t => return Err(ProtocolError::UnknownType(t)),
    };
    d.finish()?;
    Ok(frame)
}

fn decode_submit(d: &mut Dec<'_>) -> Result<SubmitJob, ProtocolError> {
    let job_id = d.u64("job id")?;
    let deadline_ms = d.u32("deadline")?;
    let flags = d.u8("flags")?;
    if flags & !FLAG_NO_FALLBACK != 0 {
        return Err(ProtocolError::BadValue {
            what: "flags",
            got: u64::from(flags),
        });
    }
    let num_elements = d.u32("num elements")?;
    if num_elements == 0 || num_elements > MAX_ELEMENTS {
        return Err(ProtocolError::BadValue {
            what: "num elements",
            got: u64::from(num_elements),
        });
    }
    let iterations = d.u32("iterations")?;
    if iterations == 0 || iterations > MAX_ITERATIONS {
        return Err(ProtocolError::BadValue {
            what: "iterations",
            got: u64::from(iterations),
        });
    }
    let num_refs = d.u8("num refs")?;
    if !(1..=4).contains(&num_refs) {
        return Err(ProtocolError::BadValue {
            what: "num refs",
            got: u64::from(num_refs),
        });
    }
    let num_arrays = d.u8("num arrays")?;
    if !(1..=3).contains(&num_arrays) {
        return Err(ProtocolError::BadValue {
            what: "num arrays",
            got: u64::from(num_arrays),
        });
    }
    let procs = d.u16("procs")?;
    let k = d.u16("k")?;
    let dist = d.u8("distribution")?;
    if dist > 1 {
        return Err(ProtocolError::BadValue {
            what: "distribution",
            got: u64::from(dist),
        });
    }
    let sweeps = d.u16("sweeps")?;
    let fault = match d.u8("fault kind")? {
        0 => None,
        kind @ 1..=3 => Some(FaultSpec {
            kind,
            seed: d.u64("fault seed")?,
        }),
        kind => {
            return Err(ProtocolError::BadValue {
                what: "fault kind",
                got: u64::from(kind),
            })
        }
    };
    let iters = iterations as usize;
    // The payload carries `iters` weights then `num_refs * iters`
    // indices: check the whole tail is present before allocating.
    let need = iters
        .saturating_mul(8)
        .saturating_add(iters.saturating_mul(num_refs as usize).saturating_mul(4));
    if d.remaining() < need {
        return Err(ProtocolError::Truncated {
            what: "job payload (weights + indirection)",
        });
    }
    let mut weights = Vec::with_capacity(iters);
    for _ in 0..iters {
        weights.push(d.f64("weight")?);
    }
    let mut indirection = Vec::with_capacity(num_refs as usize);
    for _ in 0..num_refs {
        let mut arr = Vec::with_capacity(iters);
        for _ in 0..iters {
            arr.push(d.u32("indirection entry")?);
        }
        indirection.push(arr);
    }
    Ok(SubmitJob {
        job_id,
        deadline_ms,
        flags,
        num_elements,
        iterations,
        num_refs,
        num_arrays,
        procs,
        k,
        dist,
        sweeps,
        fault,
        weights,
        indirection,
    })
}

fn decode_submit_source(d: &mut Dec<'_>) -> Result<SubmitSource, ProtocolError> {
    let job_id = d.u64("job id")?;
    let deadline_ms = d.u32("deadline")?;
    let procs = d.u16("procs")?;
    let k = d.u16("k")?;
    let dist = d.u8("distribution")?;
    if dist > 1 {
        return Err(ProtocolError::BadValue {
            what: "distribution",
            got: u64::from(dist),
        });
    }
    let sweeps = d.u16("sweeps")?;
    let source = d.str("source text")?;
    if source.is_empty() || source.len() > MAX_SOURCE as usize {
        return Err(ProtocolError::BadValue {
            what: "source text length",
            got: source.len() as u64,
        });
    }
    let name = |d: &mut Dec<'_>, what: &'static str| -> Result<String, ProtocolError> {
        let s = d.str(what)?;
        if s.is_empty() || s.len() > 64 {
            return Err(ProtocolError::BadValue {
                what,
                got: s.len() as u64,
            });
        }
        Ok(s)
    };
    let bind_count = |d: &mut Dec<'_>, what: &'static str| -> Result<usize, ProtocolError> {
        let n = d.u8(what)?;
        if n > MAX_BINDINGS {
            return Err(ProtocolError::BadValue {
                what,
                got: u64::from(n),
            });
        }
        Ok(usize::from(n))
    };

    let n_sizes = bind_count(d, "size binding count")?;
    let mut sizes = Vec::with_capacity(n_sizes);
    for _ in 0..n_sizes {
        let nm = name(d, "size binding name")?;
        sizes.push((nm, d.u32("size binding value")?));
    }
    let n_f64s = bind_count(d, "f64 binding count")?;
    let mut f64s = Vec::with_capacity(n_f64s);
    for _ in 0..n_f64s {
        let nm = name(d, "f64 binding name")?;
        let len = d.count(8, "f64 binding length")?;
        let mut arr = Vec::with_capacity(len);
        for _ in 0..len {
            arr.push(d.f64("f64 binding value")?);
        }
        f64s.push((nm, arr));
    }
    let n_ints = bind_count(d, "int binding count")?;
    let mut ints = Vec::with_capacity(n_ints);
    for _ in 0..n_ints {
        let nm = name(d, "int binding name")?;
        let len = d.count(4, "int binding length")?;
        let mut arr = Vec::with_capacity(len);
        for _ in 0..len {
            arr.push(d.u32("int binding value")?);
        }
        ints.push((nm, arr));
    }
    Ok(SubmitSource {
        job_id,
        deadline_ms,
        procs,
        k,
        dist,
        sweeps,
        source,
        sizes,
        f64s,
        ints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = encode(&f);
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let n = check_len(len, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(n, bytes.len() - 4);
        assert_eq!(decode(&bytes[4..]).unwrap(), f);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Hello(Hello {
            version: VERSION,
            tenant: "acme".into(),
            max_frame: 0,
        }));
        roundtrip(Frame::HelloAck(HelloAck {
            version: VERSION,
            max_frame: DEFAULT_MAX_FRAME,
            queue_capacity: 64,
            tenant_inflight: 4,
        }));
        roundtrip(Frame::SubmitJob(SubmitJob {
            job_id: 7,
            deadline_ms: 250,
            flags: FLAG_NO_FALLBACK,
            num_elements: 8,
            iterations: 3,
            num_refs: 2,
            num_arrays: 1,
            procs: 2,
            k: 2,
            dist: 1,
            sweeps: 2,
            fault: Some(FaultSpec { kind: 3, seed: 42 }),
            weights: vec![1.0, -0.5, 1.25e300],
            indirection: vec![vec![0, 1, 7], vec![3, 3, 0]],
        }));
        roundtrip(Frame::SubmitSource(SubmitSource {
            job_id: 11,
            deadline_ms: 0,
            procs: 4,
            k: 2,
            dist: 1,
            sweeps: 1,
            source: "double X[n]; int A[e];\nforall (i = 0; i < e; i++) { X[A[i]] += 1.0; }".into(),
            sizes: vec![("n".into(), 8), ("e".into(), 3)],
            f64s: vec![("W".into(), vec![0.5, -1.0, 2.0])],
            ints: vec![("A".into(), vec![0, 7, 3])],
        }));
        roundtrip(Frame::JobOk(JobOk {
            job_id: 7,
            degraded: 1,
            attempts: 2,
            fault_seeds: vec![Some(42), Some(43), None],
            // Differing lengths: source jobs return decl arrays as-is.
            values: vec![vec![1.5, 2.5], vec![0.0, -1.0, 3.25]],
        }));
        roundtrip(Frame::JobErr(JobErr {
            job_id: 9,
            code: ErrCode::Stalled,
            attempts: 2,
            fault_seeds: vec![Some(1)],
            message: "run failed: stalled".into(),
        }));
        roundtrip(Frame::Busy(Busy {
            job_id: 1,
            retry_after_ms: 50,
        }));
        roundtrip(Frame::GetMetrics);
        roundtrip(Frame::MetricsReport("jobs_ok{tenant=acme} 3\n".into()));
        roundtrip(Frame::Shutdown);
        roundtrip(Frame::ShutdownAck);
        roundtrip(Frame::ProtoErr(ProtoErr {
            message: "oversized".into(),
        }));
    }

    #[test]
    fn hostile_lengths_are_rejected_before_allocation() {
        // A SubmitJob header claiming 2^24 iterations with a 40-byte
        // payload must fail with Truncated, not attempt the alloc.
        let mut bytes = encode(&Frame::SubmitJob(SubmitJob {
            job_id: 1,
            deadline_ms: 0,
            flags: 0,
            num_elements: 8,
            iterations: 2,
            num_refs: 2,
            num_arrays: 1,
            procs: 1,
            k: 1,
            dist: 0,
            sweeps: 1,
            fault: None,
            weights: vec![1.0, 2.0],
            indirection: vec![vec![0, 1], vec![2, 3]],
        }));
        // iterations field lives at offset 4(len)+1(type)+8+4+1+4 = 22.
        bytes[22..26].copy_from_slice(&MAX_ITERATIONS.to_le_bytes());
        assert_eq!(
            decode(&bytes[4..]),
            Err(ProtocolError::Truncated {
                what: "job payload (weights + indirection)"
            })
        );
    }

    #[test]
    fn truncations_and_trailers_are_typed() {
        let bytes = encode(&Frame::Busy(Busy {
            job_id: 1,
            retry_after_ms: 5,
        }));
        let payload = &bytes[4..];
        for cut in 0..payload.len() {
            let r = decode(&payload[..cut]);
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
        let mut extra = payload.to_vec();
        extra.push(0xFF);
        assert_eq!(
            decode(&extra),
            Err(ProtocolError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn frame_length_limits() {
        assert_eq!(check_len(0, 100), Err(ProtocolError::EmptyFrame));
        assert_eq!(
            check_len(101, 100),
            Err(ProtocolError::Oversized { len: 101, max: 100 })
        );
        assert_eq!(check_len(100, 100), Ok(100));
    }

    #[test]
    fn bad_magic_and_version() {
        let mut hello = encode(&Frame::Hello(Hello {
            version: VERSION,
            tenant: "t".into(),
            max_frame: 0,
        }));
        let payload_start = 4;
        hello[payload_start + 1] = b'X';
        assert_eq!(decode(&hello[4..]), Err(ProtocolError::BadMagic));

        let mut hello2 = encode(&Frame::Hello(Hello {
            version: VERSION,
            tenant: "t".into(),
            max_frame: 0,
        }));
        hello2[payload_start + 5] = 9; // version LE low byte
        assert_eq!(
            decode(&hello2[4..]),
            Err(ProtocolError::UnsupportedVersion { got: 9 })
        );
    }
}
