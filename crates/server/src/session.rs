//! Per-connection protocol state machine: handshake, deadline-guarded
//! frame reading, and dispatch into admission.
//!
//! Robustness rules, in order of appearance on a connection:
//! - before the handshake only [`HELLO_MAX_FRAME`]-sized frames are
//!   accepted, so an anonymous peer cannot make the server buffer much;
//! - a connection that sits idle longer than `idle_timeout` between
//!   frames is dropped;
//! - once the first byte of a frame arrives, the *whole* frame must
//!   arrive within `midframe_timeout` — a client trickling one byte at
//!   a time (slowloris) is dropped, not waited on;
//! - any protocol violation gets one best-effort [`ProtoErr`] frame and
//!   the connection is closed. The daemon never answers garbage with a
//!   panic, a hang, or silence-plus-leak.

use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::admission::{Admit, Job, JobWork};
use crate::protocol::{
    check_len, decode, encode, Busy, ErrCode, Frame, HelloAck, JobErr, ProtoErr, ProtocolError,
    HELLO_MAX_FRAME, VERSION,
};
use crate::ServerInner;

/// Coarse poll interval for read timeouts: short enough that idle /
/// slowloris / shutdown checks are responsive, long enough to be free.
const POLL: Duration = Duration::from_millis(25);

/// A shared, mutex-serialized writer for one connection. Worker threads
/// and the session thread both send through it; a write failure (client
/// gone) drops the writer and later sends become no-ops — job results
/// for a disconnected client are discarded, never block a worker.
#[derive(Clone)]
pub struct Reply {
    w: Arc<Mutex<Option<Box<dyn Write + Send>>>>,
}

impl Reply {
    pub fn new(w: Box<dyn Write + Send>) -> Reply {
        Reply {
            w: Arc::new(Mutex::new(Some(w))),
        }
    }

    /// A reply that discards everything (tests, abandoned jobs).
    pub fn sink() -> Reply {
        Reply {
            w: Arc::new(Mutex::new(None)),
        }
    }

    /// Send a frame; returns whether the client is still reachable.
    pub fn send(&self, frame: &Frame) -> bool {
        let bytes = encode(frame);
        let mut guard = self.w.lock().unwrap();
        let Some(w) = guard.as_mut() else {
            return false;
        };
        if w.write_all(&bytes).and_then(|()| w.flush()).is_err() {
            *guard = None;
            return false;
        }
        true
    }
}

/// Transport abstraction: TCP and Unix sockets both serve sessions.
pub trait Conn: Read + Send + Sized + 'static {
    fn set_read_timeout_(&self, d: Option<Duration>) -> io::Result<()>;
    fn writer(&self) -> io::Result<Box<dyn Write + Send>>;
}

impl Conn for TcpStream {
    fn set_read_timeout_(&self, d: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(d)
    }
    fn writer(&self) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn set_read_timeout_(&self, d: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(d)
    }
    fn writer(&self) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

enum ReadEnd {
    Frame(Vec<u8>),
    /// Clean close, idle timeout, slowloris, I/O error, or shutdown —
    /// all end the session without a reply.
    Closed,
    Proto(ProtocolError),
}

/// Read one length-prefixed frame under the deadline regime.
fn read_frame<C: Conn>(
    conn: &mut C,
    max_frame: u32,
    idle_timeout: Duration,
    midframe_timeout: Duration,
    shutdown: &AtomicBool,
) -> ReadEnd {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    let idle_deadline = Instant::now() + idle_timeout;
    // A frame's clock starts at its first byte.
    let mut frame_deadline: Option<Instant> = None;
    let mut body: Option<(Vec<u8>, usize)> = None;

    loop {
        if shutdown.load(Ordering::Relaxed) {
            return ReadEnd::Closed;
        }
        let now = Instant::now();
        match frame_deadline {
            Some(d) if now >= d => return ReadEnd::Closed, // slowloris
            None if now >= idle_deadline => return ReadEnd::Closed,
            _ => {}
        }
        let dst: &mut [u8] = match &mut body {
            None => &mut header[got..],
            Some((buf, read)) => &mut buf[*read..],
        };
        match conn.read(dst) {
            Ok(0) => return ReadEnd::Closed,
            Ok(n) => {
                if frame_deadline.is_none() {
                    frame_deadline = Some(Instant::now() + midframe_timeout);
                }
                match &mut body {
                    None => {
                        got += n;
                        if got == 4 {
                            let len = u32::from_le_bytes(header);
                            match check_len(len, max_frame) {
                                Ok(n) => body = Some((vec![0u8; n], 0)),
                                Err(e) => return ReadEnd::Proto(e),
                            }
                        }
                    }
                    Some((buf, read)) => {
                        *read += n;
                        if *read == buf.len() {
                            let (buf, _) = body.take().expect("body present");
                            return ReadEnd::Frame(buf);
                        }
                    }
                }
            }
            Err(e) => match e.kind() {
                io::ErrorKind::WouldBlock
                | io::ErrorKind::TimedOut
                | io::ErrorKind::Interrupted => {}
                _ => return ReadEnd::Closed,
            },
        }
    }
}

/// Drive one connection to completion. Runs on its own thread; never
/// panics, never blocks forever (every wait is deadline- or
/// shutdown-bounded).
pub fn serve<C: Conn>(mut conn: C, srv: Arc<ServerInner>) {
    let Ok(writer) = conn.writer() else { return };
    let reply = Reply::new(writer);
    if conn.set_read_timeout_(Some(POLL)).is_err() {
        return;
    }

    let mut tenant: Option<String> = None;
    let mut max_frame = HELLO_MAX_FRAME;

    loop {
        let bytes = match read_frame(
            &mut conn,
            max_frame,
            srv.cfg.idle_timeout,
            srv.cfg.midframe_timeout,
            &srv.shutdown,
        ) {
            ReadEnd::Frame(b) => b,
            ReadEnd::Closed => return,
            ReadEnd::Proto(e) => {
                srv.count_proto_error();
                reply.send(&Frame::ProtoErr(ProtoErr {
                    message: e.to_string(),
                }));
                return;
            }
        };
        let frame = match decode(&bytes) {
            Ok(f) => f,
            Err(e) => {
                srv.count_proto_error();
                reply.send(&Frame::ProtoErr(ProtoErr {
                    message: e.to_string(),
                }));
                return;
            }
        };

        match (frame, &tenant) {
            (Frame::Hello(h), None) => {
                let granted = match h.max_frame {
                    0 => srv.cfg.max_frame,
                    req => req.min(srv.cfg.max_frame).max(HELLO_MAX_FRAME),
                };
                max_frame = granted;
                tenant = Some(h.tenant);
                reply.send(&Frame::HelloAck(HelloAck {
                    version: VERSION,
                    max_frame: granted,
                    queue_capacity: srv.admission.config().queue_capacity as u32,
                    tenant_inflight: srv.admission.config().tenant_inflight as u16,
                }));
            }
            (Frame::Hello(_), Some(_)) => {
                srv.count_proto_error();
                reply.send(&Frame::ProtoErr(ProtoErr {
                    message: "duplicate Hello".into(),
                }));
                return;
            }
            (frame @ (Frame::SubmitJob(_) | Frame::SubmitSource(_)), Some(t)) => {
                let work = match frame {
                    Frame::SubmitJob(submit) => JobWork::Job(submit),
                    Frame::SubmitSource(src) => JobWork::Source(src),
                    _ => unreachable!("matched above"),
                };
                let deadline_ms = match &work {
                    JobWork::Job(j) => j.deadline_ms,
                    JobWork::Source(s) => s.deadline_ms,
                };
                let deadline = (deadline_ms > 0)
                    .then(|| Instant::now() + Duration::from_millis(u64::from(deadline_ms)));
                let job_id = work.job_id();
                let admit = srv.admission.submit(Job {
                    tenant: t.clone(),
                    work,
                    reply: reply.clone(),
                    deadline,
                });
                match admit {
                    Admit::Accepted => {}
                    Admit::Busy { retry_after_ms } => {
                        srv.count_tenant(t, "jobs_busy");
                        reply.send(&Frame::Busy(Busy {
                            job_id,
                            retry_after_ms,
                        }));
                    }
                    Admit::Refused => {
                        reply.send(&Frame::JobErr(JobErr {
                            job_id,
                            code: ErrCode::Refused,
                            attempts: 0,
                            fault_seeds: Vec::new(),
                            message: "server is shutting down".into(),
                        }));
                    }
                }
            }
            (Frame::GetMetrics, Some(_)) => {
                reply.send(&Frame::MetricsReport(srv.metrics_report()));
            }
            (Frame::Shutdown, Some(_)) => {
                reply.send(&Frame::ShutdownAck);
                srv.begin_shutdown();
                return;
            }
            _ => {
                srv.count_proto_error();
                reply.send(&Frame::ProtoErr(ProtoErr {
                    message: "frame not valid in this state".into(),
                }));
                return;
            }
        }
    }
}
