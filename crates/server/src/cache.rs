//! The serving-layer plan cache: structure-hash keyed prepared runs
//! with workspace pooling and failure quarantine.
//!
//! This is the paper's amortization argument lifted to a daemon: the
//! inspector runs once per *structure* (indirection contents, strategy,
//! geometry), and every later job with the same structure reuses the
//! plan, swapping in its own kernel values via
//! [`PreparedPhased::set_kernel`]. Entries are checked out exclusively
//! (removed from the map while a worker executes on them) so the cache
//! itself needs no interior locking beyond its own mutex, and a plan
//! that fails repeatedly is *quarantined* — dropped so the next job
//! with that structure re-prepares from scratch rather than re-using
//! state a faulty run may have left behind.

use std::collections::HashMap;

use irred::{PreparedPhased, Workspace};

use crate::executor::JobKernel;

/// Consecutive checked-in failures after which an entry is dropped.
const QUARANTINE_AFTER: u32 = 2;
/// Resident plan cap: oldest entries are evicted beyond this.
const MAX_ENTRIES: usize = 64;

struct Entry {
    prepared: Box<PreparedPhased<JobKernel>>,
    ws: Workspace,
    /// Consecutive failures observed on check-in.
    failures: u32,
    /// Insertion stamp for FIFO eviction.
    stamp: u64,
}

/// What a checkout found.
pub enum Checkout {
    /// A cached plan for this structure (exclusively owned until
    /// [`PlanCache::checkin`]). `failures` is the entry's consecutive
    /// failure count so far; the caller threads it back into
    /// [`PlanCache::checkin`].
    Hit {
        prepared: Box<PreparedPhased<JobKernel>>,
        ws: Workspace,
        failures: u32,
    },
    /// No cached plan — prepare one and check it in (failure count 0).
    Miss,
}

/// Structure-hash keyed plan cache. All methods take `&mut self`; the
/// server wraps it in a mutex held only for the map operation, never
/// across an execute.
#[derive(Default)]
pub struct PlanCache {
    entries: HashMap<u64, Entry>,
    next_stamp: u64,
    pub hits: u64,
    pub misses: u64,
    pub quarantined: u64,
    pub evicted: u64,
}

impl PlanCache {
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Take the plan for `key` out of the cache, if present. The caller
    /// owns it exclusively until `checkin`; a concurrent job with the
    /// same structure simply misses and prepares its own copy (the
    /// later check-in wins, the earlier one is dropped by stamp order).
    pub fn checkout(&mut self, key: u64) -> Checkout {
        match self.entries.remove(&key) {
            Some(e) => {
                self.hits += 1;
                Checkout::Hit {
                    prepared: e.prepared,
                    ws: e.ws,
                    failures: e.failures,
                }
            }
            None => {
                self.misses += 1;
                Checkout::Miss
            }
        }
    }

    /// Return a plan after a job. `ok = false` counts a failure; a plan
    /// that keeps failing is quarantined (dropped) so the next job
    /// re-prepares instead of inheriting poisoned state. The failure
    /// count survives check-out/check-in cycles via the entry itself,
    /// so two failing jobs in a row are enough regardless of
    /// interleaving with the map.
    pub fn checkin(
        &mut self,
        key: u64,
        prepared: Box<PreparedPhased<JobKernel>>,
        ws: Workspace,
        ok: bool,
        prior_failures: u32,
    ) {
        let failures = if ok { 0 } else { prior_failures + 1 };
        if failures >= QUARANTINE_AFTER {
            self.quarantined += 1;
            return;
        }
        if self.entries.len() >= MAX_ENTRIES {
            // FIFO eviction: drop the oldest stamp.
            if let Some(&old) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k)
            {
                self.entries.remove(&old);
                self.evicted += 1;
            }
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.entries.insert(
            key,
            Entry {
                prepared,
                ws,
                failures,
                stamp,
            },
        );
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}
