//! A small blocking client for the daemon: used by the `bench_server`
//! harness, the chaos soak test, and anyone scripting against
//! `reductiond`.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

use crate::protocol::{
    check_len, decode, encode, Frame, Hello, ProtocolError, SubmitJob, SubmitSource,
    DEFAULT_MAX_FRAME, VERSION,
};

/// Client-side failures: transport, protocol, or an unexpected frame.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    Proto(ProtocolError),
    /// The server closed the connection (or a read timed out).
    Closed,
    /// Handshake got something other than `HelloAck`.
    BadHandshake,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "connection closed by server"),
            ClientError::BadHandshake => write!(f, "handshake rejected"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Proto(e)
    }
}

/// A connected, handshaken client over any stream transport.
pub struct Client<S: Read + Write> {
    stream: S,
    pub max_frame: u32,
}

impl Client<TcpStream> {
    /// Connect over TCP, handshake as `tenant`.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Client::handshake(stream, tenant)
    }
}

#[cfg(unix)]
impl Client<UnixStream> {
    /// Connect over a Unix socket, handshake as `tenant`.
    pub fn connect_uds(path: &std::path::Path, tenant: &str) -> Result<Self, ClientError> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Client::handshake(stream, tenant)
    }
}

impl<S: Read + Write> Client<S> {
    fn handshake(stream: S, tenant: &str) -> Result<Self, ClientError> {
        let mut c = Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
        };
        c.send(&Frame::Hello(Hello {
            version: VERSION,
            tenant: tenant.into(),
            max_frame: 0,
        }))?;
        match c.recv()? {
            Frame::HelloAck(ack) => {
                c.max_frame = ack.max_frame;
                Ok(c)
            }
            _ => Err(ClientError::BadHandshake),
        }
    }

    /// Send one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        self.stream.write_all(&encode(frame))?;
        self.stream.flush()?;
        Ok(())
    }

    /// Write raw bytes — chaos clients use this to send garbage.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Read one frame (blocking, bounded by the stream read timeout).
    pub fn recv(&mut self) -> Result<Frame, ClientError> {
        let mut header = [0u8; 4];
        read_exact_or_closed(&mut self.stream, &mut header)?;
        let len = check_len(u32::from_le_bytes(header), self.max_frame)?;
        let mut buf = vec![0u8; len];
        read_exact_or_closed(&mut self.stream, &mut buf)?;
        Ok(decode(&buf)?)
    }

    /// Submit a job and wait for its terminal frame (`JobOk`, `JobErr`,
    /// or `Busy`), skipping responses to other in-flight jobs on this
    /// connection.
    pub fn submit(&mut self, job: SubmitJob) -> Result<Frame, ClientError> {
        let id = job.job_id;
        self.send(&Frame::SubmitJob(job))?;
        loop {
            let frame = self.recv()?;
            let done = match &frame {
                Frame::JobOk(o) => o.job_id == id,
                Frame::JobErr(e) => e.job_id == id,
                Frame::Busy(b) => b.job_id == id,
                _ => false,
            };
            if done {
                return Ok(frame);
            }
        }
    }

    /// Submit a source program and wait for its terminal frame
    /// (`JobOk`, `JobErr`, or `Busy`), skipping responses to other
    /// in-flight jobs on this connection.
    pub fn submit_source(&mut self, job: SubmitSource) -> Result<Frame, ClientError> {
        let id = job.job_id;
        self.send(&Frame::SubmitSource(job))?;
        loop {
            let frame = self.recv()?;
            let done = match &frame {
                Frame::JobOk(o) => o.job_id == id,
                Frame::JobErr(e) => e.job_id == id,
                Frame::Busy(b) => b.job_id == id,
                _ => false,
            };
            if done {
                return Ok(frame);
            }
        }
    }

    /// Fetch the server's metrics dump.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send(&Frame::GetMetrics)?;
        loop {
            if let Frame::MetricsReport(text) = self.recv()? {
                return Ok(text);
            }
        }
    }

    /// Ask the daemon to shut down; resolves on `ShutdownAck`.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Frame::Shutdown)?;
        loop {
            if let Frame::ShutdownAck = self.recv()? {
                return Ok(());
            }
        }
    }
}

fn read_exact_or_closed(r: &mut impl Read, buf: &mut [u8]) -> Result<(), ClientError> {
    let mut read = 0;
    while read < buf.len() {
        match r.read(&mut buf[read..]) {
            Ok(0) => return Err(ClientError::Closed),
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(ClientError::Closed)
            }
            Err(e) => return Err(ClientError::Io(e)),
        }
    }
    Ok(())
}
