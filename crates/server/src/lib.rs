//! Reduction-as-a-service: a std-only, fault-isolated, multi-tenant
//! daemon serving phased irregular reductions over length-prefixed
//! frames (TCP or Unix sockets).
//!
//! The paper's amortization story — inspect once, execute many times —
//! becomes a serving-layer plan cache keyed by structure hash; the
//! repo's fault/recovery machinery (supervised native backend,
//! watchdog, recovery ladder, sequential fallback) becomes per-job
//! fault isolation: one tenant's panicking, stalling, or malformed job
//! yields a typed error frame while every other connection keeps being
//! served. Admission control bounds memory (a full queue answers
//! `Busy`, not growth), round-robin dispatch with per-tenant in-flight
//! caps bounds unfairness, and a backlog past half capacity degrades
//! execution to the (bit-identical) sequential engine before the server
//! refuses anything.
//!
//! See DESIGN.md §14 for the protocol grammar and the isolation /
//! degradation ladder.

pub mod admission;
pub mod cache;
pub mod client;
pub mod executor;
pub mod protocol;
pub mod session;

use std::io;
use std::net::{TcpListener, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use irred::RecoveryPolicy;
use trace::MetricsRegistry;

use admission::{Admission, AdmissionConfig};
use executor::Executor;
use protocol::DEFAULT_MAX_FRAME;
use session::Conn;

/// Every knob the daemon takes, with serving-appropriate defaults.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue capacity across all tenants.
    pub queue_capacity: usize,
    /// Per-tenant in-flight cap.
    pub tenant_inflight: usize,
    /// Largest negotiable frame.
    pub max_frame: u32,
    /// Drop a connection idle longer than this between frames.
    pub idle_timeout: Duration,
    /// Drop a connection that takes longer than this to deliver one
    /// frame after its first byte (slowloris defense).
    pub midframe_timeout: Duration,
    /// Native watchdog interval for job execution.
    pub watchdog: Duration,
    /// Recovery ladder applied to every native job.
    pub recovery: RecoveryPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            tenant_inflight: 2,
            max_frame: DEFAULT_MAX_FRAME,
            idle_timeout: Duration::from_secs(30),
            midframe_timeout: Duration::from_secs(2),
            watchdog: Duration::from_secs(2),
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// Shared server state: what sessions and workers both reach through.
pub struct ServerInner {
    pub cfg: ServerConfig,
    pub admission: Admission,
    pub executor: Executor,
    pub metrics: Mutex<MetricsRegistry>,
    pub shutdown: AtomicBool,
    jobs_executed: AtomicU64,
}

impl ServerInner {
    fn new(cfg: ServerConfig) -> Self {
        ServerInner {
            cfg,
            admission: Admission::new(AdmissionConfig {
                queue_capacity: cfg.queue_capacity,
                tenant_inflight: cfg.tenant_inflight,
            }),
            executor: Executor::new(cfg.recovery, cfg.watchdog),
            metrics: Mutex::new(MetricsRegistry::default()),
            shutdown: AtomicBool::new(false),
            jobs_executed: AtomicU64::new(0),
        }
    }

    /// Stop accepting connections and jobs; queued jobs drain first.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.admission.shutdown();
    }

    pub fn count_proto_error(&self) {
        self.metrics.lock().unwrap().count("proto_errors", 1);
    }

    pub fn count_tenant(&self, tenant: &str, what: &str) {
        self.metrics
            .lock()
            .unwrap()
            .count_labeled(what, "tenant", tenant, 1);
    }

    /// Render the metrics registry (plus live cache/queue stats) as
    /// `name value` lines for a [`protocol::Frame::MetricsReport`].
    pub fn metrics_report(&self) -> String {
        let mut out = String::new();
        {
            let m = self.metrics.lock().unwrap();
            for (name, v) in m.counters() {
                out.push_str(&format!("{name} {v}\n"));
            }
            for (name, v) in m.gauges() {
                out.push_str(&format!("{name} {v}\n"));
            }
        }
        {
            let c = self.executor.cache.lock().unwrap();
            out.push_str(&format!("plan_cache_entries {}\n", c.len()));
            out.push_str(&format!("plan_cache_hits {}\n", c.hits));
            out.push_str(&format!("plan_cache_misses {}\n", c.misses));
            out.push_str(&format!("plan_cache_quarantined {}\n", c.quarantined));
            out.push_str(&format!("plan_cache_evicted {}\n", c.evicted));
        }
        {
            let (entries, hits, misses) = self.executor.compile_cache_stats();
            out.push_str(&format!("compile_cache_entries {entries}\n"));
            out.push_str(&format!("compile_cache_hits {hits}\n"));
            out.push_str(&format!("compile_cache_misses {misses}\n"));
        }
        out.push_str(&format!("queue_depth {}\n", self.admission.queue_len()));
        out.push_str(&format!(
            "jobs_executed {}\n",
            self.jobs_executed.load(Ordering::Relaxed)
        ));
        out
    }
}

/// Worker loop: pull, execute, reply, repeat — until shutdown drains
/// the queue. A worker never dies to a job: every failure mode inside
/// `run_job` is a typed frame.
fn worker_loop(srv: Arc<ServerInner>) {
    while let Some((job, shed)) = srv.admission.next() {
        let frame = match &job.work {
            admission::JobWork::Job(submit) => srv.executor.run_job(submit, shed, job.deadline),
            admission::JobWork::Source(src) => {
                srv.executor
                    .run_source(&job.tenant, src, shed, job.deadline)
            }
        };
        srv.jobs_executed.fetch_add(1, Ordering::Relaxed);
        match &frame {
            protocol::Frame::JobOk(ok) => {
                srv.count_tenant(&job.tenant, "jobs_ok");
                if ok.degraded > 0 {
                    srv.count_tenant(&job.tenant, "jobs_degraded");
                }
            }
            protocol::Frame::JobErr(_) => srv.count_tenant(&job.tenant, "jobs_err"),
            _ => {}
        }
        job.reply.send(&frame);
        srv.admission.done(&job.tenant);
    }
}

/// A running daemon: accept thread(s) + worker pool. Dropping it does
/// not stop it; call [`Server::stop`] (or send a `Shutdown` frame).
pub struct Server {
    inner: Arc<ServerInner>,
    threads: Vec<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    local_addr: Option<std::net::SocketAddr>,
}

impl Server {
    /// Bind a TCP listener and start serving.
    pub fn bind_tcp(addr: impl ToSocketAddrs, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr().ok();
        let mut srv = Server::start(cfg);
        srv.local_addr = local_addr;
        srv.accept_tcp(listener);
        Ok(srv)
    }

    /// Bind a Unix socket listener and start serving.
    #[cfg(unix)]
    pub fn bind_uds(path: &std::path::Path, cfg: ServerConfig) -> io::Result<Server> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let mut srv = Server::start(cfg);
        srv.accept_uds(listener);
        Ok(srv)
    }

    /// Start workers only (no listener yet).
    fn start(cfg: ServerConfig) -> Server {
        let inner = Arc::new(ServerInner::new(cfg));
        let mut threads = Vec::new();
        for i in 0..cfg.workers.max(1) {
            let srv = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("reductiond-worker-{i}"))
                    .spawn(move || worker_loop(srv))
                    .expect("spawn worker"),
            );
        }
        Server {
            inner,
            threads,
            sessions: Arc::new(Mutex::new(Vec::new())),
            local_addr: None,
        }
    }

    /// The bound TCP address (for `bind_tcp(.., ":0")` tests).
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        self.local_addr
    }

    pub fn inner(&self) -> &Arc<ServerInner> {
        &self.inner
    }

    fn accept_tcp(&mut self, listener: TcpListener) {
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let srv = Arc::clone(&self.inner);
        let sessions = Arc::clone(&self.sessions);
        self.threads.push(
            std::thread::Builder::new()
                .name("reductiond-accept-tcp".into())
                .spawn(move || accept_loop(listener_tcp(listener), srv, sessions))
                .expect("spawn accept"),
        );
    }

    #[cfg(unix)]
    fn accept_uds(&mut self, listener: UnixListener) {
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let srv = Arc::clone(&self.inner);
        let sessions = Arc::clone(&self.sessions);
        self.threads.push(
            std::thread::Builder::new()
                .name("reductiond-accept-uds".into())
                .spawn(move || accept_loop(listener_uds(listener), srv, sessions))
                .expect("spawn accept"),
        );
    }

    /// Initiate shutdown and join everything: accept threads, workers
    /// (after the queue drains), and sessions. Returns only when the
    /// daemon has fully exited.
    pub fn stop(self) {
        self.inner.begin_shutdown();
        for t in self.threads {
            let _ = t.join();
        }
        let sessions = std::mem::take(&mut *self.sessions.lock().unwrap());
        for s in sessions {
            let _ = s.join();
        }
    }

    /// Block until a `Shutdown` frame (or `stop` from another thread)
    /// ends the daemon. Used by `main`.
    pub fn wait(self) {
        while !self.inner.shutdown.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.stop();
    }
}

/// Type-erased nonblocking accept: returns connections until an error
/// other than `WouldBlock`.
type Acceptor<C> = Box<dyn FnMut() -> io::Result<Option<C>> + Send>;

fn listener_tcp(listener: TcpListener) -> Acceptor<std::net::TcpStream> {
    Box::new(move || match listener.accept() {
        Ok((s, _)) => Ok(Some(s)),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
        Err(e) => Err(e),
    })
}

#[cfg(unix)]
fn listener_uds(listener: UnixListener) -> Acceptor<std::os::unix::net::UnixStream> {
    Box::new(move || match listener.accept() {
        Ok((s, _)) => Ok(Some(s)),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
        Err(e) => Err(e),
    })
}

fn accept_loop<C: Conn>(
    mut accept: Acceptor<C>,
    srv: Arc<ServerInner>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !srv.shutdown.load(Ordering::Relaxed) {
        match accept() {
            Ok(Some(conn)) => {
                let srv = Arc::clone(&srv);
                if let Ok(h) = std::thread::Builder::new()
                    .name("reductiond-session".into())
                    .spawn(move || session::serve(conn, srv))
                {
                    let mut s = sessions.lock().unwrap();
                    // Reap finished sessions so the handle list cannot
                    // grow without bound under connection churn.
                    s.retain(|h| !h.is_finished());
                    s.push(h);
                }
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(5)),
            Err(_) => return,
        }
    }
}
