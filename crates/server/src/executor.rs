//! Job execution: one [`SubmitJob`] in, one [`JobOk`]/[`JobErr`] frame
//! out, with the plan cache, the recovery ladder, the watchdog, and the
//! per-job deadline wired together.
//!
//! Fault isolation is layered: a panicking node is caught by the native
//! supervisor (typed [`RunError`]), a wedged node by the watchdog, a
//! healthy-but-slow run by the per-job deadline, and whatever survives
//! the retry ladder either falls back to the sequential executor (bit-
//! identical results, `degraded = 2`) or surfaces as a typed [`JobErr`]
//! carrying the engine error `Display` text — including the `StallDump`
//! summary — plus the per-attempt fault seeds for replay.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use earth_model::native::{NativeConfig, RunError, StallReason};
use earth_model::FaultConfig;
use irred::{
    EdgeKernel, EngineError, ExecutionConfig, PhasedEngine, PhasedSpec, RecoveryPolicy,
    ReductionEngine, RunOutcome, SeqEngine, SimdMode, StrategyConfig, Tuning, Workspace,
};
use threadedc::ast::ElemType;
use threadedc::CompileCache;
use workloads::Distribution;

use crate::cache::{Checkout, PlanCache};
use crate::protocol::{
    ErrCode, Frame, JobErr, JobOk, SubmitJob, SubmitSource, FLAG_NO_FALLBACK, MAX_ELEMENTS,
};

/// Compiled programs cached per tenant (FIFO, keyed by source hash).
const COMPILE_CACHE_CAP: usize = 32;

/// The server's job kernel: per-iteration weighted contributions,
/// `out[r * num_arrays + a] = (r + 1) · (a + 1) · w[iter]`. Simple
/// enough to transport as one weight array, rich enough to exercise
/// multi-ref/multi-array plans; deterministic, so server results are
/// bit-comparable against a direct engine run of the same kernel.
#[derive(Debug, Clone)]
pub struct JobKernel {
    pub num_refs: usize,
    pub num_arrays: usize,
    pub weights: Arc<Vec<f64>>,
}

impl EdgeKernel for JobKernel {
    fn num_refs(&self) -> usize {
        self.num_refs
    }

    fn num_arrays(&self) -> usize {
        self.num_arrays
    }

    fn contrib(&self, _read: &[f64], iter: usize, _elems: &[u32], out: &mut [f64]) {
        let w = self.weights[iter];
        for r in 0..self.num_refs {
            for a in 0..self.num_arrays {
                out[r * self.num_arrays + a] = (r + 1) as f64 * (a + 1) as f64 * w;
            }
        }
    }

    fn flops_per_iter(&self) -> u64 {
        (self.num_refs * self.num_arrays) as u64
    }
}

/// How hard the server is shedding load when a job is dequeued — a
/// three-rung ladder. Every rung returns bit-identical values (the repo
/// invariant: the chunked SIMD path is bit-identical to scalar on all
/// inputs, and the server never tiles), so shedding only trades
/// throughput headroom, never answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedLevel {
    /// Normal service: native parallel execution with the vectorized
    /// flat loops.
    Native,
    /// Queue at half capacity: still native parallel, but scalar inner
    /// loops — frees the host's vector units and memory bandwidth for
    /// the backlog while keeping the parallel speedup. Shares cached
    /// plans with [`ShedLevel::Native`] (SIMD mode is an execute-time
    /// knob, not a plan-shaping one).
    Scalar,
    /// Queue at three-quarters capacity: run sequentially. Only latency
    /// degrades further.
    Seq,
}

impl ShedLevel {
    /// The [`Tuning`] this rung executes with. Both native rungs use
    /// flat layout and no tiling, so their `plan_fingerprint` is equal
    /// and they check the same plans out of the cache; tiling stays off
    /// server-wide because it reassociates sums and job weights are
    /// arbitrary floats.
    fn tuning(self) -> Tuning {
        match self {
            ShedLevel::Native => Tuning::new().simd(SimdMode::preferred()),
            ShedLevel::Scalar | ShedLevel::Seq => Tuning::new(),
        }
    }

    /// The `degraded` byte this rung reports when the run itself did
    /// not degrade further.
    fn degraded(self) -> u8 {
        match self {
            ShedLevel::Native => 0,
            ShedLevel::Scalar => 1,
            ShedLevel::Seq => 2,
        }
    }
}

/// Everything needed to run jobs; shared by all worker threads.
pub struct Executor {
    pub cache: Mutex<PlanCache>,
    /// Per-tenant source-hash compile caches for `SubmitSource` jobs —
    /// tenant-keyed so one tenant's churn cannot evict another's
    /// programs.
    pub compile_caches: Mutex<HashMap<String, CompileCache>>,
    pub recovery: RecoveryPolicy,
    pub watchdog: Duration,
}

impl Executor {
    pub fn new(recovery: RecoveryPolicy, watchdog: Duration) -> Self {
        Executor {
            cache: Mutex::new(PlanCache::new()),
            compile_caches: Mutex::new(HashMap::new()),
            recovery,
            watchdog,
        }
    }

    /// `(entries, hits, misses)` summed over every tenant's compile
    /// cache — for the metrics report.
    pub fn compile_cache_stats(&self) -> (usize, u64, u64) {
        let caches = self.compile_caches.lock().unwrap();
        caches.values().fold((0, 0, 0), |(n, h, m), c| {
            (n + c.len(), h + c.hits(), m + c.misses())
        })
    }

    /// Run one job to a reply frame. Never panics the worker: every
    /// failure mode becomes a typed [`JobErr`].
    pub fn run_job(&self, job: &SubmitJob, shed: ShedLevel, deadline: Option<Instant>) -> Frame {
        let fault = job_fault(job);
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return err_frame(
                    job.job_id,
                    ErrCode::Deadline,
                    0,
                    Vec::new(),
                    "deadline expired before execution started".into(),
                );
            }
        }
        let strat = match StrategyConfig::try_new(
            usize::from(job.procs),
            usize::from(job.k),
            if job.dist == 0 {
                Distribution::Block
            } else {
                Distribution::Cyclic
            },
            usize::from(job.sweeps),
        ) {
            Ok(s) => s,
            Err(e) => {
                return err_frame(
                    job.job_id,
                    ErrCode::Strategy,
                    0,
                    Vec::new(),
                    EngineError::Strategy(e).to_string(),
                )
            }
        };
        let kernel = Arc::new(JobKernel {
            num_refs: usize::from(job.num_refs),
            num_arrays: usize::from(job.num_arrays),
            weights: Arc::new(job.weights.clone()),
        });
        let spec = PhasedSpec {
            kernel,
            num_elements: job.num_elements as usize,
            indirection: Arc::new(job.indirection.clone()),
        };

        match shed {
            ShedLevel::Seq => self.run_seq(job, &spec, &strat),
            ShedLevel::Native | ShedLevel::Scalar => {
                self.run_native(job, &spec, &strat, fault, deadline, shed)
            }
        }
    }

    /// Run one source-submitted job: compile (through the tenant's
    /// compile cache), bind the named inputs, execute on the compiled
    /// flat fast path (or sequentially when shedding), and reply with
    /// every non-temporary declared f64 array in declaration order.
    /// Compile failures come back as [`ErrCode::Compile`] carrying the
    /// spanned diagnostic verbatim; the worker never drops the
    /// connection over bad source.
    pub fn run_source(
        &self,
        tenant: &str,
        job: &SubmitSource,
        shed: ShedLevel,
        deadline: Option<Instant>,
    ) -> Frame {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return err_frame(
                    job.job_id,
                    ErrCode::Deadline,
                    0,
                    Vec::new(),
                    "deadline expired before execution started".into(),
                );
            }
        }
        let strat = match StrategyConfig::try_new(
            usize::from(job.procs),
            usize::from(job.k),
            if job.dist == 0 {
                Distribution::Block
            } else {
                Distribution::Cyclic
            },
            usize::from(job.sweeps),
        ) {
            Ok(s) => s,
            Err(e) => {
                return err_frame(
                    job.job_id,
                    ErrCode::Strategy,
                    0,
                    Vec::new(),
                    EngineError::Strategy(e).to_string(),
                )
            }
        };

        let compiled = {
            let mut caches = self.compile_caches.lock().unwrap();
            let cache = caches
                .entry(tenant.to_string())
                .or_insert_with(|| CompileCache::new(COMPILE_CACHE_CAP));
            match cache.get_or_compile(&job.source) {
                Ok(c) => c,
                Err(d) => {
                    return err_frame(job.job_id, ErrCode::Compile, 0, Vec::new(), d.to_string())
                }
            }
        };

        let mut b = threadedc::Bindings::default();
        for (name, v) in &job.sizes {
            if *v == 0 || *v > MAX_ELEMENTS {
                return err_frame(
                    job.job_id,
                    ErrCode::InvalidSpec,
                    0,
                    Vec::new(),
                    format!("size binding `{name}` = {v} is out of range"),
                );
            }
            b.sizes.insert(name.clone(), *v as usize);
        }
        for d in &compiled.program.decls {
            if let Ok(n) = d.size.parse::<usize>() {
                if n > MAX_ELEMENTS as usize {
                    return err_frame(
                        job.job_id,
                        ErrCode::InvalidSpec,
                        0,
                        Vec::new(),
                        format!("array `{}` declares {n} elements (over the cap)", d.name),
                    );
                }
            }
        }
        for (name, arr) in &job.f64s {
            b.f64s.insert(name.clone(), arr.clone());
        }
        for (name, arr) in &job.ints {
            b.ints.insert(name.clone(), arr.clone());
        }

        // A malicious binding (an indirection value past an array read
        // inside a loop body) can index out of range in the sequential
        // interpreter, which runs regular loops inline on this worker
        // thread. Catch it: the job fails typed, the worker survives.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match shed {
            ShedLevel::Seq => (
                compiled.execute_with(&mut b, &SeqEngine::new(ExecutionConfig::default()), &strat),
                2u8,
            ),
            ShedLevel::Native | ShedLevel::Scalar => {
                let mut native = NativeConfig {
                    watchdog: self.watchdog,
                    ..NativeConfig::default()
                };
                native.deadline = deadline.map(|d| d.saturating_duration_since(Instant::now()));
                let mut policy = self.recovery;
                if deadline.is_some() {
                    policy.fall_back_to_seq = false;
                }
                let engine = PhasedEngine::new(
                    ExecutionConfig::native(native)
                        .with_recovery(policy)
                        .with_tuning(shed.tuning()),
                );
                (
                    compiled.execute_flat(&mut b, &strat, &engine),
                    shed.degraded(),
                )
            }
        }));
        let (result, degraded) = match caught {
            Ok(r) => r,
            Err(_) => {
                return err_frame(
                    job.job_id,
                    ErrCode::Panicked,
                    0,
                    Vec::new(),
                    "source job panicked during execution (index out of range?)".into(),
                )
            }
        };

        match result {
            Ok(_) => {
                let values: Vec<Vec<f64>> = compiled
                    .program
                    .decls
                    .iter()
                    .filter(|d| d.ty == ElemType::Double && !d.name.starts_with("__tmp_"))
                    .filter_map(|d| b.f64s.get(&d.name).cloned())
                    .collect();
                Frame::JobOk(JobOk {
                    job_id: job.job_id,
                    degraded,
                    attempts: 0,
                    fault_seeds: Vec::new(),
                    values,
                })
            }
            // Post-compile failures (unbound/ill-shaped arrays, engine
            // rejection, watchdog) carry the spanned diagnostic text.
            Err(d) => {
                let code = if d.message.contains("deadline") {
                    ErrCode::Deadline
                } else {
                    ErrCode::InvalidSpec
                };
                err_frame(job.job_id, code, 0, Vec::new(), d.to_string())
            }
        }
    }

    /// Load-shed path: sequential execution, no plan cache, no faults
    /// (the fault plan models machine-level faults; there is no machine
    /// here). Bit-identical to the native result by the repo invariant.
    fn run_seq(
        &self,
        job: &SubmitJob,
        spec: &PhasedSpec<JobKernel>,
        strat: &StrategyConfig,
    ) -> Frame {
        match SeqEngine::new(ExecutionConfig::default()).run(spec, strat) {
            Ok(out) => ok_frame(job.job_id, 2, &out),
            Err(e) => engine_err_frame(job.job_id, &e, 0, Vec::new()),
        }
    }

    fn run_native(
        &self,
        job: &SubmitJob,
        spec: &PhasedSpec<JobKernel>,
        strat: &StrategyConfig,
        fault: Option<FaultConfig>,
        deadline: Option<Instant>,
        shed: ShedLevel,
    ) -> Frame {
        let tuning = shed.tuning();
        let mut native = NativeConfig {
            watchdog: self.watchdog,
            ..NativeConfig::default()
        };
        native.deadline = deadline.map(|d| d.saturating_duration_since(Instant::now()));
        let mut policy = self.recovery;
        if job.flags & FLAG_NO_FALLBACK != 0 || deadline.is_some() {
            // A hard deadline must not be quietly absorbed by an
            // unbounded sequential fallback.
            policy.fall_back_to_seq = false;
        }
        let mut cfg = ExecutionConfig::native(native)
            .with_recovery(policy)
            .with_tuning(tuning);
        if let Some(f) = fault {
            cfg = cfg.with_faults(f);
        }
        let engine = PhasedEngine::new(cfg);
        // Plan-shaping tuning knobs participate in the cache key; both
        // native rungs fingerprint identically and so share entries.
        let key = spec.structure_hash(strat) ^ tuning.plan_fingerprint();

        // Check the plan cache out exclusively; swap our kernel values
        // into a hit. A swap rejection means a structure-hash collision
        // (different kernel shape, same key) — treat it as a miss.
        let (mut prepared, mut ws, prior_failures) = {
            let checkout = self.cache.lock().unwrap().checkout(key);
            match checkout {
                Checkout::Hit {
                    mut prepared,
                    ws,
                    failures,
                } => match prepared.set_kernel(Arc::clone(&spec.kernel)) {
                    Ok(()) => (prepared, ws, failures),
                    Err(_) => match self.prepare_fresh(&engine, spec, strat) {
                        Ok(p) => (Box::new(p), Workspace::new(), 0),
                        Err(frame) => return frame_err_for_job(job.job_id, frame),
                    },
                },
                Checkout::Miss => match self.prepare_fresh(&engine, spec, strat) {
                    Ok(p) => (Box::new(p), Workspace::new(), 0),
                    Err(frame) => return frame_err_for_job(job.job_id, frame),
                },
            }
        };

        let result = engine.execute(&mut prepared, &mut ws);
        let ok = result.is_ok();
        self.cache
            .lock()
            .unwrap()
            .checkin(key, prepared, ws, ok, prior_failures);

        match result {
            Ok(out) => {
                let degraded = if out.recovery.fell_back_to_seq {
                    2
                } else {
                    shed.degraded()
                };
                let mut frame = ok_frame(job.job_id, degraded, &out);
                if let Frame::JobOk(ok) = &mut frame {
                    ok.attempts = out.recovery.attempts;
                    ok.fault_seeds = out.recovery.fault_seeds.clone();
                }
                frame
            }
            Err(e) => {
                // The ladder's report is lost on the error path; the
                // seeds are reconstructible because retries reseed
                // deterministically (attempt n uses `reseeded(n)`).
                let attempts = match &e {
                    EngineError::Run(_) => policy.max_attempts,
                    _ => 1,
                };
                let seeds = (0..attempts)
                    .map(|n| attempt_seed(fault, n))
                    .collect::<Vec<_>>();
                engine_err_frame(job.job_id, &e, attempts, seeds)
            }
        }
    }

    fn prepare_fresh(
        &self,
        engine: &PhasedEngine,
        spec: &PhasedSpec<JobKernel>,
        strat: &StrategyConfig,
    ) -> Result<irred::PreparedPhased<JobKernel>, EngineError> {
        engine.prepare(spec, strat)
    }
}

/// The seed the fault plan had at retry rung `attempt` — the same rule
/// the recovery ladder applies, so error frames are replayable.
fn attempt_seed(fault: Option<FaultConfig>, attempt: u32) -> Option<u64> {
    fault.map(|f| {
        if attempt > 0 {
            f.reseeded(u64::from(attempt)).seed
        } else {
            f.seed
        }
    })
}

fn job_fault(job: &SubmitJob) -> Option<FaultConfig> {
    job.fault.map(|f| match f.kind {
        1 => FaultConfig::lossless(f.seed),
        2 => FaultConfig::lossy(f.seed),
        _ => FaultConfig::chaos(f.seed),
    })
}

fn ok_frame(job_id: u64, degraded: u8, out: &RunOutcome) -> Frame {
    Frame::JobOk(JobOk {
        job_id,
        degraded,
        attempts: out.recovery.attempts,
        fault_seeds: out.recovery.fault_seeds.clone(),
        values: out.values.clone(),
    })
}

fn err_frame(
    job_id: u64,
    code: ErrCode,
    attempts: u32,
    fault_seeds: Vec<Option<u64>>,
    message: String,
) -> Frame {
    Frame::JobErr(JobErr {
        job_id,
        code,
        attempts,
        fault_seeds,
        message,
    })
}

fn frame_err_for_job(job_id: u64, e: EngineError) -> Frame {
    engine_err_frame(job_id, &e, 0, Vec::new())
}

/// Map an [`EngineError`] to a typed wire code, forwarding the stable
/// `Display` text verbatim (the satellite error-audit guarantees every
/// leaf implements `Error` with stable `Display`).
fn engine_err_frame(
    job_id: u64,
    e: &EngineError,
    attempts: u32,
    fault_seeds: Vec<Option<u64>>,
) -> Frame {
    let code = match e {
        EngineError::Invalid(_) | EngineError::Plan(_) => ErrCode::InvalidSpec,
        EngineError::Shape { .. } => ErrCode::Shape,
        EngineError::Strategy(_) => ErrCode::Strategy,
        EngineError::Unsupported(_) => ErrCode::Unsupported,
        EngineError::Run(RunError::Stalled {
            reason: StallReason::DeadlineExceeded,
            ..
        }) => ErrCode::Deadline,
        EngineError::Run(RunError::Stalled { .. }) => ErrCode::Stalled,
        EngineError::Run(_) => ErrCode::Panicked,
    };
    err_frame(job_id, code, attempts, fault_seeds, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::FaultSpec;

    fn job(id: u64) -> SubmitJob {
        SubmitJob {
            job_id: id,
            deadline_ms: 0,
            flags: 0,
            num_elements: 16,
            iterations: 40,
            num_refs: 2,
            num_arrays: 1,
            procs: 2,
            k: 2,
            dist: 0,
            sweeps: 2,
            fault: None,
            weights: (0..40).map(|i| i as f64 * 0.25).collect(),
            indirection: vec![
                (0..40).map(|i| (i * 7 % 16) as u32).collect(),
                (0..40).map(|i| (i * 3 % 16) as u32).collect(),
            ],
        }
    }

    fn exec() -> Executor {
        Executor::new(RecoveryPolicy::default(), Duration::from_secs(2))
    }

    #[test]
    fn healthy_job_matches_direct_engine_run() {
        let e = exec();
        let j = job(1);
        let frame = e.run_job(&j, ShedLevel::Native, None);
        let Frame::JobOk(ok) = frame else {
            panic!("expected JobOk, got {frame:?}");
        };
        assert_eq!(ok.degraded, 0);

        let spec = PhasedSpec {
            kernel: Arc::new(JobKernel {
                num_refs: 2,
                num_arrays: 1,
                weights: Arc::new(j.weights.clone()),
            }),
            num_elements: 16,
            indirection: Arc::new(j.indirection.clone()),
        };
        let strat = StrategyConfig::try_new(2, 2, Distribution::Block, 2).unwrap();
        let direct = PhasedEngine::native(NativeConfig::default())
            .run(&spec, &strat)
            .unwrap();
        assert_eq!(
            ok.values, direct.values,
            "server result must be bit-identical"
        );
    }

    #[test]
    fn shed_seq_is_bit_identical_too() {
        let e = exec();
        let j = job(2);
        let native = e.run_job(&j, ShedLevel::Native, None);
        let seq = e.run_job(&j, ShedLevel::Seq, None);
        let (Frame::JobOk(a), Frame::JobOk(b)) = (native, seq) else {
            panic!("both paths must succeed");
        };
        assert_eq!(a.degraded, 0);
        assert_eq!(b.degraded, 2);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn shed_scalar_rung_is_bit_identical_and_shares_the_plan_cache() {
        let e = exec();
        let j = job(9);
        let native = e.run_job(&j, ShedLevel::Native, None);
        let scalar = e.run_job(&j, ShedLevel::Scalar, None);
        let (Frame::JobOk(a), Frame::JobOk(b)) = (native, scalar) else {
            panic!("both rungs must succeed");
        };
        assert_eq!(a.degraded, 0);
        assert_eq!(b.degraded, 1, "scalar rung reports mild degradation");
        assert_eq!(a.values, b.values, "scalar rung must stay bit-identical");
        // SIMD mode is execute-time: the scalar run must have HIT the
        // plan the vectorized run populated, not prepared a second one.
        assert_eq!(e.cache.lock().unwrap().hits, 1);
    }

    #[test]
    fn plan_cache_hits_on_same_structure() {
        let e = exec();
        let mut j = job(3);
        let _ = e.run_job(&j, ShedLevel::Native, None);
        // Same structure, different values: must hit.
        j.weights.iter_mut().for_each(|w| *w += 1.0);
        let before = e.cache.lock().unwrap().hits;
        let frame = e.run_job(&j, ShedLevel::Native, None);
        assert!(matches!(frame, Frame::JobOk(_)));
        assert_eq!(e.cache.lock().unwrap().hits, before + 1);
        // Different structure: miss.
        j.indirection[0][0] = (j.indirection[0][0] + 1) % 16;
        let misses = e.cache.lock().unwrap().misses;
        let _ = e.run_job(&j, ShedLevel::Native, None);
        assert_eq!(e.cache.lock().unwrap().misses, misses + 1);
    }

    #[test]
    fn poisoned_job_returns_typed_error_and_daemon_state_survives() {
        let e = exec();
        let mut j = job(4);
        j.fault = Some(FaultSpec { kind: 3, seed: 99 });
        j.flags = FLAG_NO_FALLBACK;
        let frame = e.run_job(&j, ShedLevel::Native, None);
        let Frame::JobErr(err) = frame else {
            panic!("chaos + no-fallback must fail, got {frame:?}");
        };
        assert!(matches!(
            err.code,
            ErrCode::Panicked | ErrCode::Stalled | ErrCode::Deadline
        ));
        assert_eq!(err.attempts, RecoveryPolicy::default().max_attempts);
        assert_eq!(err.fault_seeds.len(), err.attempts as usize);
        assert_eq!(err.fault_seeds[0], Some(99));
        assert!(!err.message.is_empty());
        // The executor still serves healthy jobs afterwards.
        let frame = e.run_job(&job(5), ShedLevel::Native, None);
        assert!(matches!(frame, Frame::JobOk(_)));
    }

    #[test]
    fn poisoned_job_with_fallback_degrades_gracefully() {
        let e = exec();
        let mut j = job(6);
        j.fault = Some(FaultSpec { kind: 3, seed: 7 });
        let frame = e.run_job(&j, ShedLevel::Native, None);
        let Frame::JobOk(ok) = frame else {
            panic!("fallback must produce a result, got {frame:?}");
        };
        // Either a lucky native attempt or the sequential fallback; both
        // are bit-correct. Seeds are recorded per attempt either way.
        assert_eq!(ok.fault_seeds.len(), ok.attempts as usize);
        let direct = e.run_job(&job(6), ShedLevel::Seq, None);
        let Frame::JobOk(d) = direct else {
            unreachable!()
        };
        assert_eq!(ok.values, d.values);
    }

    #[test]
    fn expired_deadline_is_refused_before_execution() {
        let e = exec();
        let frame = e.run_job(
            &job(7),
            ShedLevel::Native,
            Some(Instant::now() - Duration::from_millis(1)),
        );
        let Frame::JobErr(err) = frame else {
            panic!("expired deadline must fail");
        };
        assert_eq!(err.code, ErrCode::Deadline);
    }

    #[test]
    fn malformed_strategy_is_a_typed_error() {
        let e = exec();
        let mut j = job(8);
        j.procs = 0;
        let Frame::JobErr(err) = e.run_job(&j, ShedLevel::Native, None) else {
            panic!("zero procs must fail");
        };
        assert_eq!(err.code, ErrCode::Strategy);
        assert!(err.message.contains("invalid strategy"));
    }
}
