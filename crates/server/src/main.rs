//! `reductiond` — the reduction-as-a-service daemon.
//!
//! ```text
//! reductiond [--listen ADDR] [--uds PATH] [--workers N] [--queue N]
//!            [--inflight N] [--watchdog-ms N]
//! ```
//!
//! Serves until a client sends a `Shutdown` frame. See DESIGN.md §14
//! for the wire protocol and README for a quickstart.

use std::process::exit;
use std::time::Duration;

use server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: reductiond [--listen ADDR] [--uds PATH] [--workers N] \
         [--queue N] [--inflight N] [--watchdog-ms N]"
    );
    exit(2);
}

fn main() {
    let mut listen: Option<String> = None;
    let mut uds: Option<String> = None;
    let mut cfg = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--listen" => listen = Some(val("--listen")),
            "--uds" => uds = Some(val("--uds")),
            "--workers" => cfg.workers = parse(&val("--workers")),
            "--queue" => cfg.queue_capacity = parse(&val("--queue")),
            "--inflight" => cfg.tenant_inflight = parse(&val("--inflight")),
            "--watchdog-ms" => {
                cfg.watchdog = Duration::from_millis(parse::<u64>(&val("--watchdog-ms")))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    if listen.is_none() && uds.is_none() {
        listen = Some("127.0.0.1:7171".into());
    }

    let server = if let Some(addr) = &listen {
        match Server::bind_tcp(addr.as_str(), cfg) {
            Ok(s) => {
                println!(
                    "reductiond listening on tcp {}",
                    s.local_addr()
                        .map_or_else(|| addr.clone(), |a| a.to_string())
                );
                s
            }
            Err(e) => {
                eprintln!("cannot bind {addr}: {e}");
                exit(1);
            }
        }
    } else {
        #[cfg(unix)]
        {
            let path = uds.as_deref().expect("uds path set");
            match Server::bind_uds(std::path::Path::new(path), cfg) {
                Ok(s) => {
                    println!("reductiond listening on uds {path}");
                    s
                }
                Err(e) => {
                    eprintln!("cannot bind {path}: {e}");
                    exit(1);
                }
            }
        }
        #[cfg(not(unix))]
        {
            eprintln!("--uds requires a unix platform");
            exit(1);
        }
    };

    server.wait();
    println!("reductiond: shutdown complete");
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse argument value: {s}");
        usage()
    })
}
