//! Admission control: a bounded multi-tenant job queue with explicit
//! backpressure, round-robin fairness, and per-tenant in-flight caps.
//!
//! The queue is the daemon's only buffer: when it is full the submitter
//! gets an immediate [`Busy`](crate::protocol::Busy) with a retry hint
//! instead of the server buffering unboundedly. Dispatch walks tenants
//! round-robin — a tenant that floods the queue gets served one job per
//! turn like everyone else — and a per-tenant in-flight cap keeps one
//! tenant from occupying every worker. The dequeue side also reports
//! the shed level: past half capacity, jobs are executed sequentially
//! (cheap, still bit-identical) so the queue drains instead of growing.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::executor::ShedLevel;
use crate::protocol::{SubmitJob, SubmitSource};
use crate::session::Reply;

/// What a queued job asks the executor to do: run a prepared-spec job
/// or compile-and-run a source program. Admission treats both alike —
/// same queue, same fairness, same backpressure.
pub enum JobWork {
    Job(SubmitJob),
    Source(SubmitSource),
}

impl JobWork {
    pub fn job_id(&self) -> u64 {
        match self {
            JobWork::Job(j) => j.job_id,
            JobWork::Source(s) => s.job_id,
        }
    }
}

/// One queued job: the parsed submission plus where to send the answer.
pub struct Job {
    pub tenant: String,
    pub work: JobWork,
    pub reply: Reply,
    pub deadline: Option<Instant>,
}

/// What `submit` decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    Accepted,
    /// Queue full — retry after the hinted backoff.
    Busy {
        retry_after_ms: u32,
    },
    /// The server is shutting down; no new work.
    Refused,
}

#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Total queued jobs across all tenants.
    pub queue_capacity: usize,
    /// Concurrent in-flight jobs per tenant.
    pub tenant_inflight: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 64,
            tenant_inflight: 2,
        }
    }
}

#[derive(Default)]
struct State {
    /// Per-tenant FIFO queues.
    queues: HashMap<String, VecDeque<Job>>,
    /// Round-robin order over tenants with queued work.
    rr: VecDeque<String>,
    queued: usize,
    inflight: HashMap<String, usize>,
    shutting_down: bool,
}

/// The shared admission gate. Submitters call [`Admission::submit`],
/// workers loop on [`Admission::next`] / [`Admission::done`].
pub struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    cv: Condvar,
}

impl Admission {
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission {
            cfg,
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
        }
    }

    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    pub fn queue_len(&self) -> usize {
        self.state.lock().unwrap().queued
    }

    /// Admit or refuse a job. O(1); never blocks on workers.
    pub fn submit(&self, job: Job) -> Admit {
        let mut s = self.state.lock().unwrap();
        if s.shutting_down {
            return Admit::Refused;
        }
        if s.queued >= self.cfg.queue_capacity {
            // Hint scales with backlog so a thundering herd of retries
            // spreads out instead of re-colliding.
            let retry = 10 + (s.queued as u32).min(200);
            return Admit::Busy {
                retry_after_ms: retry,
            };
        }
        let tenant = job.tenant.clone();
        let q = s.queues.entry(tenant.clone()).or_default();
        let newly_active = q.is_empty();
        q.push_back(job);
        s.queued += 1;
        if newly_active {
            s.rr.push_back(tenant);
        }
        drop(s);
        self.cv.notify_one();
        Admit::Accepted
    }

    /// Block until a job is dispatchable (tenant below its in-flight
    /// cap), the shed level at dispatch time riding along. Returns
    /// `None` when the server is shutting down *and* the queue has
    /// drained — workers finish queued jobs before exiting.
    pub fn next(&self) -> Option<(Job, ShedLevel)> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(job) = Self::pop_fair(&mut s, &self.cfg) {
                // The shed ladder: half capacity drops to scalar inner
                // loops (still parallel, still bit-identical), three
                // quarters drops to sequential.
                let shed = if s.queued * 4 >= self.cfg.queue_capacity * 3 {
                    ShedLevel::Seq
                } else if s.queued * 2 >= self.cfg.queue_capacity {
                    ShedLevel::Scalar
                } else {
                    ShedLevel::Native
                };
                return Some((job, shed));
            }
            if s.shutting_down && s.queued == 0 {
                return None;
            }
            s = self.cv.wait(s).unwrap();
        }
    }

    /// Round-robin over active tenants, skipping those at their
    /// in-flight cap. The chosen tenant rotates to the back.
    fn pop_fair(s: &mut State, cfg: &AdmissionConfig) -> Option<Job> {
        for _ in 0..s.rr.len() {
            let tenant = s.rr.pop_front()?;
            let busy = *s.inflight.get(&tenant).unwrap_or(&0);
            if busy >= cfg.tenant_inflight {
                s.rr.push_back(tenant);
                continue;
            }
            let q = s.queues.get_mut(&tenant).expect("rr tenant has a queue");
            let job = q.pop_front().expect("rr tenant queue is nonempty");
            s.queued -= 1;
            if !q.is_empty() {
                s.rr.push_back(tenant.clone());
            } else {
                s.queues.remove(&tenant);
            }
            *s.inflight.entry(tenant).or_insert(0) += 1;
            return Some(job);
        }
        None
    }

    /// A worker finished (or abandoned) a job for `tenant`.
    pub fn done(&self, tenant: &str) {
        let mut s = self.state.lock().unwrap();
        if let Some(n) = s.inflight.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                s.inflight.remove(tenant);
            }
        }
        drop(s);
        // The freed in-flight slot may unblock a queued job.
        self.cv.notify_all();
    }

    /// Stop accepting work and wake every worker; queued jobs drain.
    pub fn shutdown(&self) {
        self.state.lock().unwrap().shutting_down = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SubmitJob;
    use std::sync::Arc;

    fn job(tenant: &str, id: u64) -> Job {
        Job {
            tenant: tenant.into(),
            work: JobWork::Job(SubmitJob {
                job_id: id,
                deadline_ms: 0,
                flags: 0,
                num_elements: 4,
                iterations: 2,
                num_refs: 2,
                num_arrays: 1,
                procs: 1,
                k: 1,
                dist: 0,
                sweeps: 1,
                fault: None,
                weights: vec![1.0, 2.0],
                indirection: vec![vec![0, 1], vec![2, 3]],
            }),
            reply: Reply::sink(),
            deadline: None,
        }
    }

    #[test]
    fn full_queue_yields_busy_not_growth() {
        let a = Admission::new(AdmissionConfig {
            queue_capacity: 2,
            tenant_inflight: 2,
        });
        assert_eq!(a.submit(job("t", 1)), Admit::Accepted);
        assert_eq!(a.submit(job("t", 2)), Admit::Accepted);
        assert!(matches!(a.submit(job("t", 3)), Admit::Busy { .. }));
        assert_eq!(a.queue_len(), 2);
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        let a = Admission::new(AdmissionConfig {
            queue_capacity: 16,
            tenant_inflight: 16,
        });
        for i in 0..3 {
            a.submit(job("alice", i));
        }
        for i in 10..13 {
            a.submit(job("bob", i));
        }
        let order: Vec<(String, u64)> = (0..6)
            .map(|_| {
                let (j, _) = a.next().unwrap();
                (j.tenant.clone(), j.work.job_id())
            })
            .collect();
        let tenants: Vec<&str> = order.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(
            tenants,
            vec!["alice", "bob", "alice", "bob", "alice", "bob"],
            "tenants must alternate even though alice enqueued first"
        );
    }

    #[test]
    fn inflight_cap_holds_a_flooding_tenant_back() {
        let a = Admission::new(AdmissionConfig {
            queue_capacity: 16,
            tenant_inflight: 1,
        });
        a.submit(job("flood", 1));
        a.submit(job("flood", 2));
        let (j1, _) = a.next().unwrap();
        assert_eq!(j1.work.job_id(), 1);
        // flood is at its cap; job 2 must wait for done().
        let a2 = Arc::new(a);
        let a3 = Arc::clone(&a2);
        let h = std::thread::spawn(move || a3.next().map(|(j, _)| j.work.job_id()));
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!h.is_finished(), "job 2 must be held back by the cap");
        a2.done("flood");
        assert_eq!(h.join().unwrap(), Some(2));
    }

    #[test]
    fn shed_level_climbs_the_ladder_with_backlog() {
        let a = Admission::new(AdmissionConfig {
            queue_capacity: 8,
            tenant_inflight: 16,
        });
        a.submit(job("t", 1));
        let (_, shed) = a.next().unwrap();
        assert_eq!(shed, ShedLevel::Native);
        // 4 queued after the pop = half capacity: first rung.
        for i in 2..=6 {
            a.submit(job("t", i));
        }
        let (_, shed) = a.next().unwrap();
        assert_eq!(
            shed,
            ShedLevel::Scalar,
            "backlog at half capacity must drop to scalar loops"
        );
        // 6 queued after the pop = three quarters: second rung.
        for i in 7..=9 {
            a.submit(job("t", i));
        }
        let (_, shed) = a.next().unwrap();
        assert_eq!(
            shed,
            ShedLevel::Seq,
            "backlog at three-quarters capacity must go sequential"
        );
    }

    #[test]
    fn shutdown_drains_then_stops() {
        let a = Admission::new(AdmissionConfig::default());
        a.submit(job("t", 1));
        a.shutdown();
        assert_eq!(a.submit(job("t", 2)), Admit::Refused);
        assert!(a.next().is_some(), "queued job drains");
        a.done("t");
        assert!(a.next().is_none(), "then workers see shutdown");
    }
}
