//! Property-fuzz the frame decoder: arbitrary byte streams, truncations
//! of valid frames, and bit-flips of valid frames must all produce
//! typed [`ProtocolError`]s or valid frames — never a panic, hang, or
//! over-allocation. On the in-tree [`harness::prop`] harness; each
//! property is bounded by small inputs so the whole file runs in
//! seconds even at CI case counts.

use harness::prop::{check, Config, Gen};
use harness::{prop_assert, prop_assert_eq};
use server::protocol::{
    check_len, decode, encode, Busy, ErrCode, FaultSpec, Frame, Hello, HelloAck, JobErr, JobOk,
    ProtoErr, SubmitJob, DEFAULT_MAX_FRAME, VERSION,
};

/// Arbitrary bytes (including pathological length fields) decode to a
/// typed result. The property *is* "this call returns": a panic or
/// hostile allocation inside `decode` fails the test.
#[test]
fn arbitrary_bytes_never_panic_the_decoder() {
    check(
        "arbitrary_bytes_never_panic_the_decoder",
        Config::cases_quick(400),
        |g: &mut Gen| {
            let n = g.usize_in(0..512);
            (0..n).map(|_| g.u64_any() as u8).collect::<Vec<u8>>()
        },
        |bytes| {
            let _ = decode(bytes);
            Ok(())
        },
    );
}

/// Generate a structurally valid frame of any type.
fn arbitrary_frame(g: &mut Gen) -> Frame {
    let seeds = |g: &mut Gen| {
        let n = g.usize_in(0..4);
        (0..n)
            .map(|_| if g.prob(0.7) { Some(g.u64_any()) } else { None })
            .collect::<Vec<_>>()
    };
    match g.usize_in(0..11) {
        0 => Frame::Hello(Hello {
            version: VERSION,
            tenant: format!("t{}", g.usize_in(0..1000)),
            max_frame: g.u32_in(0..DEFAULT_MAX_FRAME),
        }),
        1 => Frame::HelloAck(HelloAck {
            version: VERSION,
            max_frame: g.u32_in(1..DEFAULT_MAX_FRAME),
            queue_capacity: g.u32_in(0..1024),
            tenant_inflight: g.u32_in(0..64) as u16,
        }),
        2 => {
            let iters = g.usize_in(1..12);
            let refs = g.usize_in(1..5);
            Frame::SubmitJob(SubmitJob {
                job_id: g.u64_any(),
                deadline_ms: g.u32_in(0..10_000),
                flags: u8::from(g.prob(0.3)),
                num_elements: g.u32_in(1..64),
                iterations: iters as u32,
                num_refs: refs as u8,
                num_arrays: g.usize_in(1..4) as u8,
                procs: g.u32_in(1..8) as u16,
                k: g.u32_in(1..4) as u16,
                dist: u8::from(g.prob(0.5)),
                sweeps: g.u32_in(1..4) as u16,
                fault: g.prob(0.4).then(|| FaultSpec {
                    kind: g.u32_in(1..4) as u8,
                    seed: g.u64_any(),
                }),
                weights: (0..iters).map(|_| g.f64_in(-8.0..8.0)).collect(),
                indirection: (0..refs)
                    .map(|_| (0..iters).map(|_| g.u32_in(0..64)).collect())
                    .collect(),
            })
        }
        3 => {
            let arrays = g.usize_in(0..3);
            let per = g.usize_in(0..6);
            Frame::JobOk(JobOk {
                job_id: g.u64_any(),
                degraded: g.usize_in(0..3) as u8,
                attempts: g.u32_in(0..5),
                fault_seeds: seeds(g),
                values: (0..arrays)
                    .map(|_| (0..per).map(|_| g.f64_in(-100.0..100.0)).collect())
                    .collect(),
            })
        }
        4 => Frame::JobErr(JobErr {
            job_id: g.u64_any(),
            code: ErrCode::from_u8(g.u32_in(1..9) as u8).expect("valid code range"),
            attempts: g.u32_in(0..5),
            fault_seeds: seeds(g),
            message: format!("err {}", g.usize_in(0..100)),
        }),
        5 => Frame::Busy(Busy {
            job_id: g.u64_any(),
            retry_after_ms: g.u32_in(0..1000),
        }),
        6 => Frame::GetMetrics,
        7 => Frame::MetricsReport(format!("jobs_ok {}\n", g.usize_in(0..10_000))),
        8 => Frame::Shutdown,
        9 => Frame::ShutdownAck,
        _ => Frame::ProtoErr(ProtoErr {
            message: format!("proto {}", g.usize_in(0..100)),
        }),
    }
}

/// Valid frames roundtrip exactly; every strict prefix of the payload
/// is a typed error, never a panic.
#[test]
fn valid_frames_roundtrip_and_truncations_are_typed() {
    check(
        "valid_frames_roundtrip_and_truncations_are_typed",
        Config::cases_quick(200),
        |g: &mut Gen| {
            let frame = arbitrary_frame(g);
            let cut_frac = g.f64_in(0.0..1.0);
            (frame, cut_frac)
        },
        |(frame, cut_frac)| {
            let bytes = encode(frame);
            let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            let n = check_len(len, DEFAULT_MAX_FRAME).map_err(|e| e.to_string())?;
            prop_assert_eq!(n, bytes.len() - 4);
            let payload = &bytes[4..];
            let decoded = decode(payload);
            prop_assert_eq!(decoded.as_ref(), Ok(frame));
            let cut = ((payload.len() as f64) * cut_frac) as usize;
            if cut < payload.len() {
                prop_assert!(
                    decode(&payload[..cut]).is_err(),
                    "truncation to {} of {} bytes must be a typed error",
                    cut,
                    payload.len()
                );
            }
            Ok(())
        },
    );
}

/// A single bit-flip anywhere in a valid payload decodes to *something*
/// typed — Ok (the flip hit a don't-care bit like a weight mantissa) or
/// a ProtocolError — without panicking or hanging.
#[test]
fn bit_flips_of_valid_frames_never_panic() {
    check(
        "bit_flips_of_valid_frames_never_panic",
        Config::cases_quick(300),
        |g: &mut Gen| {
            let frame = arbitrary_frame(g);
            let bytes = encode(&frame);
            let payload_len = bytes.len() - 4;
            let bit = g.usize_in(0..payload_len * 8);
            (bytes, bit)
        },
        |(bytes, bit)| {
            let mut payload = bytes[4..].to_vec();
            payload[bit / 8] ^= 1 << (bit % 8);
            let _ = decode(&payload);
            Ok(())
        },
    );
}

/// Hostile length prefixes are rejected by `check_len` before any
/// buffer is sized from them.
#[test]
fn length_prefixes_are_validated() {
    check(
        "length_prefixes_are_validated",
        Config::cases_quick(300),
        |g: &mut Gen| (g.u64_any() as u32, g.u32_in(1..DEFAULT_MAX_FRAME)),
        |&(len, max)| {
            match check_len(len, max) {
                Ok(n) => {
                    prop_assert!(len > 0 && len <= max && n == len as usize);
                }
                Err(_) => {
                    prop_assert!(len == 0 || len > max);
                }
            }
            Ok(())
        },
    );
}
