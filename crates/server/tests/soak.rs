//! Chaos-client soak: concurrent healthy and adversarial tenants
//! against one daemon. Healthy tenants must get bit-identical results
//! to a direct engine run; adversarial tenants (poisoned kernels,
//! oversized frames, garbage bytes, mid-frame disconnects, slowloris)
//! must never crash, hang, or starve the daemon; overload must produce
//! `Busy` backpressure; shutdown must be clean (every thread joins).

use std::sync::Arc;
use std::time::Duration;

use irred::{PhasedSpec, ReductionEngine, SeqEngine, StrategyConfig};
use server::client::{Client, ClientError};
use server::executor::JobKernel;
use server::protocol::{ErrCode, FaultSpec, Frame, SubmitJob, FLAG_NO_FALLBACK};
use server::{Server, ServerConfig};
use workloads::Distribution;

fn soak_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 16,
        tenant_inflight: 2,
        idle_timeout: Duration::from_secs(10),
        midframe_timeout: Duration::from_millis(300),
        watchdog: Duration::from_millis(500),
        ..ServerConfig::default()
    }
}

/// Deterministic job generator: `structure` selects one of a few
/// indirection/strategy shapes (so the plan cache sees repeats),
/// `seed` perturbs the weights.
fn mk_job(id: u64, structure: u64, seed: u64) -> SubmitJob {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let elems = 16 + (structure % 3) as u32 * 8;
    let iters = 48;
    let ind = |salt: u64| -> Vec<u32> {
        (0..iters)
            .map(|i| ((i as u64 * 7 + salt * 13 + structure * 31) % u64::from(elems)) as u32)
            .collect()
    };
    SubmitJob {
        job_id: id,
        deadline_ms: 0,
        flags: 0,
        num_elements: elems,
        iterations: iters as u32,
        num_refs: 2,
        num_arrays: 1,
        procs: 2,
        k: 2,
        dist: if structure.is_multiple_of(2) { 0 } else { 1 },
        sweeps: 2,
        fault: None,
        weights: (0..iters).map(|_| (next() % 1000) as f64 / 64.0).collect(),
        indirection: vec![ind(1), ind(2)],
    }
}

/// The golden answer: a direct sequential engine run of the same job.
/// Bit-identical to every server path (native, fallback, shed) by the
/// repo's cross-engine invariant.
fn direct_values(job: &SubmitJob) -> Vec<Vec<f64>> {
    let spec = PhasedSpec {
        kernel: Arc::new(JobKernel {
            num_refs: usize::from(job.num_refs),
            num_arrays: usize::from(job.num_arrays),
            weights: Arc::new(job.weights.clone()),
        }),
        num_elements: job.num_elements as usize,
        indirection: Arc::new(job.indirection.clone()),
    };
    let strat = StrategyConfig::try_new(
        usize::from(job.procs),
        usize::from(job.k),
        if job.dist == 0 {
            Distribution::Block
        } else {
            Distribution::Cyclic
        },
        usize::from(job.sweeps),
    )
    .unwrap();
    SeqEngine::new(irred::ExecutionConfig::default())
        .run(&spec, &strat)
        .unwrap()
        .values
}

/// Submit with bounded Busy-retry; panics on anything else unexpected.
fn submit_retrying(c: &mut Client<std::net::TcpStream>, job: SubmitJob) -> Frame {
    for _ in 0..300 {
        match c.submit(job.clone()).expect("submit") {
            Frame::Busy(b) => {
                std::thread::sleep(Duration::from_millis(u64::from(b.retry_after_ms).min(50)))
            }
            frame => return frame,
        }
    }
    panic!("job {} still Busy after 300 retries", job.job_id);
}

#[test]
fn soak_healthy_tenants_survive_chaos_neighbors() {
    let server = Server::bind_tcp("127.0.0.1:0", soak_config()).expect("bind");
    let addr = server.local_addr().expect("addr");

    let chaos_done = Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Adversarial tenant: cycles poisoned jobs, garbage, oversized
    // frames, and mid-frame disconnects until the healthy tenants are
    // done. Nothing it does may take the daemon down.
    let chaos = {
        let done = Arc::clone(&chaos_done);
        std::thread::spawn(move || {
            let mut round = 0u64;
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                round += 1;
                // (a) poisoned kernel, no fallback: typed JobErr (or a
                // lucky JobOk); the daemon must answer, not die.
                if let Ok(mut c) = Client::connect(addr, "chaos") {
                    let mut j = mk_job(round, round, round);
                    j.fault = Some(FaultSpec {
                        kind: 3,
                        seed: round,
                    });
                    j.flags = FLAG_NO_FALLBACK;
                    match submit_retrying(&mut c, j) {
                        Frame::JobOk(_) | Frame::JobErr(_) => {}
                        f => panic!("unexpected reply to poisoned job: {f:?}"),
                    }
                }
                // (b) raw garbage bytes: ProtoErr or silent close.
                if let Ok(mut c) = Client::connect(addr, "chaos") {
                    let junk: Vec<u8> = (0..64u64)
                        .map(|i| (i.wrapping_mul(round) % 251) as u8)
                        .collect();
                    let _ = c.send_raw(&junk);
                    match c.recv() {
                        Ok(Frame::ProtoErr(_)) | Err(_) => {}
                        Ok(f) => panic!("garbage got a non-error reply: {f:?}"),
                    }
                }
                // (c) oversized frame: a length prefix far past the
                // negotiated limit must be refused, not buffered.
                if let Ok(mut c) = Client::connect(addr, "chaos") {
                    let huge = (64u32 << 20).to_le_bytes();
                    let _ = c.send_raw(&huge);
                    match c.recv() {
                        Ok(Frame::ProtoErr(_)) | Err(_) => {}
                        Ok(f) => panic!("oversized frame got a non-error reply: {f:?}"),
                    }
                }
                // (d) mid-frame disconnect: promise 100 bytes, send 10,
                // vanish. The read deadline reaps the session.
                if let Ok(mut c) = Client::connect(addr, "chaos") {
                    let mut partial = 100u32.to_le_bytes().to_vec();
                    partial.extend_from_slice(&[3u8; 10]);
                    let _ = c.send_raw(&partial);
                    // Drop the connection with the frame unfinished.
                }
            }
        })
    };

    // Healthy tenants: every job must come back Ok and bit-identical.
    let healthy: Vec<_> = (0..3)
        .map(|t| {
            std::thread::spawn(move || {
                let tenant = format!("healthy-{t}");
                let mut c = Client::connect(addr, &tenant).expect("connect");
                for i in 0..8u64 {
                    let job = mk_job(t * 100 + i, i % 4, t * 1000 + i);
                    let expect = direct_values(&job);
                    match submit_retrying(&mut c, job) {
                        Frame::JobOk(ok) => {
                            assert_eq!(
                                ok.values, expect,
                                "tenant {tenant} job {i}: values must be bit-identical"
                            );
                        }
                        f => panic!("tenant {tenant} job {i}: unexpected reply {f:?}"),
                    }
                }
            })
        })
        .collect();

    for h in healthy {
        h.join().expect("healthy tenant");
    }
    chaos_done.store(true, std::sync::atomic::Ordering::Relaxed);
    chaos.join().expect("chaos tenant");

    // The daemon is still fully serviceable: metrics + one more job.
    let mut c = Client::connect(addr, "postcheck").expect("connect after chaos");
    let report = c.metrics().expect("metrics");
    assert!(
        report.contains("jobs_ok{tenant=healthy-0}"),
        "per-tenant metrics missing:\n{report}"
    );
    assert!(report.contains("plan_cache_hits"));
    let job = mk_job(9999, 0, 9999);
    let expect = direct_values(&job);
    let Frame::JobOk(ok) = submit_retrying(&mut c, job) else {
        panic!("post-chaos job failed");
    };
    assert_eq!(ok.values, expect);

    // Clean shutdown: ack'd, then every thread joins.
    c.shutdown().expect("shutdown ack");
    server.stop();
}

#[test]
fn overload_yields_busy_backpressure_not_growth() {
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 2,
        tenant_inflight: 1,
        ..soak_config()
    };
    let server = Server::bind_tcp("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().expect("addr");

    let mut c = Client::connect(addr, "flood").expect("connect");
    let total = 12u64;
    for id in 0..total {
        c.send(&Frame::SubmitJob(mk_job(id, 0, id))).expect("send");
    }
    let (mut ok, mut busy) = (0u64, 0u64);
    for _ in 0..total {
        match c.recv().expect("terminal frame per job") {
            Frame::JobOk(_) => ok += 1,
            Frame::Busy(b) => {
                assert!(b.retry_after_ms > 0);
                busy += 1;
            }
            f => panic!("unexpected frame under overload: {f:?}"),
        }
    }
    assert_eq!(ok + busy, total);
    assert!(busy > 0, "a 2-deep queue flooded with 12 jobs must shed");
    assert!(ok >= 1, "accepted jobs must still complete");
    server.stop();
}

#[test]
fn deadline_jobs_fail_typed_without_harming_the_daemon() {
    let server = Server::bind_tcp("127.0.0.1:0", soak_config()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let mut c = Client::connect(addr, "deadliner").expect("connect");

    // A job far too large for a 1 ms budget: the deadline cancels it
    // (in queue or mid-run) and the error is typed.
    let mut big = mk_job(1, 0, 1);
    big.iterations = 20_000;
    big.weights = (0..20_000).map(|i| i as f64).collect();
    big.indirection = (0..2)
        .map(|r| (0..20_000u32).map(|i| (i * 7 + r) % 16).collect())
        .collect();
    big.sweeps = 8;
    big.procs = 4;
    big.deadline_ms = 1;
    match submit_retrying(&mut c, big) {
        Frame::JobErr(e) => {
            assert_eq!(e.code, ErrCode::Deadline, "got: {}", e.message);
            assert!(!e.message.is_empty());
        }
        f => panic!("1ms deadline on a large job must fail, got {f:?}"),
    }

    // The daemon still serves normal jobs afterwards.
    let job = mk_job(2, 1, 2);
    let expect = direct_values(&job);
    let Frame::JobOk(ok) = submit_retrying(&mut c, job) else {
        panic!("healthy job after deadline failure");
    };
    assert_eq!(ok.values, expect);
    server.stop();
}

#[test]
fn slowloris_is_dropped_but_daemon_serves_on() {
    let cfg = ServerConfig {
        midframe_timeout: Duration::from_millis(150),
        ..soak_config()
    };
    let server = Server::bind_tcp("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().expect("addr");

    // Trickle one byte of a promised frame, then stall past the
    // mid-frame deadline: the server must close on us.
    let mut sl = Client::connect(addr, "slow").expect("connect");
    sl.send_raw(&20u32.to_le_bytes()).expect("prefix");
    sl.send_raw(&[1]).expect("one byte");
    std::thread::sleep(Duration::from_millis(400));
    sl.send_raw(&[1; 19]).ok(); // probably fails: already closed
    match sl.recv() {
        Err(ClientError::Closed) | Err(ClientError::Io(_)) => {}
        Ok(f) => panic!("slowloris connection must be dropped, got {f:?}"),
        Err(e) => panic!("unexpected client error: {e}"),
    }

    let mut c = Client::connect(addr, "fast").expect("connect");
    let job = mk_job(1, 0, 1);
    let expect = direct_values(&job);
    let Frame::JobOk(ok) = submit_retrying(&mut c, job) else {
        panic!("healthy job after slowloris");
    };
    assert_eq!(ok.values, expect);
    server.stop();
}

#[cfg(unix)]
#[test]
fn uds_transport_serves_jobs() {
    let dir = std::env::temp_dir().join(format!("reductiond-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("sock");
    let server = Server::bind_uds(&path, soak_config()).expect("bind uds");

    let mut c = Client::connect_uds(&path, "uds-tenant").expect("connect uds");
    let job = mk_job(1, 2, 3);
    let expect = direct_values(&job);
    match c.submit(job).expect("submit over uds") {
        Frame::JobOk(ok) => assert_eq!(ok.values, expect),
        f => panic!("uds job failed: {f:?}"),
    }
    server.stop();
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
