//! End-to-end tests for the `SubmitSource` path: a live daemon compiles
//! tenant-submitted DSL programs (through the per-tenant compile
//! cache), executes them on the compiled flat fast path, and returns
//! either the declared arrays or a typed, span-carrying compile error —
//! never a dropped connection.

use server::client::Client;
use server::protocol::{ErrCode, Frame, SubmitSource};
use server::{Server, ServerConfig};
use threadedc::{interpret, parse, Bindings};

/// An un-annotated multi-group reduction: recognition must normalize
/// both statements, analysis must split them into two reference groups,
/// and fission must split the loop — all server-side.
const MULTI_GROUP: &str = "\
double P[n]; double Q[n]; double W[e]; int A[e]; int B[e];
forall (i = 0; i < e; i++) {
    double f = W[i] * 2.0;
    P[A[i]] = P[A[i]] + f;
    Q[B[i]] = Q[B[i]] - f;
}";

fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// Whole-number weights keep every partial sum exact, so the phased
/// result is bit-identical to the sequential interpreter regardless of
/// summation order.
fn inputs(n: usize, e: usize, seed: u64) -> (Vec<f64>, Vec<u32>, Vec<u32>) {
    let mut next = rng(seed);
    let w = (0..e).map(|_| (next() % 50) as f64).collect();
    let a = (0..e).map(|_| (next() % n as u64) as u32).collect();
    let b = (0..e).map(|_| (next() % n as u64) as u32).collect();
    (w, a, b)
}

fn source_job(id: u64, n: u32, e: u32, seed: u64) -> SubmitSource {
    let (w, a, b) = inputs(n as usize, e as usize, seed);
    SubmitSource {
        job_id: id,
        deadline_ms: 0,
        procs: 2,
        k: 2,
        dist: 1,
        sweeps: 1,
        source: MULTI_GROUP.into(),
        sizes: vec![("n".into(), n), ("e".into(), e)],
        f64s: vec![("W".into(), w)],
        ints: vec![("A".into(), a), ("B".into(), b)],
    }
}

fn start() -> (Server, std::net::SocketAddr) {
    let srv = Server::bind_tcp("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = srv.local_addr().expect("addr");
    (srv, addr)
}

#[test]
fn source_job_matches_interpreter_and_cache_hits_on_resubmit() {
    let (srv, addr) = start();
    let mut c = Client::connect(addr, "alice").expect("connect");

    let (n, e, seed) = (24u32, 150u32, 42u64);
    let frame = c.submit_source(source_job(1, n, e, seed)).expect("submit");
    let Frame::JobOk(ok) = frame else {
        panic!("expected JobOk, got {frame:?}");
    };
    // Values are the non-temp f64 decls in declaration order: P, Q, W.
    assert_eq!(ok.values.len(), 3);

    // Reference: the sequential interpreter on identical bindings.
    let (w, a, b) = inputs(n as usize, e as usize, seed);
    let mut bind = Bindings::default();
    bind.sizes.insert("n".into(), n as usize);
    bind.sizes.insert("e".into(), e as usize);
    bind.f64s.insert("W".into(), w);
    bind.ints.insert("A".into(), a);
    bind.ints.insert("B".into(), b);
    interpret(&parse(MULTI_GROUP).unwrap(), &mut bind).unwrap();

    for (name, got) in [("P", &ok.values[0]), ("Q", &ok.values[1])] {
        let want = &bind.f64s[name];
        assert_eq!(got.len(), want.len());
        for (x, y) in got.iter().zip(want) {
            assert_eq!(x.to_bits(), y.to_bits(), "{name}: {x} vs {y}");
        }
    }

    // Resubmit the identical source (different job id, same text): the
    // tenant's compile cache must hit.
    let frame = c
        .submit_source(source_job(2, n, e, seed))
        .expect("resubmit");
    assert!(matches!(frame, Frame::JobOk(_)));
    let metrics = c.metrics().expect("metrics");
    let get = |key: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(key))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("metric {key} missing in:\n{metrics}"))
    };
    assert!(get("compile_cache_hits ") >= 1, "resubmit must hit");
    assert!(get("compile_cache_misses ") >= 1, "first compile must miss");
    assert_eq!(get("compile_cache_entries "), 1);

    srv.stop();
}

#[test]
fn bad_source_yields_spanned_compile_error_not_a_drop() {
    let (srv, addr) = start();
    let mut c = Client::connect(addr, "bob").expect("connect");

    // A genuine non-reduction dependence: rejected by the dependence
    // test with the offending line and column.
    let frame = c
        .submit_source(SubmitSource {
            job_id: 9,
            deadline_ms: 0,
            procs: 2,
            k: 2,
            dist: 0,
            sweeps: 1,
            source: "double X[n]; int A[e];\nforall (i = 0; i < e; i++) {\n  X[A[i]] = 1.0;\n}"
                .into(),
            sizes: vec![("n".into(), 8), ("e".into(), 16)],
            f64s: vec![],
            ints: vec![("A".into(), (0..16).map(|i| i % 8).collect())],
        })
        .expect("submit");
    let Frame::JobErr(err) = frame else {
        panic!("expected JobErr, got {frame:?}");
    };
    assert_eq!(err.code, ErrCode::Compile);
    assert!(err.message.contains("line 3"), "{}", err.message);
    assert!(
        err.message.contains("not a recognized reduction"),
        "{}",
        err.message
    );

    // The connection survives: a healthy job right after succeeds.
    let frame = c.submit_source(source_job(10, 16, 80, 7)).expect("submit");
    assert!(matches!(frame, Frame::JobOk(_)), "got {frame:?}");

    // Failed compiles are not cached: entries stays at the one healthy
    // program.
    let metrics = c.metrics().expect("metrics");
    let entries = metrics
        .lines()
        .find_map(|l| l.strip_prefix("compile_cache_entries "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap();
    assert_eq!(entries, 1);

    srv.stop();
}

#[test]
fn unbound_array_is_a_typed_error() {
    let (srv, addr) = start();
    let mut c = Client::connect(addr, "carol").expect("connect");

    // Compiles fine, but `A` has the wrong length for `e`: the lowering
    // rejects it with a typed frame instead of panicking a worker.
    let mut job = source_job(20, 24, 150, 3);
    job.ints[0].1.truncate(10);
    let frame = c.submit_source(job).expect("submit");
    let Frame::JobErr(err) = frame else {
        panic!("expected JobErr, got {frame:?}");
    };
    assert_eq!(err.code, ErrCode::InvalidSpec);
    assert!(err.message.contains("line"), "{}", err.message);

    srv.stop();
}
