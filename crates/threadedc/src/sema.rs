//! Semantic checks: name resolution, element kinds, and the structural
//! preconditions the paper's analysis assumes (§4).

use std::collections::HashSet;

use crate::ast::*;
use crate::{Diagnostic, Span};

/// A semantic error (alias for the shared diagnostic type).
pub type SemaError = Diagnostic;

fn err(span: Span, message: impl Into<String>) -> SemaError {
    Diagnostic::at(span, message)
}

/// Check a parsed (and, in the full pipeline, reduction-normalized)
/// program. On success, the program satisfies:
///
/// * every referenced array is declared, exactly once;
/// * arrays used as indirection (`via`) have `int` element type and are
///   never written inside any loop;
/// * arrays updated through indirection (reduction arrays) are `double`
///   and are **not read** in the same loop — together with `+=`-only
///   updates this gives the paper's "no loop-carried dependencies except
///   on reduction array elements";
/// * loop-local scalars are defined before use and not redefined;
/// * directly-assigned arrays are not also reduction targets.
///
/// Residual [`Stmt::AssignIndirect`] statements (plain stores through
/// indirection the recognizer could not canonicalize) are only
/// *type-checked* here; their legality is decided by the dependence test
/// in [`crate::analysis`], which rejects them with a precise span.
pub fn check(prog: &Program) -> Result<(), SemaError> {
    let mut names = HashSet::new();
    for d in &prog.decls {
        if !names.insert(d.name.clone()) {
            return Err(err(d.span, format!("array `{}` declared twice", d.name)));
        }
    }
    let decl = |name: &str| prog.decl(name);

    for l in &prog.loops {
        let mut locals: HashSet<String> = HashSet::new();
        let mut reduced: HashSet<String> = HashSet::new();
        let mut vias: HashSet<String> = HashSet::new();
        let mut direct_written: HashSet<String> = HashSet::new();

        // First pass: collect write sets.
        for s in &l.body {
            match s {
                Stmt::ReduceIndirect {
                    array, via, span, ..
                }
                | Stmt::AssignIndirect {
                    array, via, span, ..
                } => {
                    let da = decl(array)
                        .ok_or_else(|| err(*span, format!("undeclared array `{array}`")))?;
                    if da.ty != ElemType::Double {
                        return Err(err(
                            *span,
                            format!("reduction array `{array}` must be double"),
                        ));
                    }
                    let dv = decl(via).ok_or_else(|| {
                        err(*span, format!("undeclared indirection array `{via}`"))
                    })?;
                    if dv.ty != ElemType::Int {
                        return Err(err(*span, format!("indirection array `{via}` must be int")));
                    }
                    if matches!(s, Stmt::ReduceIndirect { .. }) {
                        reduced.insert(array.clone());
                    }
                    vias.insert(via.clone());
                }
                Stmt::AssignDirect { array, span, .. } => {
                    let da = decl(array)
                        .ok_or_else(|| err(*span, format!("undeclared array `{array}`")))?;
                    if da.ty != ElemType::Double {
                        return Err(err(
                            *span,
                            format!("assigned array `{array}` must be double"),
                        ));
                    }
                    direct_written.insert(array.clone());
                }
                Stmt::Local { .. } => {}
            }
        }
        if let Some(both) = reduced.intersection(&direct_written).next() {
            return Err(err(
                l.span,
                format!("array `{both}` is both a reduction target and directly assigned"),
            ));
        }
        if let Some(both) = reduced.intersection(&vias).next() {
            return Err(err(
                l.span,
                format!("array `{both}` used both as reduction target and indirection"),
            ));
        }

        // Second pass: check reads in order.
        for s in &l.body {
            let (value, span) = match s {
                Stmt::Local { name, init, span } => {
                    if locals.contains(name) {
                        return Err(err(*span, format!("local `{name}` redefined")));
                    }
                    if name == &l.var {
                        return Err(err(
                            *span,
                            format!("local `{name}` shadows the loop variable"),
                        ));
                    }
                    check_expr(prog, l, init, &locals, &reduced, *span)?;
                    locals.insert(name.clone());
                    continue;
                }
                Stmt::ReduceIndirect { value, span, .. } => (value, *span),
                Stmt::AssignIndirect { value, span, .. } => (value, *span),
                Stmt::AssignDirect { value, span, .. } => (value, *span),
            };
            check_expr(prog, l, value, &locals, &reduced, span)?;
        }
    }
    Ok(())
}

fn check_expr(
    prog: &Program,
    l: &Forall,
    e: &Expr,
    locals: &HashSet<String>,
    reduced: &HashSet<String>,
    stmt_span: Span,
) -> Result<(), SemaError> {
    match e {
        Expr::Number(_) => Ok(()),
        Expr::Var(v) => {
            if v == &l.var || locals.contains(v) {
                Ok(())
            } else {
                Err(err(stmt_span, format!("undefined scalar `{v}`")))
            }
        }
        Expr::Direct { array, span } => {
            let d = prog
                .decl(array)
                .ok_or_else(|| err(*span, format!("undeclared array `{array}`")))?;
            if reduced.contains(array) {
                return Err(err(
                    *span,
                    format!("reduction array `{array}` read inside its own loop (loop-carried dependency)"),
                ));
            }
            if d.ty != ElemType::Double {
                return Err(err(
                    *span,
                    format!("array `{array}` read as a value but has int type"),
                ));
            }
            Ok(())
        }
        Expr::Indirect { array, via, span } => {
            let d = prog
                .decl(array)
                .ok_or_else(|| err(*span, format!("undeclared array `{array}`")))?;
            let dv = prog
                .decl(via)
                .ok_or_else(|| err(*span, format!("undeclared indirection array `{via}`")))?;
            if reduced.contains(array) {
                return Err(err(
                    *span,
                    format!("reduction array `{array}` read inside its own loop (loop-carried dependency)"),
                ));
            }
            if d.ty != ElemType::Double || dv.ty != ElemType::Int {
                return Err(err(
                    *span,
                    format!("`{array}[{via}[i]]` needs double[ int[i] ]"),
                ));
            }
            Ok(())
        }
        Expr::Bin(_, a, b) => {
            check_expr(prog, l, a, locals, reduced, stmt_span)?;
            check_expr(prog, l, b, locals, reduced, stmt_span)
        }
        Expr::Neg(a) => check_expr(prog, l, a, locals, reduced, stmt_span),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), SemaError> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn figure1_is_valid() {
        check_src(
            "double X[n]; double Y[e]; int IA1[e]; int IA2[e];
             forall (i = 0; i < e; i++) {
                 double f = Y[i] * 0.5;
                 X[IA1[i]] += f;
                 X[IA2[i]] -= f;
             }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_undeclared_array() {
        let e = check_src("double Y[e]; forall (i = 0; i < e; i++) { Z[i] = 1.0; }").unwrap_err();
        assert!(e.message.contains("undeclared"), "{e}");
    }

    #[test]
    fn rejects_int_indirection_type_misuse() {
        let e = check_src(
            "double X[n]; double IA[e];
             forall (i = 0; i < e; i++) { X[IA[i]] += 1.0; }",
        )
        .unwrap_err();
        assert!(e.message.contains("must be int"), "{e}");
    }

    #[test]
    fn type_checks_unnormalized_indirect_stores() {
        // AssignIndirect gets the same type discipline as a reduction,
        // even though its legality is decided later by analysis.
        let e = check_src(
            "double X[n]; double IA[e];
             forall (i = 0; i < e; i++) { X[IA[i]] = 1.0; }",
        )
        .unwrap_err();
        assert!(e.message.contains("must be int"), "{e}");
    }

    #[test]
    fn rejects_reading_reduction_array() {
        let e = check_src(
            "double X[n]; int IA[e];
             forall (i = 0; i < e; i++) { X[IA[i]] += X[IA[i]]; }",
        )
        .unwrap_err();
        assert!(e.message.contains("loop-carried"), "{e}");
    }

    #[test]
    fn rejects_undefined_scalar() {
        let e = check_src(
            "double X[n]; int IA[e];
             forall (i = 0; i < e; i++) { X[IA[i]] += f; }",
        )
        .unwrap_err();
        assert!(e.message.contains("undefined scalar"), "{e}");
    }

    #[test]
    fn rejects_local_redefinition() {
        let e = check_src(
            "double Y[e];
             forall (i = 0; i < e; i++) { double f = 1.0; double f = 2.0; Y[i] = f; }",
        )
        .unwrap_err();
        assert!(e.message.contains("redefined"), "{e}");
    }

    #[test]
    fn rejects_mixed_reduce_and_assign() {
        let e = check_src(
            "double X[n]; int IA[e];
             forall (i = 0; i < e; i++) { X[IA[i]] += 1.0; }
             forall (i = 0; i < n; i++) { X[i] = 0.0; }",
        );
        // Different loops may do both — only the same loop is an error.
        e.unwrap();
        let e2 = check_src(
            "double X[e]; int IA[e];
             forall (i = 0; i < e; i++) { X[IA[i]] += 1.0; X[i] = 0.0; }",
        )
        .unwrap_err();
        assert!(e2.message.contains("both"), "{e2}");
    }

    #[test]
    fn rejects_duplicate_declaration() {
        let e = check_src("double X[n]; double X[n];").unwrap_err();
        assert!(e.message.contains("declared twice"), "{e}");
    }

    #[test]
    fn locals_must_precede_use() {
        let e = check_src(
            "double Y[e];
             forall (i = 0; i < e; i++) { Y[i] = f; double f = 1.0; }",
        )
        .unwrap_err();
        assert!(e.message.contains("undefined scalar"), "{e}");
    }

    #[test]
    fn read_errors_point_at_the_reference() {
        let e = check_src(
            "double X[n]; int IA[e];\nforall (i = 0; i < e; i++) {\n  X[IA[i]] += X[IA[i]];\n}",
        )
        .unwrap_err();
        assert_eq!(e.span.line, 3);
        // Column of the *read* reference (after `+=`), not the statement.
        assert!(e.span.col > 10, "span {:?} should be the read", e.span);
    }
}
