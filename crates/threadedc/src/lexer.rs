//! Tokenizer for the EARTH-C-like DSL.

use crate::{Diagnostic, Span};

/// A lexical token, tagged with its source span.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // keywords
    Double,
    Int,
    Forall,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    // operators
    Plus,
    Minus,
    Star,
    Slash,
    Assign,   // =
    PlusEq,   // +=
    MinusEq,  // -=
    PlusPlus, // ++
    Lt,       // <
    // literals / names
    Ident(String),
    Number(f64),
}

/// A token with position info (1-based line and column of its first
/// character).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Token,
    pub span: Span,
}

/// Tokenize the whole source, reporting the first lexical error.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, Diagnostic> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let span = Span { line, col };
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                    col += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                i += 2;
                col += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(Diagnostic::at(span, "unterminated block comment"));
                }
                i += 2;
                col += 2;
            }
            '(' => push(&mut out, Token::LParen, span, &mut i, &mut col),
            ')' => push(&mut out, Token::RParen, span, &mut i, &mut col),
            '{' => push(&mut out, Token::LBrace, span, &mut i, &mut col),
            '}' => push(&mut out, Token::RBrace, span, &mut i, &mut col),
            '[' => push(&mut out, Token::LBracket, span, &mut i, &mut col),
            ']' => push(&mut out, Token::RBracket, span, &mut i, &mut col),
            ';' => push(&mut out, Token::Semi, span, &mut i, &mut col),
            ',' => push(&mut out, Token::Comma, span, &mut i, &mut col),
            '*' => push(&mut out, Token::Star, span, &mut i, &mut col),
            '/' => push(&mut out, Token::Slash, span, &mut i, &mut col),
            '<' => push(&mut out, Token::Lt, span, &mut i, &mut col),
            '+' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Spanned {
                        tok: Token::PlusEq,
                        span,
                    });
                    i += 2;
                    col += 2;
                } else if bytes.get(i + 1) == Some(&'+') {
                    out.push(Spanned {
                        tok: Token::PlusPlus,
                        span,
                    });
                    i += 2;
                    col += 2;
                } else {
                    push(&mut out, Token::Plus, span, &mut i, &mut col);
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Spanned {
                        tok: Token::MinusEq,
                        span,
                    });
                    i += 2;
                    col += 2;
                } else {
                    push(&mut out, Token::Minus, span, &mut i, &mut col);
                }
            }
            '=' => push(&mut out, Token::Assign, span, &mut i, &mut col),
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || ((bytes[i] == '+' || bytes[i] == '-')
                            && i > start
                            && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')))
                {
                    i += 1;
                    col += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let v: f64 = text
                    .parse()
                    .map_err(|_| Diagnostic::at(span, format!("bad number literal `{text}`")))?;
                out.push(Spanned {
                    tok: Token::Number(v),
                    span,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                    col += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let tok = match text.as_str() {
                    "double" => Token::Double,
                    "int" => Token::Int,
                    "forall" => Token::Forall,
                    _ => Token::Ident(text),
                };
                out.push(Spanned { tok, span });
            }
            other => {
                return Err(Diagnostic::at(
                    span,
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    Ok(out)
}

fn push(out: &mut Vec<Spanned>, tok: Token, span: Span, i: &mut usize, col: &mut usize) {
    out.push(Spanned { tok, span });
    *i += 1;
    *col += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("double x int forall foo_1"),
            vec![
                Token::Double,
                Token::Ident("x".into()),
                Token::Int,
                Token::Forall,
                Token::Ident("foo_1".into())
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 1e3 2.5e-2"),
            vec![
                Token::Number(1.0),
                Token::Number(2.5),
                Token::Number(1000.0),
                Token::Number(0.025)
            ]
        );
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            toks("+= -= ++ + - = <"),
            vec![
                Token::PlusEq,
                Token::MinusEq,
                Token::PlusPlus,
                Token::Plus,
                Token::Minus,
                Token::Assign,
                Token::Lt
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // whole line\nb /* multi\nline */ c"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into())
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let t = tokenize("a\nb\n\nc").unwrap();
        assert_eq!(t[0].span.line, 1);
        assert_eq!(t[1].span.line, 2);
        assert_eq!(t[2].span.line, 4);
    }

    #[test]
    fn columns_tracked() {
        let t = tokenize("ab cd\n  ef").unwrap();
        assert_eq!(t[0].span, Span::new(1, 1));
        assert_eq!(t[1].span, Span::new(1, 4));
        assert_eq!(t[2].span, Span::new(2, 3));
    }

    #[test]
    fn columns_after_operators_and_comments() {
        let t = tokenize("a += b // x\n  c").unwrap();
        assert_eq!(t[1].span, Span::new(1, 3)); // +=
        assert_eq!(t[2].span, Span::new(1, 6)); // b
        assert_eq!(t[3].span, Span::new(2, 3)); // c
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("a § b").is_err());
        assert!(tokenize("/* unterminated").is_err());
    }
}
