//! Tokenizer for the EARTH-C-like DSL.

use crate::Diagnostic;

/// A lexical token, tagged with its source line.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // keywords
    Double,
    Int,
    Forall,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    // operators
    Plus,
    Minus,
    Star,
    Slash,
    Assign,   // =
    PlusEq,   // +=
    MinusEq,  // -=
    PlusPlus, // ++
    Lt,       // <
    // literals / names
    Ident(String),
    Number(f64),
}

/// A token with position info.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Token,
    pub line: usize,
}

/// Tokenize the whole source, reporting the first lexical error.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, Diagnostic> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(Diagnostic {
                        line,
                        message: "unterminated block comment".into(),
                    });
                }
                i += 2;
            }
            '(' => push(&mut out, Token::LParen, line, &mut i),
            ')' => push(&mut out, Token::RParen, line, &mut i),
            '{' => push(&mut out, Token::LBrace, line, &mut i),
            '}' => push(&mut out, Token::RBrace, line, &mut i),
            '[' => push(&mut out, Token::LBracket, line, &mut i),
            ']' => push(&mut out, Token::RBracket, line, &mut i),
            ';' => push(&mut out, Token::Semi, line, &mut i),
            ',' => push(&mut out, Token::Comma, line, &mut i),
            '*' => push(&mut out, Token::Star, line, &mut i),
            '/' => push(&mut out, Token::Slash, line, &mut i),
            '<' => push(&mut out, Token::Lt, line, &mut i),
            '+' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Spanned {
                        tok: Token::PlusEq,
                        line,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'+') {
                    out.push(Spanned {
                        tok: Token::PlusPlus,
                        line,
                    });
                    i += 2;
                } else {
                    push(&mut out, Token::Plus, line, &mut i);
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Spanned {
                        tok: Token::MinusEq,
                        line,
                    });
                    i += 2;
                } else {
                    push(&mut out, Token::Minus, line, &mut i);
                }
            }
            '=' => push(&mut out, Token::Assign, line, &mut i),
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || ((bytes[i] == '+' || bytes[i] == '-')
                            && i > start
                            && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')))
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let v: f64 = text.parse().map_err(|_| Diagnostic {
                    line,
                    message: format!("bad number literal `{text}`"),
                })?;
                out.push(Spanned {
                    tok: Token::Number(v),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let tok = match text.as_str() {
                    "double" => Token::Double,
                    "int" => Token::Int,
                    "forall" => Token::Forall,
                    _ => Token::Ident(text),
                };
                out.push(Spanned { tok, line });
            }
            other => {
                return Err(Diagnostic {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

fn push(out: &mut Vec<Spanned>, tok: Token, line: usize, i: &mut usize) {
    out.push(Spanned { tok, line });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("double x int forall foo_1"),
            vec![
                Token::Double,
                Token::Ident("x".into()),
                Token::Int,
                Token::Forall,
                Token::Ident("foo_1".into())
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 1e3 2.5e-2"),
            vec![
                Token::Number(1.0),
                Token::Number(2.5),
                Token::Number(1000.0),
                Token::Number(0.025)
            ]
        );
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            toks("+= -= ++ + - = <"),
            vec![
                Token::PlusEq,
                Token::MinusEq,
                Token::PlusPlus,
                Token::Plus,
                Token::Minus,
                Token::Assign,
                Token::Lt
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // whole line\nb /* multi\nline */ c"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into())
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let t = tokenize("a\nb\n\nc").unwrap();
        assert_eq!(t[0].line, 1);
        assert_eq!(t[1].line, 2);
        assert_eq!(t[2].line, 4);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("a § b").is_err());
        assert!(tokenize("/* unterminated").is_err());
    }
}
