//! Lowering: from a fissioned loop to the machine's input — an
//! interpreted [`irred::EdgeKernel`] plus the CSR
//! [`lightinspector::FlatPlan`] the executors' fast path streams.
//!
//! This is the "generate code for the execution strategy presented in
//! Section 2" step of §4, taken all the way down: instead of handing
//! the engine raw indirection and letting it run the inspector and then
//! flatten the nested plan, the compiler emits the flat schedule
//! *directly* with [`emit_flat_plans`] (one
//! [`lightinspector::inspect_flat`] pass per processor, under the same
//! iteration distribution the engine uses) and the engine *adopts* it
//! via [`irred::PhasedEngine::prepare_from_flat`] — zero translation
//! between compiled output and the fast path. Adoption re-verifies
//! every plan against the indirection, so a compiler bug surfaces as a
//! typed error, never as silent corruption.

use std::collections::HashMap;
use std::sync::Arc;

use irred::{distribute, EdgeKernel, PhasedSpec, StrategyConfig};
use lightinspector::{inspect_flat, FlatInspection, InspectError, InspectorInput, PhaseGeometry};

use crate::ast::*;
use crate::codegen::CompiledLoop;
use crate::interp::Bindings;
use crate::Diagnostic;

/// A compiled (resolved-reference) expression, evaluable without name
/// lookups.
#[derive(Debug, Clone)]
enum CExpr {
    Number(f64),
    LoopVar,
    Local(usize),
    /// Direct read: f64 array slot, indexed by the iteration.
    Direct(usize),
    /// Indirect read: f64 array slot through int array slot.
    Indirect(usize, usize),
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
    Neg(Box<CExpr>),
}

impl CExpr {
    fn eval(
        &self,
        i: usize,
        locals: &[f64],
        f64s: &[Arc<Vec<f64>>],
        ints: &[Arc<Vec<u32>>],
    ) -> f64 {
        match self {
            CExpr::Number(v) => *v,
            CExpr::LoopVar => i as f64,
            CExpr::Local(s) => locals[*s],
            CExpr::Direct(a) => f64s[*a][i],
            CExpr::Indirect(a, v) => f64s[*a][ints[*v][i] as usize],
            CExpr::Bin(op, x, y) => {
                let (x, y) = (x.eval(i, locals, f64s, ints), y.eval(i, locals, f64s, ints));
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                }
            }
            CExpr::Neg(x) => -x.eval(i, locals, f64s, ints),
        }
    }
}

/// The interpreted kernel generated for one irregular loop: implements
/// [`irred::EdgeKernel`] by evaluating the loop body.
pub struct InterpKernel {
    locals: Vec<CExpr>,
    /// `(ref index, array index, negate, value)` per reduction statement.
    updates: Vec<(usize, usize, bool, CExpr)>,
    f64s: Vec<Arc<Vec<f64>>>,
    ints: Vec<Arc<Vec<u32>>>,
    num_refs: usize,
    num_arrays: usize,
    flops: u64,
    edge_reads: usize,
    node_reads: usize,
}

impl EdgeKernel for InterpKernel {
    fn num_refs(&self) -> usize {
        self.num_refs
    }

    fn num_arrays(&self) -> usize {
        self.num_arrays
    }

    fn contrib(&self, _read: &[f64], iter: usize, _elems: &[u32], out: &mut [f64]) {
        let mut locals = [0.0f64; 16];
        for (s, init) in self.locals.iter().enumerate() {
            locals[s] = init.eval(iter, &locals, &self.f64s, &self.ints);
        }
        for (r, a, negate, value) in &self.updates {
            let v = value.eval(iter, &locals, &self.f64s, &self.ints);
            let slot = r * self.num_arrays + a;
            out[slot] += if *negate { -v } else { v };
        }
    }

    fn flops_per_iter(&self) -> u64 {
        self.flops
    }

    fn edge_reads_per_iter(&self) -> usize {
        self.edge_reads
    }

    fn node_reads_per_elem(&self) -> usize {
        self.node_reads
    }
}

/// Build the [`InterpKernel`] and [`PhasedSpec`] for one compiled loop
/// against concrete bindings.
pub(crate) fn lower_kernel(
    prog: &Program,
    cl: &CompiledLoop,
    b: &Bindings,
) -> Result<PhasedSpec<InterpKernel>, Diagnostic> {
    let l = &prog.loops[cl.loop_index];
    let mut f64_slots: Vec<(String, Arc<Vec<f64>>)> = Vec::new();
    let mut int_slots: Vec<(String, Arc<Vec<u32>>)> = Vec::new();
    let mut local_slots: HashMap<String, usize> = HashMap::new();

    let f64_slot =
        |name: &str, f64_slots: &mut Vec<(String, Arc<Vec<f64>>)>| -> Result<usize, Diagnostic> {
            if let Some(p) = f64_slots.iter().position(|(n, _)| n == name) {
                return Ok(p);
            }
            let data = b
                .f64s
                .get(name)
                .cloned()
                .ok_or_else(|| Diagnostic::at(l.span, format!("array `{name}` not bound")))?;
            f64_slots.push((name.to_string(), Arc::new(data)));
            Ok(f64_slots.len() - 1)
        };
    let int_slot =
        |name: &str, int_slots: &mut Vec<(String, Arc<Vec<u32>>)>| -> Result<usize, Diagnostic> {
            if let Some(p) = int_slots.iter().position(|(n, _)| n == name) {
                return Ok(p);
            }
            let data = b.ints.get(name).cloned().ok_or_else(|| {
                Diagnostic::at(l.span, format!("indirection array `{name}` not bound"))
            })?;
            int_slots.push((name.to_string(), Arc::new(data)));
            Ok(int_slots.len() - 1)
        };

    let mut edge_reads = 0usize;
    let mut node_reads = 0usize;
    fn lower(
        e: &Expr,
        locals: &HashMap<String, usize>,
        f64_slot: &mut dyn FnMut(&str) -> Result<usize, Diagnostic>,
        int_slot: &mut dyn FnMut(&str) -> Result<usize, Diagnostic>,
        edge_reads: &mut usize,
        node_reads: &mut usize,
    ) -> Result<CExpr, Diagnostic> {
        Ok(match e {
            Expr::Number(v) => CExpr::Number(*v),
            Expr::Var(v) => match locals.get(v) {
                Some(s) => CExpr::Local(*s),
                None => CExpr::LoopVar,
            },
            Expr::Direct { array, .. } => {
                *edge_reads += 1;
                CExpr::Direct(f64_slot(array)?)
            }
            Expr::Indirect { array, via, .. } => {
                *node_reads += 1;
                CExpr::Indirect(f64_slot(array)?, int_slot(via)?)
            }
            Expr::Bin(op, a, c) => CExpr::Bin(
                *op,
                Box::new(lower(
                    a, locals, f64_slot, int_slot, edge_reads, node_reads,
                )?),
                Box::new(lower(
                    c, locals, f64_slot, int_slot, edge_reads, node_reads,
                )?),
            ),
            Expr::Neg(a) => CExpr::Neg(Box::new(lower(
                a, locals, f64_slot, int_slot, edge_reads, node_reads,
            )?)),
        })
    }

    let mut locals = Vec::new();
    let mut updates = Vec::new();
    let mut flops = 0u64;
    for s in &l.body {
        match s {
            Stmt::Local { name, init, .. } => {
                assert!(locals.len() < 16, "more than 16 loop locals unsupported");
                let ce = lower(
                    init,
                    &local_slots,
                    &mut |n| f64_slot(n, &mut f64_slots),
                    &mut |n| int_slot(n, &mut int_slots),
                    &mut edge_reads,
                    &mut node_reads,
                )?;
                flops += init.flops();
                local_slots.insert(name.clone(), locals.len());
                locals.push(ce);
            }
            Stmt::ReduceIndirect {
                array,
                via,
                negate,
                value,
                ..
            } => {
                let r = cl.vias.iter().position(|v| v == via).expect("analysis");
                let a = cl
                    .reduction_arrays
                    .iter()
                    .position(|x| x == array)
                    .expect("analysis");
                let ce = lower(
                    value,
                    &local_slots,
                    &mut |n| f64_slot(n, &mut f64_slots),
                    &mut |n| int_slot(n, &mut int_slots),
                    &mut edge_reads,
                    &mut node_reads,
                )?;
                flops += value.flops() + 1;
                updates.push((r, a, *negate, ce));
            }
            // Analysis rejects residual indirect stores and fission
            // hoists direct writes into the prelude; reaching either
            // here is a compiler bug.
            Stmt::AssignIndirect { span, .. } | Stmt::AssignDirect { span, .. } => {
                return Err(Diagnostic::at(
                    *span,
                    "non-reduction write inside a phased loop (fission should have removed it)",
                ))
            }
        }
    }

    // The indirection arrays of the group, in via order.
    let e = b.size_of(&cl.count)?;
    let mut indirection = Vec::with_capacity(cl.vias.len());
    for via in &cl.vias {
        let data = b.ints.get(via).cloned().ok_or_else(|| {
            Diagnostic::at(l.span, format!("indirection array `{via}` not bound"))
        })?;
        if data.len() != e {
            return Err(Diagnostic::at(
                l.span,
                format!("indirection array `{via}` has wrong length"),
            ));
        }
        indirection.push(data);
    }

    let kernel = InterpKernel {
        locals,
        updates,
        f64s: f64_slots.into_iter().map(|(_, d)| d).collect(),
        ints: int_slots.into_iter().map(|(_, d)| d).collect(),
        num_refs: cl.vias.len(),
        num_arrays: cl.reduction_arrays.len(),
        flops,
        edge_reads,
        node_reads,
    };
    Ok(PhasedSpec {
        kernel: Arc::new(kernel),
        num_elements: b.size_of(&cl.elem_size)?,
        indirection: Arc::new(indirection),
    })
}

/// Emit the per-processor CSR flat plans for a spec under a strategy —
/// the compiler-side LightInspector. Iterations are split exactly the
/// way the engine splits them ([`irred::distribute`] under the
/// strategy's distribution), then each processor's local slice goes
/// through the one-pass flat emitter. The result feeds
/// [`irred::PhasedEngine::prepare_from_flat`] with zero translation.
pub fn emit_flat_plans<K: EdgeKernel>(
    spec: &PhasedSpec<K>,
    strat: &StrategyConfig,
) -> Result<Vec<FlatInspection>, InspectError> {
    let geometry = PhaseGeometry::try_new(strat.procs, strat.k, spec.num_elements)?;
    let owned = distribute(spec.num_iterations(), strat.procs, strat.distribution);
    let mut flats = Vec::with_capacity(strat.procs);
    for (proc, local_iters) in owned.iter().enumerate().take(strat.procs) {
        let local: Vec<Vec<u32>> = spec
            .indirection
            .iter()
            .map(|arr| local_iters.iter().map(|&i| arr[i as usize]).collect())
            .collect();
        let refs: Vec<&[u32]> = local.iter().map(|v| v.as_slice()).collect();
        flats.push(inspect_flat(InspectorInput {
            geometry,
            proc_id: proc,
            indirection: &refs,
        })?);
    }
    Ok(flats)
}

/// A human-readable digest of one loop's emitted flat plans — what the
/// `threadedc` CLI prints per phased loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatSummary {
    pub procs: usize,
    pub k: usize,
    /// Phases per processor (`k · procs`).
    pub num_phases: usize,
    /// Local iterations summed over processors (= the loop's trip count).
    pub total_iters: usize,
    /// Reference-array entries summed over processors.
    pub total_refs: usize,
    /// Buffered contributions (copy ops) summed over processors.
    pub total_copies: usize,
    /// Buffer slots summed over processors.
    pub buffer_slots: usize,
}

impl FlatSummary {
    pub fn from_flats(flats: &[FlatInspection], strat: &StrategyConfig) -> FlatSummary {
        FlatSummary {
            procs: strat.procs,
            k: strat.k,
            num_phases: flats.first().map_or(0, |f| f.flat.num_phases()),
            total_iters: flats.iter().map(|f| f.iters.len()).sum(),
            total_refs: flats.iter().map(|f| f.flat.refs.len()).sum(),
            total_copies: flats.iter().map(|f| f.flat.copies.len()).sum(),
            buffer_slots: flats.iter().map(|f| f.buffer_len).sum(),
        }
    }
}

impl std::fmt::Display for FlatSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={} k={} phases={} iters={} refs={} copies={} buffer_slots={}",
            self.procs,
            self.k,
            self.num_phases,
            self.total_iters,
            self.total_refs,
            self.total_copies,
            self.buffer_slots
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irred::Distribution;

    #[test]
    fn emitted_plans_cover_all_iterations() {
        let n = 20usize;
        let e = 100usize;
        let ia: Vec<u32> = (0..e).map(|j| ((j * 7 + 3) % n) as u32).collect();
        let ib: Vec<u32> = (0..e).map(|j| ((j * 13 + 1) % n) as u32).collect();
        let spec = PhasedSpec {
            kernel: Arc::new(InterpKernel {
                locals: vec![],
                updates: vec![(0, 0, false, CExpr::Number(1.0))],
                f64s: vec![],
                ints: vec![],
                num_refs: 2,
                num_arrays: 1,
                flops: 1,
                edge_reads: 0,
                node_reads: 0,
            }),
            num_elements: n,
            indirection: Arc::new(vec![ia, ib]),
        };
        let strat = StrategyConfig::new(4, 2, Distribution::Cyclic, 1);
        let flats = emit_flat_plans(&spec, &strat).unwrap();
        assert_eq!(flats.len(), 4);
        let s = FlatSummary::from_flats(&flats, &strat);
        assert_eq!(s.total_iters, e);
        assert_eq!(s.total_refs, e * 2);
        assert_eq!(s.num_phases, 8);
        assert!(s.to_string().contains("P=4 k=2"));
    }
}
