//! Recursive-descent parser for the DSL.
//!
//! Grammar (informal):
//!
//! ```text
//! program  := (decl | forall)*
//! decl     := ("double" | "int") IDENT "[" IDENT_OR_NUM "]" ";"
//! forall   := "forall" "(" IDENT "=" "0" ";" IDENT "<" IDENT ";" IDENT "++" ")" "{" stmt* "}"
//! stmt     := "double" IDENT "=" expr ";"
//!           | IDENT "[" index "]" ("+=" | "-=" | "=") expr ";"
//! index    := IDENT | IDENT "[" IDENT "]"
//! expr     := term (("+" | "-") term)*
//! term     := factor (("*" | "/") factor)*
//! factor   := NUMBER | "-" factor | "(" expr ")" | IDENT [ "[" index "]" ]
//! ```
//!
//! Un-annotated stores through indirection (`X[A[i]] = …`) parse to
//! [`Stmt::AssignIndirect`]; reduction recognition
//! ([`crate::analysis::normalize_program`]) later rewrites the
//! self-accumulating forms into [`Stmt::ReduceIndirect`] and the
//! dependence test rejects the rest.

use crate::ast::*;
use crate::lexer::{tokenize, Spanned, Token};
use crate::{Diagnostic, Span};

/// Parse source text into a [`Program`].
pub fn parse(src: &str) -> Result<Program, Diagnostic> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    /// Span of the token at the cursor (or of the last token at EOF).
    fn span(&self) -> Span {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(Span::default(), |s| s.span)
    }

    fn err(&self, message: impl Into<String>) -> Diagnostic {
        Diagnostic::at(self.span(), message)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), Diagnostic> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, Diagnostic> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => {
                self.pos = self.pos.saturating_sub(1);
                let e = self.err(format!("expected {what}, found {other:?}"));
                self.pos += 1;
                Err(e)
            }
        }
    }

    fn program(&mut self) -> Result<Program, Diagnostic> {
        let mut prog = Program::default();
        while let Some(tok) = self.peek() {
            match tok {
                Token::Double | Token::Int => {
                    let d = self.decl()?;
                    prog.decls.push(d);
                }
                Token::Forall => {
                    let f = self.forall()?;
                    prog.loops.push(f);
                }
                other => {
                    return Err(self.err(format!("expected declaration or forall, found {other:?}")))
                }
            }
        }
        Ok(prog)
    }

    fn decl(&mut self) -> Result<ArrayDecl, Diagnostic> {
        let span = self.span();
        let ty = match self.bump() {
            Some(Token::Double) => ElemType::Double,
            Some(Token::Int) => ElemType::Int,
            _ => unreachable!("checked by caller"),
        };
        let name = self.ident("array name")?;
        self.expect(&Token::LBracket, "`[`")?;
        let size = match self.bump() {
            Some(Token::Ident(s)) => s,
            Some(Token::Number(v)) => format!("{}", v as usize),
            other => return Err(self.err(format!("expected array size, found {other:?}"))),
        };
        self.expect(&Token::RBracket, "`]`")?;
        self.expect(&Token::Semi, "`;`")?;
        Ok(ArrayDecl {
            name,
            ty,
            size,
            span,
        })
    }

    fn forall(&mut self) -> Result<Forall, Diagnostic> {
        let span = self.span();
        self.expect(&Token::Forall, "`forall`")?;
        self.expect(&Token::LParen, "`(`")?;
        let var = self.ident("loop variable")?;
        self.expect(&Token::Assign, "`=`")?;
        match self.bump() {
            Some(Token::Number(0.0)) => {}
            other => return Err(self.err(format!("forall must start at 0, found {other:?}"))),
        }
        self.expect(&Token::Semi, "`;`")?;
        let v2 = self.ident("loop variable")?;
        if v2 != var {
            return Err(self.err(format!("loop condition tests `{v2}`, expected `{var}`")));
        }
        self.expect(&Token::Lt, "`<`")?;
        let count = self.ident("iteration-count symbol")?;
        self.expect(&Token::Semi, "`;`")?;
        let v3 = self.ident("loop variable")?;
        if v3 != var {
            return Err(self.err(format!("loop increments `{v3}`, expected `{var}`")));
        }
        self.expect(&Token::PlusPlus, "`++`")?;
        self.expect(&Token::RParen, "`)`")?;
        self.expect(&Token::LBrace, "`{`")?;
        let mut body = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            body.push(self.stmt(&var)?);
        }
        self.expect(&Token::RBrace, "`}`")?;
        Ok(Forall {
            var,
            count,
            body,
            span,
        })
    }

    fn stmt(&mut self, loop_var: &str) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        match self.peek() {
            Some(Token::Double) => {
                self.bump();
                let name = self.ident("local name")?;
                self.expect(&Token::Assign, "`=`")?;
                let init = self.expr(loop_var)?;
                self.expect(&Token::Semi, "`;`")?;
                Ok(Stmt::Local { name, init, span })
            }
            Some(Token::Ident(_)) => {
                let array = self.ident("array name")?;
                self.expect(&Token::LBracket, "`[`")?;
                let idx_name = self.ident("index")?;
                let via = if self.peek() == Some(&Token::LBracket) {
                    self.bump();
                    let inner = self.ident("inner index")?;
                    if inner != loop_var {
                        return Err(self.err(format!(
                            "indirection array must be indexed by the loop variable `{loop_var}`"
                        )));
                    }
                    self.expect(&Token::RBracket, "`]`")?;
                    Some(idx_name)
                } else if idx_name == loop_var {
                    None
                } else {
                    return Err(self.err(format!(
                        "direct access must use the loop variable `{loop_var}`, found `{idx_name}`"
                    )));
                };
                self.expect(&Token::RBracket, "`]`")?;
                let op = self.bump();
                let value = self.expr(loop_var)?;
                self.expect(&Token::Semi, "`;`")?;
                match (via, op) {
                    (Some(via), Some(Token::PlusEq)) => Ok(Stmt::ReduceIndirect {
                        array,
                        via,
                        negate: false,
                        value,
                        span,
                    }),
                    (Some(via), Some(Token::MinusEq)) => Ok(Stmt::ReduceIndirect {
                        array,
                        via,
                        negate: true,
                        value,
                        span,
                    }),
                    (Some(via), Some(Token::Assign)) => Ok(Stmt::AssignIndirect {
                        array,
                        via,
                        value,
                        span,
                    }),
                    (Some(_), other) => Err(Diagnostic::at(
                        span,
                        format!("indirect updates must be `=`, `+=` or `-=`, found {other:?}"),
                    )),
                    (None, Some(Token::PlusEq)) => Ok(Stmt::AssignDirect {
                        array,
                        accumulate: true,
                        value,
                        span,
                    }),
                    (None, Some(Token::Assign)) => Ok(Stmt::AssignDirect {
                        array,
                        accumulate: false,
                        value,
                        span,
                    }),
                    (None, other) => Err(Diagnostic::at(
                        span,
                        format!("expected `=` or `+=`, found {other:?}"),
                    )),
                }
            }
            other => Err(self.err(format!("expected statement, found {other:?}"))),
        }
    }

    fn expr(&mut self, loop_var: &str) -> Result<Expr, Diagnostic> {
        let mut lhs = self.term(loop_var)?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term(loop_var)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self, loop_var: &str) -> Result<Expr, Diagnostic> {
        let mut lhs = self.factor(loop_var)?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.factor(loop_var)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self, loop_var: &str) -> Result<Expr, Diagnostic> {
        let span = self.span();
        match self.bump() {
            Some(Token::Number(v)) => Ok(Expr::Number(v)),
            Some(Token::Minus) => Ok(Expr::Neg(Box::new(self.factor(loop_var)?))),
            Some(Token::LParen) => {
                let e = self.expr(loop_var)?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LBracket) {
                    self.bump();
                    let idx = self.ident("index")?;
                    if self.peek() == Some(&Token::LBracket) {
                        self.bump();
                        let inner = self.ident("inner index")?;
                        if inner != loop_var {
                            return Err(self.err(
                                "indirection array must be indexed by the loop variable"
                                    .to_string(),
                            ));
                        }
                        self.expect(&Token::RBracket, "`]`")?;
                        self.expect(&Token::RBracket, "`]`")?;
                        Ok(Expr::Indirect {
                            array: name,
                            via: idx,
                            span,
                        })
                    } else {
                        self.expect(&Token::RBracket, "`]`")?;
                        if idx != loop_var {
                            return Err(self.err(format!(
                                "direct access must use the loop variable `{loop_var}`"
                            )));
                        }
                        Ok(Expr::Direct { array: name, span })
                    }
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = r#"
        // The paper's Figure 1 loop shape.
        double X[num_nodes];
        double Y[num_edges];
        int IA1[num_edges];
        int IA2[num_edges];
        forall (i = 0; i < num_edges; i++) {
            double f = Y[i] * 0.5;
            X[IA1[i]] += f;
            X[IA2[i]] -= f;
        }
    "#;

    #[test]
    fn parses_figure1() {
        let prog = parse(FIG1).unwrap();
        assert_eq!(prog.decls.len(), 4);
        assert_eq!(prog.loops.len(), 1);
        let l = &prog.loops[0];
        assert_eq!(l.var, "i");
        assert_eq!(l.count, "num_edges");
        assert_eq!(l.body.len(), 3);
        assert!(
            matches!(&l.body[1], Stmt::ReduceIndirect { array, via, negate: false, .. }
            if array == "X" && via == "IA1")
        );
        assert!(matches!(
            &l.body[2],
            Stmt::ReduceIndirect { negate: true, .. }
        ));
    }

    #[test]
    fn parses_direct_assign() {
        let prog =
            parse("double Y[e]; forall (i = 0; i < e; i++) { Y[i] = 2.0; Y[i] += 1.0; }").unwrap();
        assert!(matches!(
            prog.loops[0].body[0],
            Stmt::AssignDirect {
                accumulate: false,
                ..
            }
        ));
        assert!(matches!(
            prog.loops[0].body[1],
            Stmt::AssignDirect {
                accumulate: true,
                ..
            }
        ));
    }

    #[test]
    fn precedence() {
        let prog =
            parse("double Y[e]; forall (i = 0; i < e; i++) { Y[i] = 1.0 + 2.0 * 3.0; }").unwrap();
        let Stmt::AssignDirect { value, .. } = &prog.loops[0].body[0] else {
            panic!()
        };
        // 1 + (2*3)
        assert!(matches!(value, Expr::Bin(BinOp::Add, _, _)));
    }

    #[test]
    fn plain_assign_through_indirection_parses_to_assign_indirect() {
        let prog =
            parse("double X[n]; int A[e]; forall (i = 0; i < e; i++) { X[A[i]] = 1.0; }").unwrap();
        assert!(
            matches!(&prog.loops[0].body[0], Stmt::AssignIndirect { array, via, .. }
            if array == "X" && via == "A")
        );
    }

    #[test]
    fn rejects_wrong_loop_variable() {
        let err = parse("double Y[e]; forall (i = 0; i < e; i++) { Y[j] = 1.0; }").unwrap_err();
        assert!(err.message.contains("loop variable"), "{err}");
    }

    #[test]
    fn rejects_two_level_indirection() {
        // A[B[C[i]]] is not in the grammar at all.
        assert!(parse(
            "double X[n]; int A[e]; int B[e]; forall (i = 0; i < e; i++) { X[A[B[i]]] += 1.0; }"
        )
        .is_err());
    }

    #[test]
    fn rejects_nonzero_start() {
        assert!(parse("double Y[e]; forall (i = 1; i < e; i++) { Y[i] = 1.0; }").is_err());
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse("double X[n];\n\nforall (i = 0; i < e; i++) { X[ }").unwrap_err();
        assert_eq!(err.span.line, 3);
    }

    #[test]
    fn statements_and_references_carry_spans() {
        let prog = parse(
            "double X[n]; double W[e]; int A[e];\nforall (i = 0; i < e; i++) {\n  X[A[i]] += W[i];\n}",
        )
        .unwrap();
        let Stmt::ReduceIndirect { value, span, .. } = &prog.loops[0].body[0] else {
            panic!()
        };
        assert_eq!(*span, Span::new(3, 3));
        assert!(matches!(value, Expr::Direct { span, .. } if *span == Span::new(3, 14)));
    }
}
