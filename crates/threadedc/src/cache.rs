//! A source-hash keyed compile cache.
//!
//! Compilation is pure: the same source text always yields the same
//! [`CompiledProgram`] (the pipeline is deterministic and consults
//! nothing else). That makes a content-addressed cache sound — the key
//! is a 64-bit digest of the *bytes* of the source, so an edit–rerun
//! loop or a server tenant resubmitting the same program skips parse,
//! sema, analysis, fission, *and* the compile-time fission verification
//! entirely. Only successful compiles are cached: a failing program
//! costs a (cheap) recompile per submit, and never pins an error state.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::codegen::{compile, CompiledProgram};
use crate::Diagnostic;

/// Fold one word into a running hash (same construction as the engine's
/// structure hash: xor, then a full splitmix64 avalanche).
fn fold64(h: &mut u64, word: u64) {
    *h ^= word;
    *h = harness::rng::splitmix64(h);
}

/// Content hash of a source text: the compile-cache key. The seed tags
/// the scheme ("TCC" | format version 1) — bump it if the compiler's
/// observable output for unchanged source ever changes, so stale
/// cross-process keys cannot collide.
pub fn source_hash(src: &str) -> u64 {
    let mut h: u64 = 0x5443_4331_0000_0001;
    fold64(&mut h, src.len() as u64);
    for chunk in src.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        fold64(&mut h, u64::from_le_bytes(word));
    }
    h
}

/// A bounded FIFO cache of compiled programs keyed by [`source_hash`].
#[derive(Debug, Default)]
pub struct CompileCache {
    capacity: usize,
    entries: HashMap<u64, Arc<CompiledProgram>>,
    /// Insertion order, for FIFO eviction at capacity.
    order: VecDeque<u64>,
    hits: u64,
    misses: u64,
}

impl CompileCache {
    /// A cache holding at most `capacity` compiled programs
    /// (`capacity == 0` disables caching: every call compiles).
    pub fn new(capacity: usize) -> CompileCache {
        CompileCache {
            capacity,
            ..CompileCache::default()
        }
    }

    /// Compile `src`, reusing the cached program if this exact text was
    /// compiled before. Failures are returned (and counted as misses)
    /// but never cached.
    pub fn get_or_compile(&mut self, src: &str) -> Result<Arc<CompiledProgram>, Diagnostic> {
        let key = source_hash(src);
        if let Some(p) = self.entries.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(p));
        }
        self.misses += 1;
        let compiled = Arc::new(compile(src)?);
        if self.capacity > 0 {
            while self.entries.len() >= self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.entries.remove(&old);
                } else {
                    break;
                }
            }
            self.entries.insert(key, Arc::clone(&compiled));
            self.order.push_back(key);
        }
        Ok(compiled)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far (including failed compiles).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Programs currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OK: &str = "double X[n]; int A[e];
                      forall (i = 0; i < e; i++) { X[A[i]] += 1.0; }";

    #[test]
    fn hash_is_content_sensitive() {
        assert_eq!(source_hash(OK), source_hash(OK));
        assert_ne!(source_hash(OK), source_hash("double X[n];"));
        // Trailing content matters even within one 8-byte word.
        assert_ne!(source_hash("abc"), source_hash("abd"));
        assert_ne!(source_hash("abc"), source_hash("abc "));
    }

    #[test]
    fn second_compile_hits() {
        let mut c = CompileCache::new(4);
        let a = c.get_or_compile(OK).unwrap();
        let b = c.get_or_compile(OK).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn failures_are_not_cached() {
        let mut c = CompileCache::new(4);
        let bad = "double X[n]; int A[e];
                   forall (i = 0; i < e; i++) { X[A[i]] = 1.0; }";
        assert!(c.get_or_compile(bad).is_err());
        assert!(c.get_or_compile(bad).is_err());
        assert_eq!((c.hits(), c.misses(), c.len()), (0, 2, 0));
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut c = CompileCache::new(2);
        let srcs = [
            "double A[n]; forall (i = 0; i < n; i++) { A[i] = 1.0; }",
            "double B[n]; forall (i = 0; i < n; i++) { B[i] = 1.0; }",
            "double C[n]; forall (i = 0; i < n; i++) { C[i] = 1.0; }",
        ];
        for s in &srcs {
            c.get_or_compile(s).unwrap();
        }
        assert_eq!(c.len(), 2);
        // Oldest (A) evicted: recompiling it misses, newest (C) hits.
        c.get_or_compile(srcs[2]).unwrap();
        assert_eq!(c.hits(), 1);
        c.get_or_compile(srcs[0]).unwrap();
        assert_eq!(c.misses(), 4);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = CompileCache::new(0);
        c.get_or_compile(OK).unwrap();
        c.get_or_compile(OK).unwrap();
        assert_eq!((c.hits(), c.misses(), c.len()), (0, 2, 0));
    }
}
