//! Loop analysis: the first phase of the paper's compiler (§4).
//!
//! For each `forall`, extract the **reduction array sections** (regular
//! sections of arrays accessed through indirection and updated with
//! associative/commutative operations) and the **indirection array
//! sections** (regular sections used to perform those accesses), in the
//! paper's triplet notation. Reduction sections are then partitioned
//! into **reference groups** (Definition 1): sections accessed through
//! the same *set* of indirection sections, which can share one
//! LightInspector.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::*;

/// A regular array section in triplet notation `(start, end, stride)` —
/// for `forall (i = 0; i < count; i++)` accesses these are always
/// `[0 : count : 1]`, with `count` symbolic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    pub array: String,
    /// Symbolic end bound (the loop count symbol).
    pub count: String,
}

impl std::fmt::Display for Section {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[0 : {} : 1]", self.array, self.count)
    }
}

/// A reference group: reduction arrays accessed through the same set of
/// indirection sections (Definition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefGroup {
    /// Reduction arrays in this group, in first-appearance order.
    pub arrays: Vec<String>,
    /// The indirection arrays (sorted) through which they are accessed.
    pub vias: Vec<String>,
}

/// Classification of one `forall`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopClass {
    /// No indirect updates: embarrassingly parallel over the index.
    Regular,
    /// At least one irregular reduction; `groups` has one entry per
    /// reference group. When `groups.len() > 1`, loop fission applies.
    IrregularReduction { groups: Vec<RefGroup> },
}

/// Everything the rest of the pipeline needs to know about one loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopInfo {
    pub class: LoopClass,
    /// All indirection sections used by the loop.
    pub indirection_sections: Vec<Section>,
    /// All reduction sections (array, via) pairs.
    pub reduction_sections: Vec<(Section, String)>,
}

/// Analyze every loop of a (sema-checked) program.
pub fn analyze_program(prog: &Program) -> Vec<LoopInfo> {
    prog.loops.iter().map(analyze_loop).collect()
}

fn analyze_loop(l: &Forall) -> LoopInfo {
    // array -> set of vias used to update it
    let mut updates: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut ind_sections: BTreeSet<String> = BTreeSet::new();
    let mut red_sections: Vec<(Section, String)> = Vec::new();

    for s in &l.body {
        if let Stmt::ReduceIndirect { array, via, .. } = s {
            if !updates.contains_key(array) {
                order.push(array.clone());
            }
            updates
                .entry(array.clone())
                .or_default()
                .insert(via.clone());
            ind_sections.insert(via.clone());
            let sec = Section {
                array: array.clone(),
                count: l.count.clone(),
            };
            if !red_sections.iter().any(|(rs, v)| rs == &sec && v == via) {
                red_sections.push((sec, via.clone()));
            }
        }
    }

    let class = if updates.is_empty() {
        LoopClass::Regular
    } else {
        // Group arrays by their via-set (Definition 1), preserving
        // first-appearance order of arrays within and across groups.
        let mut groups: Vec<RefGroup> = Vec::new();
        for array in &order {
            let vias: Vec<String> = updates[array].iter().cloned().collect();
            if let Some(g) = groups.iter_mut().find(|g| g.vias == vias) {
                g.arrays.push(array.clone());
            } else {
                groups.push(RefGroup {
                    arrays: vec![array.clone()],
                    vias,
                });
            }
        }
        LoopClass::IrregularReduction { groups }
    };

    LoopInfo {
        class,
        indirection_sections: ind_sections
            .into_iter()
            .map(|array| Section {
                array,
                count: l.count.clone(),
            })
            .collect(),
        reduction_sections: red_sections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze(src: &str) -> Vec<LoopInfo> {
        let prog = parse(src).unwrap();
        crate::sema::check(&prog).unwrap();
        analyze_program(&prog)
    }

    #[test]
    fn figure1_single_group() {
        let info = analyze(
            "double X[n]; double Y[e]; int IA1[e]; int IA2[e];
             forall (i = 0; i < e; i++) {
                 double f = Y[i] * 0.5;
                 X[IA1[i]] += f;
                 X[IA2[i]] -= f;
             }",
        );
        let LoopClass::IrregularReduction { groups } = &info[0].class else {
            panic!("expected irregular reduction");
        };
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].arrays, vec!["X"]);
        assert_eq!(groups[0].vias, vec!["IA1", "IA2"]);
        assert_eq!(info[0].indirection_sections.len(), 2);
        assert_eq!(
            info[0].indirection_sections[0].to_string(),
            "IA1[0 : e : 1]"
        );
    }

    #[test]
    fn same_via_set_shares_group() {
        // Two reduction arrays through the same vias → one group, one
        // LightInspector (the significance of Definition 1).
        let info = analyze(
            "double FX[n]; double FY[n]; int A[e]; int B[e];
             forall (i = 0; i < e; i++) {
                 FX[A[i]] += 1.0; FX[B[i]] -= 1.0;
                 FY[A[i]] += 2.0; FY[B[i]] -= 2.0;
             }",
        );
        let LoopClass::IrregularReduction { groups } = &info[0].class else {
            panic!()
        };
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].arrays, vec!["FX", "FY"]);
    }

    #[test]
    fn different_via_sets_split_groups() {
        let info = analyze(
            "double P[n]; double Q[n]; int A[e]; int B[e];
             forall (i = 0; i < e; i++) {
                 P[A[i]] += 1.0;
                 Q[B[i]] += 2.0;
             }",
        );
        let LoopClass::IrregularReduction { groups } = &info[0].class else {
            panic!()
        };
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].arrays, vec!["P"]);
        assert_eq!(groups[0].vias, vec!["A"]);
        assert_eq!(groups[1].arrays, vec!["Q"]);
        assert_eq!(groups[1].vias, vec!["B"]);
    }

    #[test]
    fn subset_via_sets_are_distinct_groups() {
        // P uses {A}, Q uses {A, B}: different sets → different groups.
        let info = analyze(
            "double P[n]; double Q[n]; int A[e]; int B[e];
             forall (i = 0; i < e; i++) {
                 P[A[i]] += 1.0;
                 Q[A[i]] += 2.0;
                 Q[B[i]] += 2.0;
             }",
        );
        let LoopClass::IrregularReduction { groups } = &info[0].class else {
            panic!()
        };
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn regular_loop_classified() {
        let info = analyze("double Y[e]; forall (i = 0; i < e; i++) { Y[i] = 1.0; }");
        assert_eq!(info[0].class, LoopClass::Regular);
        assert!(info[0].indirection_sections.is_empty());
    }

    #[test]
    fn reduction_sections_deduplicated() {
        let info = analyze(
            "double X[n]; int A[e];
             forall (i = 0; i < e; i++) { X[A[i]] += 1.0; X[A[i]] += 2.0; }",
        );
        assert_eq!(info[0].reduction_sections.len(), 1);
    }
}
