//! Loop analysis: the first phase of the paper's compiler (§4).
//!
//! Three jobs live here:
//!
//! 1. **Reduction recognition** ([`normalize_program`]): un-annotated
//!    self-accumulating stores through indirection —
//!    `X[A[i]] = X[A[i]] + e` (and the commuted / subtracting forms) —
//!    are rewritten into the canonical [`Stmt::ReduceIndirect`] so the
//!    rest of the pipeline sees one reduction shape.
//! 2. **Section extraction and reference-group formation**
//!    ([`analyze_program`]): for each `forall`, extract the **reduction
//!    array sections** and **indirection array sections** in the paper's
//!    triplet notation, and partition reduction sections into
//!    **reference groups** (Definition 1): sections accessed through the
//!    same *set* of indirection sections, which can share one
//!    LightInspector.
//! 3. **The dependence test**: a statement the recognizer could not
//!    canonicalize, or a reduction whose value expression observes an
//!    array this loop also writes in a way loop fission would reorder,
//!    is a genuine non-reduction loop-carried dependence. It is rejected
//!    with a [`Diagnostic`] pointing at the offending reference instead
//!    of being miscompiled.
//!
//! The dependence rules mirror what fission does (see
//! [`crate::fission`]): all non-reduce statements are hoisted into a
//! sequential *prelude* loop that preserves their original order, and
//! each reference group becomes its own phased loop that runs after the
//! prelude completes. A read is therefore safe iff moving it behind the
//! completed prelude cannot change the value it observes:
//!
//! - a **direct** read `Y[i]` of a direct-written array is safe iff no
//!   write to `Y` occurs at a *later* statement index (direct writes
//!   only ever touch index `i`, so order within the iteration is all
//!   that matters);
//! - an **indirect** read `Y[B[i]]` of a direct-written array is never
//!   safe: it can observe writes from *other* iterations, so the
//!   pre-fission value depends on iteration order (a loop-carried flow
//!   dependence, not a reduction).
//!
//! Reads of *reduction* arrays are rejected earlier by [`crate::sema`].

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::*;
use crate::{Diagnostic, Span};

/// A regular array section in triplet notation `(start, end, stride)` —
/// for `forall (i = 0; i < count; i++)` accesses these are always
/// `[0 : count : 1]`, with `count` symbolic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    pub array: String,
    /// Symbolic end bound (the loop count symbol).
    pub count: String,
}

impl std::fmt::Display for Section {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[0 : {} : 1]", self.array, self.count)
    }
}

/// A reference group: reduction arrays accessed through the same set of
/// indirection sections (Definition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefGroup {
    /// Reduction arrays in this group, in first-appearance order.
    pub arrays: Vec<String>,
    /// The indirection arrays (sorted) through which they are accessed.
    pub vias: Vec<String>,
}

/// Classification of one `forall`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopClass {
    /// No indirect updates: embarrassingly parallel over the index.
    Regular,
    /// At least one irregular reduction; `groups` has one entry per
    /// reference group. When `groups.len() > 1`, loop fission applies.
    IrregularReduction { groups: Vec<RefGroup> },
}

/// Everything the rest of the pipeline needs to know about one loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopInfo {
    pub class: LoopClass,
    /// All indirection sections used by the loop.
    pub indirection_sections: Vec<Section>,
    /// All reduction sections (array, via) pairs.
    pub reduction_sections: Vec<(Section, String)>,
}

/// Rewrite un-annotated self-accumulations into canonical reductions.
///
/// `X[A[i]] = X[A[i]] + e` / `X[A[i]] = e + X[A[i]]` become
/// `X[A[i]] += e`, and `X[A[i]] = X[A[i]] - e` becomes `X[A[i]] -= e`,
/// provided the residual expression `e` does not itself read `X` (a
/// second read would not be a plain accumulation). Statements that do
/// not match are left as [`Stmt::AssignIndirect`] for the dependence
/// test to reject with a precise diagnostic.
pub fn normalize_program(prog: &mut Program) {
    for l in &mut prog.loops {
        for s in &mut l.body {
            let Stmt::AssignIndirect {
                array,
                via,
                value,
                span,
            } = s
            else {
                continue;
            };
            let target = Expr::Indirect {
                array: array.clone(),
                via: via.clone(),
                span: Span::default(),
            };
            let rewritten = match value {
                Expr::Bin(BinOp::Add, lhs, rhs) if lhs.same_shape(&target) => {
                    Some((false, (**rhs).clone()))
                }
                Expr::Bin(BinOp::Add, lhs, rhs) if rhs.same_shape(&target) => {
                    Some((false, (**lhs).clone()))
                }
                Expr::Bin(BinOp::Sub, lhs, rhs) if lhs.same_shape(&target) => {
                    Some((true, (**rhs).clone()))
                }
                _ => None,
            };
            if let Some((negate, residue)) = rewritten {
                let mut reads = Vec::new();
                residue.array_reads(&mut reads);
                if reads.iter().any(|(a, _, _)| a == array) {
                    continue; // a second read of the target: not a plain accumulation
                }
                *s = Stmt::ReduceIndirect {
                    array: array.clone(),
                    via: via.clone(),
                    negate,
                    value: residue,
                    span: *span,
                };
            }
        }
    }
}

/// Analyze every loop of a (sema-checked) program, running the
/// dependence test. The first genuine non-reduction dependence aborts
/// compilation with a spanned diagnostic.
pub fn analyze_program(prog: &Program) -> Result<Vec<LoopInfo>, Diagnostic> {
    prog.loops.iter().map(analyze_loop).collect()
}

fn analyze_loop(l: &Forall) -> Result<LoopInfo, Diagnostic> {
    dependence_test(l)?;

    // array -> set of vias used to update it
    let mut updates: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut ind_sections: BTreeSet<String> = BTreeSet::new();
    let mut red_sections: Vec<(Section, String)> = Vec::new();

    for s in &l.body {
        if let Stmt::ReduceIndirect { array, via, .. } = s {
            if !updates.contains_key(array) {
                order.push(array.clone());
            }
            updates
                .entry(array.clone())
                .or_default()
                .insert(via.clone());
            ind_sections.insert(via.clone());
            let sec = Section {
                array: array.clone(),
                count: l.count.clone(),
            };
            if !red_sections.iter().any(|(rs, v)| rs == &sec && v == via) {
                red_sections.push((sec, via.clone()));
            }
        }
    }

    let class = if updates.is_empty() {
        LoopClass::Regular
    } else {
        // Group arrays by their via-set (Definition 1), preserving
        // first-appearance order of arrays within and across groups.
        let mut groups: Vec<RefGroup> = Vec::new();
        for array in &order {
            let vias: Vec<String> = updates[array].iter().cloned().collect();
            if let Some(g) = groups.iter_mut().find(|g| g.vias == vias) {
                g.arrays.push(array.clone());
            } else {
                groups.push(RefGroup {
                    arrays: vec![array.clone()],
                    vias,
                });
            }
        }
        LoopClass::IrregularReduction { groups }
    };

    Ok(LoopInfo {
        class,
        indirection_sections: ind_sections
            .into_iter()
            .map(|array| Section {
                array,
                count: l.count.clone(),
            })
            .collect(),
        reduction_sections: red_sections,
    })
}

/// Reject non-reduction loop-carried dependences (see module docs for
/// the rules and why they match what fission does).
fn dependence_test(l: &Forall) -> Result<(), Diagnostic> {
    // Last statement index at which each array is direct-written.
    let mut last_write: BTreeMap<&str, usize> = BTreeMap::new();
    for (p, s) in l.body.iter().enumerate() {
        if let Stmt::AssignDirect { array, .. } = s {
            last_write.insert(array.as_str(), p);
        }
    }

    let i = &l.var;
    for (p, s) in l.body.iter().enumerate() {
        match s {
            Stmt::AssignIndirect {
                array, via, span, ..
            } => {
                return Err(Diagnostic::at(
                    *span,
                    format!(
                        "`{array}[{via}[{i}]] = …` is not a recognized reduction: the stored \
                         value does not accumulate onto `{array}[{via}[{i}]]`, so iterations \
                         that collide on `{via}` carry a true dependence; write \
                         `{array}[{via}[{i}]] += …` (or the equivalent `=` form) if a \
                         reduction was intended"
                    ),
                ));
            }
            Stmt::ReduceIndirect { value, .. } => {
                let mut reads = Vec::new();
                value.array_reads(&mut reads);
                for (arr, via, span) in reads {
                    let Some(&w) = last_write.get(arr.as_str()) else {
                        continue;
                    };
                    match via {
                        Some(v) => {
                            return Err(Diagnostic::at(
                                span,
                                format!(
                                    "`{arr}[{v}[{i}]]` reads `{arr}`, which this loop writes at \
                                     line {}: the value observed depends on how many iterations \
                                     have already stored into `{arr}` — a loop-carried flow \
                                     dependence, not a reduction",
                                    l.body[w].span().line
                                ),
                            ));
                        }
                        None if w > p => {
                            return Err(Diagnostic::at(
                                span,
                                format!(
                                    "`{arr}[{i}]` is read before the write to `{arr}` at line \
                                     {}: splitting the reduction off would make the read \
                                     observe the written value — a dependence fission cannot \
                                     preserve",
                                    l.body[w].span().line
                                ),
                            ));
                        }
                        None => {}
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze(src: &str) -> Vec<LoopInfo> {
        let mut prog = parse(src).unwrap();
        normalize_program(&mut prog);
        crate::sema::check(&prog).unwrap();
        analyze_program(&prog).unwrap()
    }

    fn analyze_err(src: &str) -> Diagnostic {
        let mut prog = parse(src).unwrap();
        normalize_program(&mut prog);
        crate::sema::check(&prog).unwrap();
        analyze_program(&prog).unwrap_err()
    }

    #[test]
    fn figure1_single_group() {
        let info = analyze(
            "double X[n]; double Y[e]; int IA1[e]; int IA2[e];
             forall (i = 0; i < e; i++) {
                 double f = Y[i] * 0.5;
                 X[IA1[i]] += f;
                 X[IA2[i]] -= f;
             }",
        );
        let LoopClass::IrregularReduction { groups } = &info[0].class else {
            panic!("expected irregular reduction");
        };
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].arrays, vec!["X"]);
        assert_eq!(groups[0].vias, vec!["IA1", "IA2"]);
        assert_eq!(info[0].indirection_sections.len(), 2);
        assert_eq!(
            info[0].indirection_sections[0].to_string(),
            "IA1[0 : e : 1]"
        );
    }

    #[test]
    fn same_via_set_shares_group() {
        // Two reduction arrays through the same vias → one group, one
        // LightInspector (the significance of Definition 1).
        let info = analyze(
            "double FX[n]; double FY[n]; int A[e]; int B[e];
             forall (i = 0; i < e; i++) {
                 FX[A[i]] += 1.0; FX[B[i]] -= 1.0;
                 FY[A[i]] += 2.0; FY[B[i]] -= 2.0;
             }",
        );
        let LoopClass::IrregularReduction { groups } = &info[0].class else {
            panic!()
        };
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].arrays, vec!["FX", "FY"]);
    }

    #[test]
    fn different_via_sets_split_groups() {
        let info = analyze(
            "double P[n]; double Q[n]; int A[e]; int B[e];
             forall (i = 0; i < e; i++) {
                 P[A[i]] += 1.0;
                 Q[B[i]] += 2.0;
             }",
        );
        let LoopClass::IrregularReduction { groups } = &info[0].class else {
            panic!()
        };
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].arrays, vec!["P"]);
        assert_eq!(groups[0].vias, vec!["A"]);
        assert_eq!(groups[1].arrays, vec!["Q"]);
        assert_eq!(groups[1].vias, vec!["B"]);
    }

    #[test]
    fn subset_via_sets_are_distinct_groups() {
        // P uses {A}, Q uses {A, B}: different sets → different groups.
        let info = analyze(
            "double P[n]; double Q[n]; int A[e]; int B[e];
             forall (i = 0; i < e; i++) {
                 P[A[i]] += 1.0;
                 Q[A[i]] += 2.0;
                 Q[B[i]] += 2.0;
             }",
        );
        let LoopClass::IrregularReduction { groups } = &info[0].class else {
            panic!()
        };
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn regular_loop_classified() {
        let info = analyze("double Y[e]; forall (i = 0; i < e; i++) { Y[i] = 1.0; }");
        assert_eq!(info[0].class, LoopClass::Regular);
        assert!(info[0].indirection_sections.is_empty());
    }

    #[test]
    fn reduction_sections_deduplicated() {
        let info = analyze(
            "double X[n]; int A[e];
             forall (i = 0; i < e; i++) { X[A[i]] += 1.0; X[A[i]] += 2.0; }",
        );
        assert_eq!(info[0].reduction_sections.len(), 1);
    }

    // --- reduction recognition -------------------------------------

    #[test]
    fn unannotated_accumulation_recognized() {
        let info = analyze(
            "double X[n]; double W[e]; int A[e];
             forall (i = 0; i < e; i++) { X[A[i]] = X[A[i]] + W[i]; }",
        );
        let LoopClass::IrregularReduction { groups } = &info[0].class else {
            panic!("`X[A[i]] = X[A[i]] + W[i]` should normalize to a reduction");
        };
        assert_eq!(groups[0].arrays, vec!["X"]);
    }

    #[test]
    fn commuted_and_subtracting_forms_recognized() {
        let mut prog = parse(
            "double X[n]; double W[e]; int A[e];
             forall (i = 0; i < e; i++) {
                 X[A[i]] = W[i] + X[A[i]];
                 X[A[i]] = X[A[i]] - W[i];
             }",
        )
        .unwrap();
        normalize_program(&mut prog);
        assert!(matches!(
            &prog.loops[0].body[0],
            Stmt::ReduceIndirect { negate: false, .. }
        ));
        assert!(matches!(
            &prog.loops[0].body[1],
            Stmt::ReduceIndirect { negate: true, .. }
        ));
    }

    #[test]
    fn subtraction_from_the_left_is_not_a_reduction() {
        // X[A[i]] = W[i] - X[A[i]] negates the accumulator — not an
        // accumulation; must be left alone and then rejected.
        let err = analyze_err(
            "double X[n]; double W[e]; int A[e];
             forall (i = 0; i < e; i++) { X[A[i]] = W[i] - X[A[i]]; }",
        );
        assert!(err.message.contains("not a recognized reduction"), "{err}");
    }

    #[test]
    fn double_read_of_target_is_not_a_reduction() {
        let err = analyze_err(
            "double X[n]; int A[e]; int B[e];
             forall (i = 0; i < e; i++) { X[A[i]] = X[A[i]] + X[B[i]]; }",
        );
        assert!(err.message.contains("not a recognized reduction"), "{err}");
    }

    // --- dependence test -------------------------------------------

    #[test]
    fn plain_overwrite_rejected_with_span() {
        let err = analyze_err(
            "double X[n]; int A[e];\nforall (i = 0; i < e; i++) {\n  X[A[i]] = 1.0;\n}",
        );
        assert_eq!(err.span.line, 3);
        assert!(err.span.col > 0, "diagnostic should carry a column");
        assert!(err.message.contains("not a recognized reduction"), "{err}");
    }

    #[test]
    fn indirect_read_of_written_array_rejected() {
        // Y is written directly and read through indirection by the
        // reduction: a cross-iteration flow dependence.
        let err = analyze_err(
            "double X[n]; double Y[e]; int A[e]; int B[e];
             forall (i = 0; i < e; i++) {
                 Y[i] = 2.0;
                 X[A[i]] += Y[B[i]];
             }",
        );
        assert!(err.message.contains("loop-carried"), "{err}");
    }

    #[test]
    fn direct_read_before_later_write_rejected() {
        let err = analyze_err(
            "double X[n]; double Y[e]; int A[e];
             forall (i = 0; i < e; i++) {
                 X[A[i]] += Y[i];
                 Y[i] = 2.0;
             }",
        );
        assert!(err.message.contains("read before the write"), "{err}");
    }

    #[test]
    fn direct_read_after_last_write_allowed() {
        let info = analyze(
            "double X[n]; double Y[e]; int A[e];
             forall (i = 0; i < e; i++) {
                 Y[i] = 2.0;
                 X[A[i]] += Y[i];
             }",
        );
        assert!(matches!(
            info[0].class,
            LoopClass::IrregularReduction { .. }
        ));
    }
}
