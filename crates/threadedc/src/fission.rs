//! Loop fission by reference group (§4).
//!
//! "If all reduction array sections updated in a given irregular
//! reduction loop do not belong to the same reference group, we apply
//! loop fission to break the original loop into a sequence of loops such
//! that each of them only updates array sections belonging to the same
//! reference group. … Some of the scalar values computed in the original
//! loop may now be required in multiple loops, so temporary arrays may
//! need to be introduced."
//!
//! Implementation: all non-reduction statements (locals and direct
//! assignments, in their original order) are hoisted into a leading
//! *prelude* loop that runs sequentially, followed by one phased loop
//! per reference group. Because the prelude preserves statement order,
//! every value it computes is exactly what the unfissioned loop would
//! have computed at that point. Scalars needed by more than one
//! fissioned loop — or whose initializer observes an array the prelude
//! writes, so re-evaluating them after the prelude would see different
//! values — are materialized into compiler-introduced temporary arrays
//! (`__tmp_<name>`) filled at the end of the prelude body. Scalars used
//! by a single group and untouched by prelude writes sink into that
//! group's loop.
//!
//! A *single*-group loop that also carries direct assignments is split
//! the same way (prelude + one group loop): direct stores cannot live
//! inside a phased reduction loop.

use std::collections::{HashMap, HashSet};

use crate::analysis::RefGroup;
use crate::ast::*;
use crate::Span;

/// Result of fissioning one loop.
#[derive(Debug, Clone, PartialEq)]
pub struct FissionResult {
    /// Compiler-introduced temporary arrays (name, per-iteration).
    pub temps: Vec<ArrayDecl>,
    /// The loops, in execution order: an optional prelude (locals that
    /// feed several groups + direct assignments), then one loop per
    /// reference group.
    pub loops: Vec<Forall>,
}

/// Which groups (by index) each local scalar feeds, transitively.
fn local_consumers(body: &[Stmt], groups: &[RefGroup]) -> HashMap<String, HashSet<usize>> {
    // local -> locals it depends on
    let mut deps: HashMap<String, Vec<String>> = HashMap::new();
    for s in body {
        if let Stmt::Local { name, init, .. } = s {
            let mut vars = Vec::new();
            init.var_reads(&mut vars);
            deps.insert(name.clone(), vars);
        }
    }
    let group_of_array = |array: &str| -> Option<usize> {
        groups
            .iter()
            .position(|g| g.arrays.iter().any(|a| a == array))
    };

    let mut consumers: HashMap<String, HashSet<usize>> = HashMap::new();
    for s in body {
        if let Stmt::ReduceIndirect { array, value, .. } = s {
            let Some(gi) = group_of_array(array) else {
                continue;
            };
            let mut vars = Vec::new();
            value.var_reads(&mut vars);
            // Transitive closure over local→local dependencies.
            let mut stack = vars;
            let mut seen = HashSet::new();
            while let Some(v) = stack.pop() {
                if !seen.insert(v.clone()) {
                    continue;
                }
                if let Some(d) = deps.get(&v) {
                    consumers.entry(v).or_default().insert(gi);
                    stack.extend(d.iter().cloned());
                }
            }
        }
    }
    consumers
}

/// Substitute reads of `name` with reads of the temp array in an
/// expression.
fn substitute(e: &Expr, renames: &HashMap<String, String>) -> Expr {
    match e {
        Expr::Var(v) => match renames.get(v) {
            Some(t) => Expr::Direct {
                array: t.clone(),
                span: Span::default(),
            },
            None => e.clone(),
        },
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(substitute(a, renames)),
            Box::new(substitute(b, renames)),
        ),
        Expr::Neg(a) => Expr::Neg(Box::new(substitute(a, renames))),
        _ => e.clone(),
    }
}

/// Does `e` read (directly or through indirection) any array in `set`?
fn reads_any(e: &Expr, set: &HashSet<String>) -> bool {
    let mut reads = Vec::new();
    e.array_reads(&mut reads);
    reads.iter().any(|(a, _, _)| set.contains(a))
}

/// Fission `l` into per-group loops. `groups` must come from
/// [`crate::analysis`] on the same loop.
pub fn fission_loop(l: &Forall, groups: &[RefGroup]) -> FissionResult {
    let has_nonreduce_writes = l
        .body
        .iter()
        .any(|s| matches!(s, Stmt::AssignDirect { .. } | Stmt::AssignIndirect { .. }));
    if groups.len() <= 1 && !has_nonreduce_writes {
        return FissionResult {
            temps: Vec::new(),
            loops: vec![l.clone()],
        };
    }

    let consumers = local_consumers(&l.body, groups);
    // Locals needed by >1 group, read by a direct assignment (direct
    // assignments live in the prelude), or whose initializer observes an
    // array the prelude writes (sinking them behind the completed
    // prelude would change the value observed) are materialized.
    let mut direct_reads: HashSet<String> = HashSet::new();
    let mut direct_written: HashSet<String> = HashSet::new();
    for s in &l.body {
        if let Stmt::AssignDirect { array, value, .. } = s {
            let mut vars = Vec::new();
            value.var_reads(&mut vars);
            direct_reads.extend(vars);
            direct_written.insert(array.clone());
        }
    }

    let mut shared: Vec<String> = Vec::new();
    for s in &l.body {
        if let Stmt::Local { name, init, .. } = s {
            let ngroups = consumers.get(name).map_or(0, |s| s.len());
            let pinned = direct_reads.contains(name) || reads_any(init, &direct_written);
            if ngroups > 1 || (ngroups >= 1 && pinned) {
                shared.push(name.clone());
            }
        }
    }

    let renames: HashMap<String, String> = shared
        .iter()
        .map(|n| (n.clone(), format!("__tmp_{n}")))
        .collect();
    let temps: Vec<ArrayDecl> = shared
        .iter()
        .map(|n| ArrayDecl {
            name: renames[n].clone(),
            ty: ElemType::Double,
            size: l.count.clone(),
            span: l.span,
        })
        .collect();

    // Prelude: locals (all of them, in order — cheap and keeps
    // dependencies simple), direct assignments at their original
    // positions, and temp stores at the end.
    let mut prelude: Vec<Stmt> = Vec::new();
    for s in &l.body {
        match s {
            Stmt::Local { .. } | Stmt::AssignDirect { .. } | Stmt::AssignIndirect { .. } => {
                prelude.push(s.clone())
            }
            Stmt::ReduceIndirect { .. } => {}
        }
    }
    for n in &shared {
        prelude.push(Stmt::AssignDirect {
            array: renames[n].clone(),
            accumulate: false,
            value: Expr::Var(n.clone()),
            span: l.span,
        });
    }

    let mut loops = Vec::new();
    let needs_prelude = !shared.is_empty() || has_nonreduce_writes;
    if needs_prelude {
        loops.push(Forall {
            var: l.var.clone(),
            count: l.count.clone(),
            body: prelude,
            span: l.span,
        });
    }

    for (gi, g) in groups.iter().enumerate() {
        let mut body: Vec<Stmt> = Vec::new();
        // Locals exclusively consumed by this group sink here (shared
        // ones are read back from their temps).
        for s in &l.body {
            match s {
                Stmt::Local { name, init, span } => {
                    let cons = consumers.get(name);
                    let only_here = cons.is_some_and(|c| c.len() == 1 && c.contains(&gi));
                    if only_here && !renames.contains_key(name) {
                        body.push(Stmt::Local {
                            name: name.clone(),
                            init: substitute(init, &renames),
                            span: *span,
                        });
                    }
                }
                Stmt::ReduceIndirect {
                    array,
                    via,
                    negate,
                    value,
                    span,
                } => {
                    if g.arrays.iter().any(|a| a == array) {
                        body.push(Stmt::ReduceIndirect {
                            array: array.clone(),
                            via: via.clone(),
                            negate: *negate,
                            value: substitute(value, &renames),
                            span: *span,
                        });
                    }
                }
                Stmt::AssignDirect { .. } | Stmt::AssignIndirect { .. } => {}
            }
        }
        loops.push(Forall {
            var: l.var.clone(),
            count: l.count.clone(),
            body,
            span: l.span,
        });
    }

    FissionResult { temps, loops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze_program, LoopClass};
    use crate::parser::parse;

    fn fission(src: &str) -> FissionResult {
        let prog = parse(src).unwrap();
        crate::sema::check(&prog).unwrap();
        let info = analyze_program(&prog).unwrap();
        let LoopClass::IrregularReduction { groups } = &info[0].class else {
            panic!("not irregular");
        };
        fission_loop(&prog.loops[0], groups)
    }

    #[test]
    fn single_group_untouched() {
        let r = fission(
            "double X[n]; int A[e]; int B[e];
             forall (i = 0; i < e; i++) { X[A[i]] += 1.0; X[B[i]] += 1.0; }",
        );
        assert!(r.temps.is_empty());
        assert_eq!(r.loops.len(), 1);
    }

    #[test]
    fn single_group_with_direct_assign_splits_off_prelude() {
        // Direct stores cannot live in a phased reduction loop even
        // when there is nothing to fission by group.
        let r = fission(
            "double X[n]; double Y[e]; int A[e];
             forall (i = 0; i < e; i++) { Y[i] = 2.0; X[A[i]] += 1.0; }",
        );
        assert_eq!(r.loops.len(), 2);
        assert!(matches!(&r.loops[0].body[0], Stmt::AssignDirect { .. }));
        assert!(matches!(&r.loops[1].body[0], Stmt::ReduceIndirect { .. }));
    }

    #[test]
    fn two_groups_split_without_shared_locals() {
        let r = fission(
            "double P[n]; double Q[n]; int A[e]; int B[e];
             forall (i = 0; i < e; i++) { P[A[i]] += 1.0; Q[B[i]] += 2.0; }",
        );
        assert!(r.temps.is_empty());
        assert_eq!(r.loops.len(), 2);
        assert_eq!(r.loops[0].body.len(), 1);
        assert_eq!(r.loops[1].body.len(), 1);
    }

    #[test]
    fn shared_local_becomes_temp_array() {
        let r = fission(
            "double P[n]; double Q[n]; double W[e]; int A[e]; int B[e];
             forall (i = 0; i < e; i++) {
                 double f = W[i] * 2.0;
                 P[A[i]] += f;
                 Q[B[i]] += f;
             }",
        );
        assert_eq!(r.temps.len(), 1);
        assert_eq!(r.temps[0].name, "__tmp_f");
        // prelude + 2 group loops
        assert_eq!(r.loops.len(), 3);
        // Group loops read the temp, not the local.
        for l in &r.loops[1..] {
            let Stmt::ReduceIndirect { value, .. } = &l.body[0] else {
                panic!()
            };
            assert_eq!(
                value,
                &Expr::Direct {
                    array: "__tmp_f".into(),
                    span: Span::default(),
                }
            );
        }
    }

    #[test]
    fn exclusive_local_sinks_into_its_group() {
        let r = fission(
            "double P[n]; double Q[n]; double W[e]; int A[e]; int B[e];
             forall (i = 0; i < e; i++) {
                 double f = W[i] * 2.0;
                 double g = W[i] + 1.0;
                 P[A[i]] += f;
                 Q[B[i]] += g;
             }",
        );
        assert!(r.temps.is_empty());
        assert_eq!(r.loops.len(), 2);
        // Each loop carries exactly its own local + reduce.
        assert_eq!(r.loops[0].body.len(), 2);
        assert!(matches!(&r.loops[0].body[0], Stmt::Local { name, .. } if name == "f"));
        assert!(matches!(&r.loops[1].body[0], Stmt::Local { name, .. } if name == "g"));
    }

    #[test]
    fn local_observing_prelude_write_is_forced_to_temp() {
        // f reads Y which the prelude writes; sinking f into the group
        // loop would make it observe the *written* Y, so it must be
        // materialized at its original position instead.
        let r = fission(
            "double X[n]; double Y[e]; int A[e];
             forall (i = 0; i < e; i++) {
                 double f = Y[i] * 2.0;
                 Y[i] = 7.0;
                 X[A[i]] += f;
             }",
        );
        assert_eq!(r.temps.len(), 1);
        assert_eq!(r.temps[0].name, "__tmp_f");
        assert_eq!(r.loops.len(), 2);
        // The group loop reads the temp.
        let Stmt::ReduceIndirect { value, .. } = &r.loops[1].body[0] else {
            panic!()
        };
        assert!(matches!(value, Expr::Direct { array, .. } if array == "__tmp_f"));
    }

    #[test]
    fn transitive_local_dependencies_followed() {
        let r = fission(
            "double P[n]; double Q[n]; double W[e]; int A[e]; int B[e];
             forall (i = 0; i < e; i++) {
                 double f = W[i] * 2.0;
                 double g = f + 1.0;
                 P[A[i]] += g;
                 Q[B[i]] += f;
             }",
        );
        // f feeds both groups (directly and via g) → temp; g only feeds P.
        assert_eq!(r.temps.len(), 1);
        assert_eq!(r.temps[0].name, "__tmp_f");
    }
}
