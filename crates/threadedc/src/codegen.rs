//! Code generation: lower analyzed, fissioned loops onto the phased
//! execution strategy.
//!
//! "After loop fission, each loop can be easily processed to generate
//! code for the execution strategy presented in Section 2. The
//! indirection array sections are used to form the parameters to the
//! LIGHTINSPECTOR. The reduction array sections are used to establish
//! the communication." (§4)
//!
//! Concretely, each irregular loop becomes a [`CompiledLoop`]: the
//! indirection arrays (LightInspector parameters), the reduction arrays
//! (the rotating group), and an [`InterpKernel`] — an interpreted
//! [`irred::EdgeKernel`] evaluating the loop body — which
//! [`CompiledProgram::execute_with`] runs through any
//! [`irred::ReductionEngine`] (the phased engine being the strategy the
//! paper's compiler targets; [`CompiledProgram::execute_sim`] is that
//! default). Codegen itself is engine-agnostic: it emits a
//! [`irred::PhasedSpec`] per irregular loop and lets the engine prepare
//! and execute it. Regular loops (including fission preludes) run
//! sequentially between phased loops.

use std::collections::HashMap;
use std::sync::Arc;

use earth_model::sim::SimConfig;
use irred::{
    EdgeKernel, PhasedEngine, PhasedSpec, ReductionEngine, RunOutcome, StrategyConfig, Workspace,
};

use crate::analysis::{analyze_program, LoopClass};
use crate::ast::*;
use crate::fission::fission_loop;
use crate::interp::{interpret_loop, Bindings};
use crate::parser::parse;
use crate::sema::check;
use crate::Diagnostic;

/// A compiled (resolved-reference) expression, evaluable without name
/// lookups.
#[derive(Debug, Clone)]
enum CExpr {
    Number(f64),
    LoopVar,
    Local(usize),
    /// Direct read: f64 array slot, indexed by the iteration.
    Direct(usize),
    /// Indirect read: f64 array slot through int array slot.
    Indirect(usize, usize),
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
    Neg(Box<CExpr>),
}

impl CExpr {
    fn eval(
        &self,
        i: usize,
        locals: &[f64],
        f64s: &[Arc<Vec<f64>>],
        ints: &[Arc<Vec<u32>>],
    ) -> f64 {
        match self {
            CExpr::Number(v) => *v,
            CExpr::LoopVar => i as f64,
            CExpr::Local(s) => locals[*s],
            CExpr::Direct(a) => f64s[*a][i],
            CExpr::Indirect(a, v) => f64s[*a][ints[*v][i] as usize],
            CExpr::Bin(op, x, y) => {
                let (x, y) = (x.eval(i, locals, f64s, ints), y.eval(i, locals, f64s, ints));
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                }
            }
            CExpr::Neg(x) => -x.eval(i, locals, f64s, ints),
        }
    }
}

/// The interpreted kernel generated for one irregular loop: implements
/// [`irred::EdgeKernel`] by evaluating the loop body.
pub struct InterpKernel {
    locals: Vec<CExpr>,
    /// `(ref index, array index, negate, value)` per reduction statement.
    updates: Vec<(usize, usize, bool, CExpr)>,
    f64s: Vec<Arc<Vec<f64>>>,
    ints: Vec<Arc<Vec<u32>>>,
    num_refs: usize,
    num_arrays: usize,
    flops: u64,
    edge_reads: usize,
    node_reads: usize,
}

impl EdgeKernel for InterpKernel {
    fn num_refs(&self) -> usize {
        self.num_refs
    }

    fn num_arrays(&self) -> usize {
        self.num_arrays
    }

    fn contrib(&self, _read: &[f64], iter: usize, _elems: &[u32], out: &mut [f64]) {
        let mut locals = [0.0f64; 16];
        for (s, init) in self.locals.iter().enumerate() {
            locals[s] = init.eval(iter, &locals, &self.f64s, &self.ints);
        }
        for (r, a, negate, value) in &self.updates {
            let v = value.eval(iter, &locals, &self.f64s, &self.ints);
            let slot = r * self.num_arrays + a;
            out[slot] += if *negate { -v } else { v };
        }
    }

    fn flops_per_iter(&self) -> u64 {
        self.flops
    }

    fn edge_reads_per_iter(&self) -> usize {
        self.edge_reads
    }

    fn node_reads_per_elem(&self) -> usize {
        self.node_reads
    }
}

/// One irregular loop lowered to the phased strategy.
pub struct CompiledLoop {
    /// Index into [`CompiledProgram::program`]'s loop list.
    pub loop_index: usize,
    /// The reduction arrays of the (single) reference group.
    pub reduction_arrays: Vec<String>,
    /// The LightInspector parameters: the indirection arrays, sorted.
    pub vias: Vec<String>,
    /// Size symbol of the reduction arrays.
    pub elem_size: String,
    /// Iteration-count symbol.
    pub count: String,
}

/// What to do with each loop, in program order.
pub enum LoopPlan {
    /// Run sequentially on the control processor (regular loops and
    /// fission preludes).
    Regular(usize),
    /// Run under the phased strategy.
    Phased(CompiledLoop),
}

/// The compiler's output: the transformed program plus an execution plan.
pub struct CompiledProgram {
    /// Post-fission program (declarations include introduced temps).
    pub program: Program,
    pub plan: Vec<LoopPlan>,
    /// Human-readable compilation log (sections, groups, fission).
    pub log: Vec<String>,
}

/// Compile source text end to end (parse → sema → analysis → fission →
/// plan).
pub fn compile(src: &str) -> Result<CompiledProgram, Diagnostic> {
    let prog = parse(src)?;
    check(&prog)?;
    let infos = analyze_program(&prog);

    let mut out = Program {
        decls: prog.decls.clone(),
        loops: Vec::new(),
    };
    let mut plan = Vec::new();
    let mut log = Vec::new();

    for (l, info) in prog.loops.iter().zip(&infos) {
        for sec in &info.indirection_sections {
            log.push(format!("loop@{}: indirection section {sec}", l.line));
        }
        for (sec, via) in &info.reduction_sections {
            log.push(format!(
                "loop@{}: reduction section {sec} via {via}",
                l.line
            ));
        }
        match &info.class {
            LoopClass::Regular => {
                log.push(format!("loop@{}: regular (no inspector needed)", l.line));
                let idx = out.loops.len();
                out.loops.push(l.clone());
                plan.push(LoopPlan::Regular(idx));
            }
            LoopClass::IrregularReduction { groups } => {
                log.push(format!(
                    "loop@{}: irregular reduction, {} reference group(s)",
                    l.line,
                    groups.len()
                ));
                let f = fission_loop(l, groups);
                if groups.len() > 1 {
                    log.push(format!(
                        "loop@{}: fissioned into {} loops, {} temp array(s)",
                        l.line,
                        f.loops.len(),
                        f.temps.len()
                    ));
                }
                out.decls.extend(f.temps.clone());
                let n_groups = groups.len();
                let n_loops = f.loops.len();
                for (j, fl) in f.loops.into_iter().enumerate() {
                    let idx = out.loops.len();
                    out.loops.push(fl);
                    let is_prelude = n_loops > n_groups && j == 0;
                    if is_prelude {
                        plan.push(LoopPlan::Regular(idx));
                        continue;
                    }
                    let g = &groups[j - (n_loops - n_groups)];
                    let elem_size = out
                        .decls
                        .iter()
                        .find(|d| d.name == g.arrays[0])
                        .expect("sema checked")
                        .size
                        .clone();
                    log.push(format!(
                        "loop@{}: LIGHTINSPECTOR({}) over {}; rotating group {{{}}}",
                        l.line,
                        g.vias.join(", "),
                        l.count,
                        g.arrays.join(", ")
                    ));
                    plan.push(LoopPlan::Phased(CompiledLoop {
                        loop_index: idx,
                        reduction_arrays: g.arrays.clone(),
                        vias: g.vias.clone(),
                        elem_size,
                        count: l.count.clone(),
                    }));
                }
            }
        }
    }
    Ok(CompiledProgram {
        program: out,
        plan,
        log,
    })
}

/// Result of executing a compiled program on the simulated machine.
#[derive(Debug)]
pub struct ExecReport {
    /// Total simulated cycles across the phased loops.
    pub time_cycles: u64,
    /// Phased loops executed.
    pub phased_loops: usize,
    /// Regular loops executed (sequentially).
    pub regular_loops: usize,
}

impl CompiledProgram {
    /// Build the [`InterpKernel`] and [`PhasedSpec`] for one compiled loop
    /// against concrete bindings.
    fn lower_kernel(
        &self,
        cl: &CompiledLoop,
        b: &Bindings,
    ) -> Result<PhasedSpec<InterpKernel>, Diagnostic> {
        let l = &self.program.loops[cl.loop_index];
        let mut f64_slots: Vec<(String, Arc<Vec<f64>>)> = Vec::new();
        let mut int_slots: Vec<(String, Arc<Vec<u32>>)> = Vec::new();
        let mut local_slots: HashMap<String, usize> = HashMap::new();

        let f64_slot = |name: &str,
                        f64_slots: &mut Vec<(String, Arc<Vec<f64>>)>|
         -> Result<usize, Diagnostic> {
            if let Some(p) = f64_slots.iter().position(|(n, _)| n == name) {
                return Ok(p);
            }
            let data = b.f64s.get(name).cloned().ok_or_else(|| Diagnostic {
                line: l.line,
                message: format!("array `{name}` not bound"),
            })?;
            f64_slots.push((name.to_string(), Arc::new(data)));
            Ok(f64_slots.len() - 1)
        };
        let int_slot = |name: &str,
                        int_slots: &mut Vec<(String, Arc<Vec<u32>>)>|
         -> Result<usize, Diagnostic> {
            if let Some(p) = int_slots.iter().position(|(n, _)| n == name) {
                return Ok(p);
            }
            let data = b.ints.get(name).cloned().ok_or_else(|| Diagnostic {
                line: l.line,
                message: format!("indirection array `{name}` not bound"),
            })?;
            int_slots.push((name.to_string(), Arc::new(data)));
            Ok(int_slots.len() - 1)
        };

        let mut edge_reads = 0usize;
        let mut node_reads = 0usize;
        fn lower(
            e: &Expr,
            locals: &HashMap<String, usize>,
            f64_slot: &mut dyn FnMut(&str) -> Result<usize, Diagnostic>,
            int_slot: &mut dyn FnMut(&str) -> Result<usize, Diagnostic>,
            edge_reads: &mut usize,
            node_reads: &mut usize,
        ) -> Result<CExpr, Diagnostic> {
            Ok(match e {
                Expr::Number(v) => CExpr::Number(*v),
                Expr::Var(v) => match locals.get(v) {
                    Some(s) => CExpr::Local(*s),
                    None => CExpr::LoopVar,
                },
                Expr::Direct { array } => {
                    *edge_reads += 1;
                    CExpr::Direct(f64_slot(array)?)
                }
                Expr::Indirect { array, via } => {
                    *node_reads += 1;
                    CExpr::Indirect(f64_slot(array)?, int_slot(via)?)
                }
                Expr::Bin(op, a, c) => CExpr::Bin(
                    *op,
                    Box::new(lower(
                        a, locals, f64_slot, int_slot, edge_reads, node_reads,
                    )?),
                    Box::new(lower(
                        c, locals, f64_slot, int_slot, edge_reads, node_reads,
                    )?),
                ),
                Expr::Neg(a) => CExpr::Neg(Box::new(lower(
                    a, locals, f64_slot, int_slot, edge_reads, node_reads,
                )?)),
            })
        }

        let mut locals = Vec::new();
        let mut updates = Vec::new();
        let mut flops = 0u64;
        for s in &l.body {
            match s {
                Stmt::Local { name, init, .. } => {
                    assert!(locals.len() < 16, "more than 16 loop locals unsupported");
                    let ce = lower(
                        init,
                        &local_slots,
                        &mut |n| f64_slot(n, &mut f64_slots),
                        &mut |n| int_slot(n, &mut int_slots),
                        &mut edge_reads,
                        &mut node_reads,
                    )?;
                    flops += init.flops();
                    local_slots.insert(name.clone(), locals.len());
                    locals.push(ce);
                }
                Stmt::ReduceIndirect {
                    array,
                    via,
                    negate,
                    value,
                    ..
                } => {
                    let r = cl.vias.iter().position(|v| v == via).expect("analysis");
                    let a = cl
                        .reduction_arrays
                        .iter()
                        .position(|x| x == array)
                        .expect("analysis");
                    let ce = lower(
                        value,
                        &local_slots,
                        &mut |n| f64_slot(n, &mut f64_slots),
                        &mut |n| int_slot(n, &mut int_slots),
                        &mut edge_reads,
                        &mut node_reads,
                    )?;
                    flops += value.flops() + 1;
                    updates.push((r, a, *negate, ce));
                }
                Stmt::AssignDirect { .. } => return Err(Diagnostic {
                    line: l.line,
                    message:
                        "direct assignment inside a phased loop (fission should have removed it)"
                            .into(),
                }),
            }
        }

        // The indirection arrays of the group, in via order.
        let e = b.size_of(&cl.count)?;
        let mut indirection = Vec::with_capacity(cl.vias.len());
        for via in &cl.vias {
            let data = b.ints.get(via).cloned().ok_or_else(|| Diagnostic {
                line: l.line,
                message: format!("indirection array `{via}` not bound"),
            })?;
            if data.len() != e {
                return Err(Diagnostic {
                    line: l.line,
                    message: format!("indirection array `{via}` has wrong length"),
                });
            }
            indirection.push(data);
        }

        let kernel = InterpKernel {
            locals,
            updates,
            f64s: f64_slots.into_iter().map(|(_, d)| d).collect(),
            ints: int_slots.into_iter().map(|(_, d)| d).collect(),
            num_refs: cl.vias.len(),
            num_arrays: cl.reduction_arrays.len(),
            flops,
            edge_reads,
            node_reads,
        };
        Ok(PhasedSpec {
            kernel: Arc::new(kernel),
            num_elements: b.size_of(&cl.elem_size)?,
            indirection: Arc::new(indirection),
        })
    }

    /// Execute the compiled program through an arbitrary
    /// [`ReductionEngine`]: regular loops run sequentially on the control
    /// processor, irregular loops are lowered to [`PhasedSpec`]s and
    /// handed to `engine`. One [`Workspace`] is shared across the
    /// program's loops, so an engine that pools buffers reuses them
    /// between loops. Mutates the bindings like the interpreter would;
    /// returns the engine-reported time of the irregular portions.
    pub fn execute_with<E>(
        &self,
        b: &mut Bindings,
        engine: &E,
        strat: &StrategyConfig,
    ) -> Result<ExecReport, Diagnostic>
    where
        E: ReductionEngine<PhasedSpec<InterpKernel>>,
    {
        b.materialize(&self.program)?;
        let mut ws = Workspace::new();
        let mut time = 0u64;
        let mut phased = 0usize;
        let mut regular = 0usize;
        for p in &self.plan {
            match p {
                LoopPlan::Regular(idx) => {
                    interpret_loop(&self.program.loops[*idx], b)?;
                    regular += 1;
                }
                LoopPlan::Phased(cl) => {
                    let line = self.program.loops[cl.loop_index].line;
                    let spec = self.lower_kernel(cl, b)?;
                    let to_diag = |e: irred::EngineError| Diagnostic {
                        line,
                        message: format!("engine `{}` failed: {e}", engine.name()),
                    };
                    let mut prepared = engine.prepare(&spec, strat).map_err(to_diag)?;
                    let out: RunOutcome =
                        engine.execute(&mut prepared, &mut ws).map_err(to_diag)?;
                    // DSL semantics: X accumulates onto its prior contents;
                    // the engine computes the pure sum.
                    for (a, name) in cl.reduction_arrays.iter().enumerate() {
                        let x = b.f64s.get_mut(name).expect("materialized");
                        for (xi, ri) in x.iter_mut().zip(&out.values[a]) {
                            *xi += ri;
                        }
                    }
                    time += out.time_cycles;
                    phased += 1;
                }
            }
        }
        Ok(ExecReport {
            time_cycles: time,
            phased_loops: phased,
            regular_loops: regular,
        })
    }

    /// Execute on the paper's target: the phased engine over the
    /// simulated EARTH machine. Equivalent to
    /// [`execute_with`](Self::execute_with) with
    /// [`PhasedEngine::sim`]`(cfg)`.
    pub fn execute_sim(
        &self,
        b: &mut Bindings,
        strat: &StrategyConfig,
        cfg: SimConfig,
    ) -> Result<ExecReport, Diagnostic> {
        self.execute_with(b, &PhasedEngine::sim(cfg), strat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interpret;

    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed | 1;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    const FIG1: &str = "
        double X[n]; double Y[e]; int IA1[e]; int IA2[e];
        forall (i = 0; i < e; i++) {
            double f = Y[i] * 0.5;
            X[IA1[i]] += f;
            X[IA2[i]] -= f;
        }";

    fn fig1_bindings(n: usize, e: usize, seed: u64) -> Bindings {
        let mut next = rng(seed);
        let mut b = Bindings::default();
        b.sizes.insert("n".into(), n);
        b.sizes.insert("e".into(), e);
        b.f64s.insert(
            "Y".into(),
            (0..e).map(|_| (next() % 100) as f64 / 7.0).collect(),
        );
        b.ints.insert(
            "IA1".into(),
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
        );
        b.ints.insert(
            "IA2".into(),
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
        );
        b
    }

    #[test]
    fn compile_produces_plan_and_log() {
        let c = compile(FIG1).unwrap();
        assert_eq!(c.plan.len(), 1);
        assert!(matches!(&c.plan[0], LoopPlan::Phased(cl)
            if cl.vias == ["IA1", "IA2"] && cl.reduction_arrays == ["X"]));
        assert!(
            c.log.iter().any(|l| l.contains("LIGHTINSPECTOR(IA1, IA2)")),
            "{:?}",
            c.log
        );
    }

    #[test]
    fn compiled_execution_matches_interpreter() {
        let c = compile(FIG1).unwrap();
        let mut phased = fig1_bindings(40, 300, 5);
        let strat = StrategyConfig::new(4, 2, irred::Distribution::Cyclic, 1);
        let rep = c
            .execute_sim(&mut phased, &strat, SimConfig::default())
            .unwrap();
        assert_eq!(rep.phased_loops, 1);
        assert!(rep.time_cycles > 0);

        let prog = parse(FIG1).unwrap();
        let mut direct = fig1_bindings(40, 300, 5);
        interpret(&prog, &mut direct).unwrap();
        for (a, b) in phased.f64s["X"].iter().zip(&direct.f64s["X"]) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn codegen_is_engine_agnostic() {
        // The same compiled program runs through any ReductionEngine;
        // the sequential engine must agree with the phased one up to
        // summation order.
        let c = compile(FIG1).unwrap();
        let strat = StrategyConfig::new(4, 2, irred::Distribution::Cyclic, 1);

        let mut via_phased = fig1_bindings(40, 300, 5);
        c.execute_with(
            &mut via_phased,
            &irred::PhasedEngine::sim(SimConfig::default()),
            &strat,
        )
        .unwrap();

        let mut via_seq = fig1_bindings(40, 300, 5);
        c.execute_with(
            &mut via_seq,
            &irred::SeqEngine::new(SimConfig::default()),
            &strat,
        )
        .unwrap();

        for (a, b) in via_phased.f64s["X"].iter().zip(&via_seq.f64s["X"]) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn multi_group_program_fissions_and_matches() {
        let src = "
            double P[n]; double Q[n]; double W[e]; int A[e]; int B[e];
            forall (i = 0; i < e; i++) {
                double f = W[i] * 2.0;
                P[A[i]] += f;
                Q[B[i]] -= f;
            }";
        let c = compile(src).unwrap();
        // prelude (regular) + two phased loops
        assert_eq!(c.plan.len(), 3);
        assert!(matches!(c.plan[0], LoopPlan::Regular(_)));

        let mut next = rng(9);
        let (n, e) = (30usize, 200usize);
        let mk = |next: &mut dyn FnMut() -> u64| {
            let mut b = Bindings::default();
            b.sizes.insert("n".into(), n);
            b.sizes.insert("e".into(), e);
            b.f64s
                .insert("W".into(), (0..e).map(|_| (next() % 50) as f64).collect());
            b.ints.insert(
                "A".into(),
                (0..e).map(|_| (next() % n as u64) as u32).collect(),
            );
            b.ints.insert(
                "B".into(),
                (0..e).map(|_| (next() % n as u64) as u32).collect(),
            );
            b
        };
        let mut phased = mk(&mut next);
        let mut next2 = rng(9);
        let mut direct = mk(&mut next2);

        let strat = StrategyConfig::new(2, 2, irred::Distribution::Block, 1);
        let rep = c
            .execute_sim(&mut phased, &strat, SimConfig::default())
            .unwrap();
        assert_eq!(rep.phased_loops, 2);
        assert_eq!(rep.regular_loops, 1);

        interpret(&parse(src).unwrap(), &mut direct).unwrap();
        for arr in ["P", "Q"] {
            for (a, b) in phased.f64s[arr].iter().zip(&direct.f64s[arr]) {
                assert!((a - b).abs() < 1e-9, "{arr}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn multi_array_group_uses_single_inspector() {
        let src = "
            double FX[n]; double FY[n]; int A[e]; int B[e];
            forall (i = 0; i < e; i++) {
                FX[A[i]] += 1.0; FX[B[i]] -= 1.0;
                FY[A[i]] += 0.5; FY[B[i]] -= 0.5;
            }";
        let c = compile(src).unwrap();
        assert_eq!(c.plan.len(), 1);
        let LoopPlan::Phased(cl) = &c.plan[0] else {
            panic!()
        };
        assert_eq!(cl.reduction_arrays, vec!["FX", "FY"]);
    }

    #[test]
    fn regular_loops_stay_sequential() {
        let c = compile("double Y[e]; forall (i = 0; i < e; i++) { Y[i] = i + 1.0; }").unwrap();
        assert!(matches!(c.plan[0], LoopPlan::Regular(_)));
        let mut b = Bindings::default();
        b.sizes.insert("e".into(), 4);
        let strat = StrategyConfig::new(2, 2, irred::Distribution::Block, 1);
        c.execute_sim(&mut b, &strat, SimConfig::default()).unwrap();
        assert_eq!(b.f64s["Y"], vec![1.0, 2.0, 3.0, 4.0]);
    }
}
