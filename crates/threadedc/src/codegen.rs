//! Code generation: analyze, fission, and plan the execution of a
//! program onto the phased strategy.
//!
//! "After loop fission, each loop can be easily processed to generate
//! code for the execution strategy presented in Section 2. The
//! indirection array sections are used to form the parameters to the
//! LIGHTINSPECTOR. The reduction array sections are used to establish
//! the communication." (§4)
//!
//! [`compile`] runs the whole front half: parse → reduction
//! recognition → sema → reference-group analysis (with the dependence
//! test) → loop fission — and *verifies* each fission against the
//! sequential interpreter on synthetic bindings before accepting it.
//! Each irregular loop becomes a [`CompiledLoop`]; execution lowers it
//! with [`crate::lower`]: an [`InterpKernel`] plus per-processor CSR
//! flat plans emitted directly by the compiler
//! ([`crate::lower::emit_flat_plans`]) and adopted by the engine
//! ([`irred::PhasedEngine::prepare_from_flat`]) with zero translation
//! — that is [`CompiledProgram::execute_flat`], the compiled fast
//! path, with [`CompiledProgram::execute_sim`] as the simulator
//! default. [`CompiledProgram::execute_with`] remains engine-agnostic
//! (any [`irred::ReductionEngine`] over the emitted specs). Regular
//! loops (including fission preludes) run sequentially between phased
//! loops.

use earth_model::sim::SimConfig;
use irred::{PhasedEngine, PhasedSpec, ReductionEngine, RunOutcome, StrategyConfig, Workspace};

use crate::analysis::{analyze_program, normalize_program, LoopClass};
use crate::ast::*;
use crate::fission::{fission_loop, FissionResult};
use crate::interp::{interpret, interpret_loop, Bindings};
use crate::lower::{emit_flat_plans, lower_kernel};
use crate::parser::parse;
use crate::sema::check;
use crate::Diagnostic;

pub use crate::lower::InterpKernel;

/// One irregular loop lowered to the phased strategy.
#[derive(Debug)]
pub struct CompiledLoop {
    /// Index into [`CompiledProgram::program`]'s loop list.
    pub loop_index: usize,
    /// The reduction arrays of the (single) reference group.
    pub reduction_arrays: Vec<String>,
    /// The LightInspector parameters: the indirection arrays, sorted.
    pub vias: Vec<String>,
    /// Size symbol of the reduction arrays.
    pub elem_size: String,
    /// Iteration-count symbol.
    pub count: String,
}

/// What to do with each loop, in program order.
#[derive(Debug)]
pub enum LoopPlan {
    /// Run sequentially on the control processor (regular loops and
    /// fission preludes).
    Regular(usize),
    /// Run under the phased strategy.
    Phased(CompiledLoop),
}

/// The compiler's output: the transformed program plus an execution plan.
#[derive(Debug)]
pub struct CompiledProgram {
    /// Post-fission program (declarations include introduced temps).
    pub program: Program,
    pub plan: Vec<LoopPlan>,
    /// Human-readable compilation log (sections, groups, fission).
    pub log: Vec<String>,
}

/// Compile source text end to end: parse → reduction recognition →
/// sema → analysis (reference groups + dependence test) → verified
/// fission → plan.
pub fn compile(src: &str) -> Result<CompiledProgram, Diagnostic> {
    let mut prog = parse(src)?;
    normalize_program(&mut prog);
    check(&prog)?;
    let infos = analyze_program(&prog)?;

    let mut out = Program {
        decls: prog.decls.clone(),
        loops: Vec::new(),
    };
    let mut plan = Vec::new();
    let mut log = Vec::new();

    for (l, info) in prog.loops.iter().zip(&infos) {
        let line = l.span.line;
        for sec in &info.indirection_sections {
            log.push(format!("loop@{line}: indirection section {sec}"));
        }
        for (sec, via) in &info.reduction_sections {
            log.push(format!("loop@{line}: reduction section {sec} via {via}"));
        }
        match &info.class {
            LoopClass::Regular => {
                log.push(format!("loop@{line}: regular (no inspector needed)"));
                let idx = out.loops.len();
                out.loops.push(l.clone());
                plan.push(LoopPlan::Regular(idx));
            }
            LoopClass::IrregularReduction { groups } => {
                log.push(format!(
                    "loop@{line}: irregular reduction, {} reference group(s)",
                    groups.len()
                ));
                let f = fission_loop(l, groups);
                if f.loops.len() > 1 {
                    log.push(format!(
                        "loop@{line}: fissioned into {} loops, {} temp array(s)",
                        f.loops.len(),
                        f.temps.len()
                    ));
                }
                verify_fission(&prog, l, &f)?;
                log.push(format!(
                    "loop@{line}: fission verified against the interpreter"
                ));
                out.decls.extend(f.temps.clone());
                let n_groups = groups.len();
                let n_loops = f.loops.len();
                for (j, fl) in f.loops.into_iter().enumerate() {
                    let idx = out.loops.len();
                    out.loops.push(fl);
                    let is_prelude = n_loops > n_groups && j == 0;
                    if is_prelude {
                        plan.push(LoopPlan::Regular(idx));
                        continue;
                    }
                    let g = &groups[j - (n_loops - n_groups)];
                    let elem_size = out
                        .decls
                        .iter()
                        .find(|d| d.name == g.arrays[0])
                        .expect("sema checked")
                        .size
                        .clone();
                    log.push(format!(
                        "loop@{line}: LIGHTINSPECTOR({}) over {}; rotating group {{{}}}",
                        g.vias.join(", "),
                        l.count,
                        g.arrays.join(", ")
                    ));
                    plan.push(LoopPlan::Phased(CompiledLoop {
                        loop_index: idx,
                        reduction_arrays: g.arrays.clone(),
                        vias: g.vias.clone(),
                        elem_size,
                        count: l.count.clone(),
                    }));
                }
            }
        }
    }
    Ok(CompiledProgram {
        program: out,
        plan,
        log,
    })
}

/// Deterministic synthetic bindings for a program: every symbolic size
/// resolves to the same small bound (clamped by any literal sizes so no
/// access can run off an array), int arrays hold in-range pseudo-random
/// indices, f64 arrays pseudo-random values. Used by the compile-time
/// fission verification and the CLI's plan preview, which must run
/// without user data.
pub fn synthetic_bindings(prog: &Program, default_size: usize) -> Bindings {
    // Literal sizes cap the symbolic bound: loop counts are symbols, so
    // `count <= every array length` holds and no access goes out of
    // bounds.
    let literal_min = prog
        .decls
        .iter()
        .filter_map(|d| d.size.parse::<usize>().ok())
        .min();
    let s = literal_min.map_or(default_size, |m| m.min(default_size));

    let mut b = Bindings::default();
    for d in &prog.decls {
        if d.size.parse::<usize>().is_err() {
            b.sizes.insert(d.size.clone(), s);
        }
    }
    for l in &prog.loops {
        if l.count.parse::<usize>().is_err() {
            b.sizes.entry(l.count.clone()).or_insert(s);
        }
    }
    let min_f64_len = prog
        .decls
        .iter()
        .filter(|d| d.ty == ElemType::Double)
        .map(|d| d.size.parse::<usize>().unwrap_or(s))
        .min()
        .unwrap_or(s);
    for (r, d) in prog.decls.iter().enumerate() {
        let n = d.size.parse::<usize>().unwrap_or(s);
        match d.ty {
            ElemType::Int => {
                let v: Vec<u32> = (0..n)
                    .map(|j| ((j * j * 31 + j * 7 + r * 13) % min_f64_len.max(1)) as u32)
                    .collect();
                b.ints.insert(d.name.clone(), v);
            }
            ElemType::Double => {
                let v: Vec<f64> = (0..n)
                    .map(|j| ((j * 13 + 5 + r * 3) % 97) as f64 / 7.0)
                    .collect();
                b.f64s.insert(d.name.clone(), v);
            }
        }
    }
    b
}

/// Verify one loop's fission against the sequential interpreter: run
/// the original (normalized) loop and the fissioned sequence on
/// identical synthetic bindings and require every declared f64 array to
/// come out **bit-identical**. Sound because fission only reorders
/// whole statements across loops, never the per-array `+=` sequences —
/// so any divergence is a compiler bug, reported as a diagnostic
/// instead of miscompiled silently.
fn verify_fission(prog: &Program, l: &Forall, f: &FissionResult) -> Result<(), Diagnostic> {
    let mut decls = prog.decls.clone();
    decls.extend(f.temps.clone());
    let seed = synthetic_bindings(
        &Program {
            decls: decls.clone(),
            loops: Vec::new(),
        },
        24,
    );

    let original = Program {
        decls: decls.clone(),
        loops: vec![l.clone()],
    };
    let fissioned = Program {
        decls,
        loops: f.loops.clone(),
    };
    let mut b1 = seed.clone();
    let mut b2 = seed;
    interpret(&original, &mut b1)?;
    interpret(&fissioned, &mut b2)?;
    for d in &prog.decls {
        if d.ty != ElemType::Double {
            continue;
        }
        let (x, y) = (&b1.f64s[&d.name], &b2.f64s[&d.name]);
        if x.len() != y.len() || x.iter().zip(y).any(|(a, b)| a.to_bits() != b.to_bits()) {
            return Err(Diagnostic::at(
                l.span,
                format!(
                    "internal error: loop fission changed the value of `{}` (compiler bug)",
                    d.name
                ),
            ));
        }
    }
    Ok(())
}

/// Result of executing a compiled program on the simulated machine.
#[derive(Debug)]
pub struct ExecReport {
    /// Total simulated cycles across the phased loops.
    pub time_cycles: u64,
    /// Phased loops executed.
    pub phased_loops: usize,
    /// Regular loops executed (sequentially).
    pub regular_loops: usize,
}

impl CompiledProgram {
    /// Execute the compiled program through an arbitrary
    /// [`ReductionEngine`]: regular loops run sequentially on the control
    /// processor, irregular loops are lowered to [`PhasedSpec`]s and
    /// handed to `engine`. One [`Workspace`] is shared across the
    /// program's loops, so an engine that pools buffers reuses them
    /// between loops. Mutates the bindings like the interpreter would;
    /// returns the engine-reported time of the irregular portions.
    pub fn execute_with<E>(
        &self,
        b: &mut Bindings,
        engine: &E,
        strat: &StrategyConfig,
    ) -> Result<ExecReport, Diagnostic>
    where
        E: ReductionEngine<PhasedSpec<InterpKernel>>,
    {
        b.materialize(&self.program)?;
        let mut ws = Workspace::new();
        let mut rep = ExecReport {
            time_cycles: 0,
            phased_loops: 0,
            regular_loops: 0,
        };
        for p in &self.plan {
            match p {
                LoopPlan::Regular(idx) => {
                    interpret_loop(&self.program.loops[*idx], b)?;
                    rep.regular_loops += 1;
                }
                LoopPlan::Phased(cl) => {
                    let span = self.program.loops[cl.loop_index].span;
                    let spec = lower_kernel(&self.program, cl, b)?;
                    let to_diag = |e: irred::EngineError| {
                        Diagnostic::at(span, format!("engine `{}` failed: {e}", engine.name()))
                    };
                    let mut prepared = engine.prepare(&spec, strat).map_err(to_diag)?;
                    let out: RunOutcome =
                        engine.execute(&mut prepared, &mut ws).map_err(to_diag)?;
                    self.accumulate(cl, b, &out);
                    rep.time_cycles += out.time_cycles;
                    rep.phased_loops += 1;
                }
            }
        }
        Ok(rep)
    }

    /// Execute on the compiled fast path: the compiler emits each
    /// loop's per-processor CSR flat plans directly
    /// ([`crate::lower::emit_flat_plans`]) and the phased engine adopts
    /// them ([`PhasedEngine::prepare_from_flat`]) — no inspector run,
    /// no nested-plan intermediate. Results are bit-identical to
    /// [`Self::execute_with`] on the same engine configuration.
    pub fn execute_flat(
        &self,
        b: &mut Bindings,
        strat: &StrategyConfig,
        engine: &PhasedEngine,
    ) -> Result<ExecReport, Diagnostic> {
        b.materialize(&self.program)?;
        let mut ws = Workspace::new();
        let mut rep = ExecReport {
            time_cycles: 0,
            phased_loops: 0,
            regular_loops: 0,
        };
        for p in &self.plan {
            match p {
                LoopPlan::Regular(idx) => {
                    interpret_loop(&self.program.loops[*idx], b)?;
                    rep.regular_loops += 1;
                }
                LoopPlan::Phased(cl) => {
                    let span = self.program.loops[cl.loop_index].span;
                    let spec = lower_kernel(&self.program, cl, b)?;
                    let flats = emit_flat_plans(&spec, strat).map_err(|e| {
                        Diagnostic::at(span, format!("inspector rejected the loop: {e}"))
                    })?;
                    let mut prepared =
                        engine.prepare_from_flat(&spec, strat, flats).map_err(|e| {
                            Diagnostic::at(
                                span,
                                format!("engine `phased` rejected the emitted plan: {e}"),
                            )
                        })?;
                    let out: RunOutcome = engine.execute(&mut prepared, &mut ws).map_err(|e| {
                        Diagnostic::at(span, format!("engine `phased` failed: {e}"))
                    })?;
                    self.accumulate(cl, b, &out);
                    rep.time_cycles += out.time_cycles;
                    rep.phased_loops += 1;
                }
            }
        }
        Ok(rep)
    }

    /// Execute on the paper's target: the phased engine over the
    /// simulated EARTH machine, via the compiled flat fast path.
    pub fn execute_sim(
        &self,
        b: &mut Bindings,
        strat: &StrategyConfig,
        cfg: SimConfig,
    ) -> Result<ExecReport, Diagnostic> {
        self.execute_flat(b, strat, &PhasedEngine::sim(cfg))
    }

    /// Summarize the flat plans the compiler would emit for each phased
    /// loop under `strat`, without executing anything. Returns
    /// `(source line, summary)` pairs in plan order — what the
    /// `threadedc` CLI prints as its plan preview.
    pub fn flat_summaries(
        &self,
        b: &mut Bindings,
        strat: &StrategyConfig,
    ) -> Result<Vec<(usize, crate::lower::FlatSummary)>, Diagnostic> {
        b.materialize(&self.program)?;
        let mut out = Vec::new();
        for p in &self.plan {
            if let LoopPlan::Phased(cl) = p {
                let span = self.program.loops[cl.loop_index].span;
                let spec = lower_kernel(&self.program, cl, b)?;
                let flats = emit_flat_plans(&spec, strat).map_err(|e| {
                    Diagnostic::at(span, format!("inspector rejected the loop: {e}"))
                })?;
                out.push((
                    span.line,
                    crate::lower::FlatSummary::from_flats(&flats, strat),
                ));
            }
        }
        Ok(out)
    }

    /// DSL semantics: X accumulates onto its prior contents; the engine
    /// computes the pure sum.
    fn accumulate(&self, cl: &CompiledLoop, b: &mut Bindings, out: &RunOutcome) {
        for (a, name) in cl.reduction_arrays.iter().enumerate() {
            let x = b.f64s.get_mut(name).expect("materialized");
            for (xi, ri) in x.iter_mut().zip(&out.values[a]) {
                *xi += ri;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed | 1;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    const FIG1: &str = "
        double X[n]; double Y[e]; int IA1[e]; int IA2[e];
        forall (i = 0; i < e; i++) {
            double f = Y[i] * 0.5;
            X[IA1[i]] += f;
            X[IA2[i]] -= f;
        }";

    fn fig1_bindings(n: usize, e: usize, seed: u64) -> Bindings {
        let mut next = rng(seed);
        let mut b = Bindings::default();
        b.sizes.insert("n".into(), n);
        b.sizes.insert("e".into(), e);
        b.f64s.insert(
            "Y".into(),
            (0..e).map(|_| (next() % 100) as f64 / 7.0).collect(),
        );
        b.ints.insert(
            "IA1".into(),
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
        );
        b.ints.insert(
            "IA2".into(),
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
        );
        b
    }

    #[test]
    fn compile_produces_plan_and_log() {
        let c = compile(FIG1).unwrap();
        assert_eq!(c.plan.len(), 1);
        assert!(matches!(&c.plan[0], LoopPlan::Phased(cl)
            if cl.vias == ["IA1", "IA2"] && cl.reduction_arrays == ["X"]));
        assert!(
            c.log.iter().any(|l| l.contains("LIGHTINSPECTOR(IA1, IA2)")),
            "{:?}",
            c.log
        );
        assert!(
            c.log.iter().any(|l| l.contains("fission verified")),
            "{:?}",
            c.log
        );
    }

    #[test]
    fn compiled_execution_matches_interpreter() {
        let c = compile(FIG1).unwrap();
        let mut phased = fig1_bindings(40, 300, 5);
        let strat = StrategyConfig::new(4, 2, irred::Distribution::Cyclic, 1);
        let rep = c
            .execute_sim(&mut phased, &strat, SimConfig::default())
            .unwrap();
        assert_eq!(rep.phased_loops, 1);
        assert!(rep.time_cycles > 0);

        let prog = parse(FIG1).unwrap();
        let mut direct = fig1_bindings(40, 300, 5);
        interpret(&prog, &mut direct).unwrap();
        for (a, b) in phased.f64s["X"].iter().zip(&direct.f64s["X"]) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn flat_path_is_bit_identical_to_engine_prepare() {
        // The compiled fast path (compiler-emitted flat plans, adopted
        // by the engine) must agree bit-for-bit with the engine running
        // its own inspector on the same spec.
        let c = compile(FIG1).unwrap();
        let strat = StrategyConfig::new(3, 2, irred::Distribution::Block, 1);
        let engine = PhasedEngine::sim(SimConfig::default());

        let mut via_flat = fig1_bindings(32, 250, 7);
        let rep_flat = c.execute_flat(&mut via_flat, &strat, &engine).unwrap();

        let mut via_prepare = fig1_bindings(32, 250, 7);
        let rep_prep = c.execute_with(&mut via_prepare, &engine, &strat).unwrap();

        assert_eq!(rep_flat.time_cycles, rep_prep.time_cycles);
        for (a, b) in via_flat.f64s["X"].iter().zip(&via_prepare.f64s["X"]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn codegen_is_engine_agnostic() {
        // The same compiled program runs through any ReductionEngine;
        // the sequential engine must agree with the phased one up to
        // summation order.
        let c = compile(FIG1).unwrap();
        let strat = StrategyConfig::new(4, 2, irred::Distribution::Cyclic, 1);

        let mut via_phased = fig1_bindings(40, 300, 5);
        c.execute_with(
            &mut via_phased,
            &irred::PhasedEngine::sim(SimConfig::default()),
            &strat,
        )
        .unwrap();

        let mut via_seq = fig1_bindings(40, 300, 5);
        c.execute_with(
            &mut via_seq,
            &irred::SeqEngine::new(SimConfig::default()),
            &strat,
        )
        .unwrap();

        for (a, b) in via_phased.f64s["X"].iter().zip(&via_seq.f64s["X"]) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn multi_group_program_fissions_and_matches() {
        let src = "
            double P[n]; double Q[n]; double W[e]; int A[e]; int B[e];
            forall (i = 0; i < e; i++) {
                double f = W[i] * 2.0;
                P[A[i]] += f;
                Q[B[i]] -= f;
            }";
        let c = compile(src).unwrap();
        // prelude (regular) + two phased loops
        assert_eq!(c.plan.len(), 3);
        assert!(matches!(c.plan[0], LoopPlan::Regular(_)));

        let mut next = rng(9);
        let (n, e) = (30usize, 200usize);
        let mk = |next: &mut dyn FnMut() -> u64| {
            let mut b = Bindings::default();
            b.sizes.insert("n".into(), n);
            b.sizes.insert("e".into(), e);
            b.f64s
                .insert("W".into(), (0..e).map(|_| (next() % 50) as f64).collect());
            b.ints.insert(
                "A".into(),
                (0..e).map(|_| (next() % n as u64) as u32).collect(),
            );
            b.ints.insert(
                "B".into(),
                (0..e).map(|_| (next() % n as u64) as u32).collect(),
            );
            b
        };
        let mut phased = mk(&mut next);
        let mut next2 = rng(9);
        let mut direct = mk(&mut next2);

        let strat = StrategyConfig::new(2, 2, irred::Distribution::Block, 1);
        let rep = c
            .execute_sim(&mut phased, &strat, SimConfig::default())
            .unwrap();
        assert_eq!(rep.phased_loops, 2);
        assert_eq!(rep.regular_loops, 1);

        interpret(&parse(src).unwrap(), &mut direct).unwrap();
        for arr in ["P", "Q"] {
            for (a, b) in phased.f64s[arr].iter().zip(&direct.f64s[arr]) {
                assert!((a - b).abs() < 1e-9, "{arr}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn unannotated_multi_group_compiles_via_recognition_and_fission() {
        // Neither reduction is annotated (+=): recognition normalizes
        // both, analysis splits them into two groups, fission splits the
        // loop. End-to-end result must match the raw interpreter.
        let src = "
            double P[n]; double Q[n]; double W[e]; int A[e]; int B[e];
            forall (i = 0; i < e; i++) {
                double f = W[i] * 2.0;
                P[A[i]] = P[A[i]] + f;
                Q[B[i]] = Q[B[i]] - f;
            }";
        let c = compile(src).unwrap();
        assert_eq!(c.plan.len(), 3, "prelude + one phased loop per group");

        let mut next = rng(21);
        let (n, e) = (24usize, 150usize);
        let mut b = Bindings::default();
        b.sizes.insert("n".into(), n);
        b.sizes.insert("e".into(), e);
        b.f64s
            .insert("W".into(), (0..e).map(|_| (next() % 50) as f64).collect());
        b.ints.insert(
            "A".into(),
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
        );
        b.ints.insert(
            "B".into(),
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
        );
        let mut direct = b.clone();
        let strat = StrategyConfig::new(2, 2, irred::Distribution::Cyclic, 1);
        c.execute_sim(&mut b, &strat, SimConfig::default()).unwrap();
        interpret(&parse(src).unwrap(), &mut direct).unwrap();
        for arr in ["P", "Q"] {
            for (x, y) in b.f64s[arr].iter().zip(&direct.f64s[arr]) {
                assert!((x - y).abs() < 1e-9, "{arr}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn non_reduction_dependence_rejected_with_span() {
        let err =
            compile("double X[n]; int A[e];\nforall (i = 0; i < e; i++) {\n  X[A[i]] = 1.0;\n}")
                .unwrap_err();
        assert_eq!(err.span.line, 3);
        assert!(err.span.col > 0);
        assert!(err.message.contains("not a recognized reduction"), "{err}");
    }

    #[test]
    fn multi_array_group_uses_single_inspector() {
        let src = "
            double FX[n]; double FY[n]; int A[e]; int B[e];
            forall (i = 0; i < e; i++) {
                FX[A[i]] += 1.0; FX[B[i]] -= 1.0;
                FY[A[i]] += 0.5; FY[B[i]] -= 0.5;
            }";
        let c = compile(src).unwrap();
        assert_eq!(c.plan.len(), 1);
        let LoopPlan::Phased(cl) = &c.plan[0] else {
            panic!()
        };
        assert_eq!(cl.reduction_arrays, vec!["FX", "FY"]);
    }

    #[test]
    fn regular_loops_stay_sequential() {
        let c = compile("double Y[e]; forall (i = 0; i < e; i++) { Y[i] = i + 1.0; }").unwrap();
        assert!(matches!(c.plan[0], LoopPlan::Regular(_)));
        let mut b = Bindings::default();
        b.sizes.insert("e".into(), 4);
        let strat = StrategyConfig::new(2, 2, irred::Distribution::Block, 1);
        c.execute_sim(&mut b, &strat, SimConfig::default()).unwrap();
        assert_eq!(b.f64s["Y"], vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn synthetic_bindings_respect_literal_sizes() {
        let prog = parse(
            "double X[5]; double Y[e]; int A[e];
             forall (i = 0; i < e; i++) { X[A[i]] += Y[i]; }",
        )
        .unwrap();
        let b = synthetic_bindings(&prog, 24);
        // Symbolic sizes clamp to the smallest literal so every access
        // stays in bounds.
        assert_eq!(b.sizes["e"], 5);
        assert_eq!(b.f64s["X"].len(), 5);
        assert!(b.ints["A"].iter().all(|&v| (v as usize) < 5));
    }
}
