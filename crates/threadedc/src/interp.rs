//! A direct sequential interpreter for the DSL — the reference
//! semantics that compiled (phased) execution is validated against.
//!
//! The interpreter accepts the *raw* parsed program, including
//! un-normalized [`Stmt::AssignIndirect`] stores, with plain sequential
//! semantics (statements in order, iterations in order). This is what
//! makes it usable both as the oracle for compiled reductions and as
//! the arbiter the compile-time fission check compares against.

use std::collections::HashMap;

use crate::ast::*;
use crate::Diagnostic;

/// Runtime bindings for a program's symbols: array sizes (the symbolic
/// bounds in declarations and loop headers) and array contents.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    pub sizes: HashMap<String, usize>,
    pub f64s: HashMap<String, Vec<f64>>,
    pub ints: HashMap<String, Vec<u32>>,
}

impl Bindings {
    /// Resolve a size symbol (or a numeric literal used as one).
    pub fn size_of(&self, sym: &str) -> Result<usize, Diagnostic> {
        if let Ok(v) = sym.parse::<usize>() {
            return Ok(v);
        }
        self.sizes
            .get(sym)
            .copied()
            .ok_or_else(|| Diagnostic::line(0, format!("unbound size symbol `{sym}`")))
    }

    /// Allocate any declared arrays not provided by the caller
    /// (zero-filled), and validate the sizes of provided ones.
    pub fn materialize(&mut self, prog: &Program) -> Result<(), Diagnostic> {
        for d in &prog.decls {
            let n = self.size_of(&d.size)?;
            match d.ty {
                ElemType::Double => {
                    let v = self
                        .f64s
                        .entry(d.name.clone())
                        .or_insert_with(|| vec![0.0; n]);
                    if v.len() != n {
                        return Err(Diagnostic::at(
                            d.span,
                            format!("array `{}` bound with wrong length", d.name),
                        ));
                    }
                }
                ElemType::Int => {
                    let v = self
                        .ints
                        .entry(d.name.clone())
                        .or_insert_with(|| vec![0; n]);
                    if v.len() != n {
                        return Err(Diagnostic::at(
                            d.span,
                            format!("array `{}` bound with wrong length", d.name),
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Interpret the whole program sequentially, mutating `b` in place.
pub fn interpret(prog: &Program, b: &mut Bindings) -> Result<(), Diagnostic> {
    b.materialize(prog)?;
    for l in &prog.loops {
        interpret_loop(l, b)?;
    }
    Ok(())
}

/// Interpret one loop.
pub fn interpret_loop(l: &Forall, b: &mut Bindings) -> Result<(), Diagnostic> {
    let count = b.size_of(&l.count)?;
    let mut locals: HashMap<String, f64> = HashMap::new();
    for i in 0..count {
        locals.clear();
        for s in &l.body {
            match s {
                Stmt::Local { name, init, .. } => {
                    let v = eval(init, i, &locals, b)?;
                    locals.insert(name.clone(), v);
                }
                Stmt::ReduceIndirect {
                    array,
                    via,
                    negate,
                    value,
                    span,
                } => {
                    let v = eval(value, i, &locals, b)?;
                    let e = b.ints[via][i] as usize;
                    let x = b
                        .f64s
                        .get_mut(array)
                        .ok_or_else(|| miss(array, span.line))?;
                    if *negate {
                        x[e] -= v;
                    } else {
                        x[e] += v;
                    }
                }
                Stmt::AssignIndirect {
                    array,
                    via,
                    value,
                    span,
                } => {
                    let v = eval(value, i, &locals, b)?;
                    let e = b.ints[via][i] as usize;
                    let x = b
                        .f64s
                        .get_mut(array)
                        .ok_or_else(|| miss(array, span.line))?;
                    x[e] = v;
                }
                Stmt::AssignDirect {
                    array,
                    accumulate,
                    value,
                    span,
                } => {
                    let v = eval(value, i, &locals, b)?;
                    let y = b
                        .f64s
                        .get_mut(array)
                        .ok_or_else(|| miss(array, span.line))?;
                    if *accumulate {
                        y[i] += v;
                    } else {
                        y[i] = v;
                    }
                }
            }
        }
    }
    Ok(())
}

fn miss(array: &str, line: usize) -> Diagnostic {
    Diagnostic::line(line, format!("array `{array}` not bound"))
}

fn eval(
    e: &Expr,
    i: usize,
    locals: &HashMap<String, f64>,
    b: &Bindings,
) -> Result<f64, Diagnostic> {
    Ok(match e {
        Expr::Number(v) => *v,
        Expr::Var(v) => match locals.get(v) {
            Some(x) => *x,
            None => i as f64, // the loop variable
        },
        Expr::Direct { array, .. } => b.f64s[array][i],
        Expr::Indirect { array, via, .. } => {
            let e = b.ints[via][i] as usize;
            b.f64s[array][e]
        }
        Expr::Bin(op, a, c) => {
            let (x, y) = (eval(a, i, locals, b)?, eval(c, i, locals, b)?);
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
            }
        }
        Expr::Neg(a) => -eval(a, i, locals, b)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn figure1_by_hand() {
        let prog = parse(
            "double X[n]; double Y[e]; int IA1[e]; int IA2[e];
             forall (i = 0; i < e; i++) {
                 double f = Y[i];
                 X[IA1[i]] += f;
                 X[IA2[i]] -= f;
             }",
        )
        .unwrap();
        let mut b = Bindings::default();
        b.sizes.insert("n".into(), 4);
        b.sizes.insert("e".into(), 3);
        b.f64s.insert("Y".into(), vec![1.0, 2.0, 3.0]);
        b.ints.insert("IA1".into(), vec![0, 1, 2]);
        b.ints.insert("IA2".into(), vec![3, 3, 0]);
        interpret(&prog, &mut b).unwrap();
        // X[0]+=1, X[3]-=1; X[1]+=2, X[3]-=2; X[2]+=3, X[0]-=3
        assert_eq!(b.f64s["X"], vec![-2.0, 2.0, 3.0, -3.0]);
    }

    #[test]
    fn loop_var_usable_in_expressions() {
        let prog = parse("double Y[e]; forall (i = 0; i < e; i++) { Y[i] = i * 2.0; }").unwrap();
        let mut b = Bindings::default();
        b.sizes.insert("e".into(), 3);
        interpret(&prog, &mut b).unwrap();
        assert_eq!(b.f64s["Y"], vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn numeric_sizes_work() {
        let prog = parse("double Y[5]; forall (i = 0; i < 5; i++) { Y[i] = 1.0; }");
        // loop counts are symbols in the grammar — a literal count is not
        // allowed, so only declaration sizes may be numeric.
        assert!(prog.is_err());
        let prog = parse("double Y[5]; forall (i = 0; i < e; i++) { Y[i] = 1.0; }").unwrap();
        let mut b = Bindings::default();
        b.sizes.insert("e".into(), 5);
        interpret(&prog, &mut b).unwrap();
        assert_eq!(b.f64s["Y"].len(), 5);
    }

    #[test]
    fn unbound_size_is_an_error() {
        let prog = parse("double Y[e]; forall (i = 0; i < e; i++) { Y[i] = 1.0; }").unwrap();
        let mut b = Bindings::default();
        assert!(interpret(&prog, &mut b).is_err());
    }

    #[test]
    fn sequential_loops_compose() {
        let prog = parse(
            "double Y[e]; double Z[e];
             forall (i = 0; i < e; i++) { Y[i] = 2.0; }
             forall (i = 0; i < e; i++) { Z[i] = Y[i] * 3.0; }",
        )
        .unwrap();
        let mut b = Bindings::default();
        b.sizes.insert("e".into(), 2);
        interpret(&prog, &mut b).unwrap();
        assert_eq!(b.f64s["Z"], vec![6.0, 6.0]);
    }

    #[test]
    fn raw_indirect_store_interprets_sequentially() {
        // Last writer wins under sequential semantics — this is the
        // behavior the compiler refuses to parallelize.
        let prog = parse(
            "double X[n]; int A[e];
             forall (i = 0; i < e; i++) { X[A[i]] = i + 1.0; }",
        )
        .unwrap();
        let mut b = Bindings::default();
        b.sizes.insert("n".into(), 2);
        b.sizes.insert("e".into(), 3);
        b.ints.insert("A".into(), vec![0, 0, 1]);
        interpret(&prog, &mut b).unwrap();
        assert_eq!(b.f64s["X"], vec![2.0, 3.0]);
    }
}
