//! Abstract syntax of the EARTH-C-like DSL.

use crate::Span;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Expressions. Array indexing is restricted to one level of
/// indirection, matching the paper's stated assumption (§4: "no array is
/// accessed through more than one level of indirection").
///
/// Array references carry their source [`Span`] so the dependence test
/// can point at the offending reference; synthesized references (loop
/// fission temps) use `Span::default()`.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Number(f64),
    /// A scalar: the loop variable or a loop-local.
    Var(String),
    /// `A[i]` — direct array access by the loop variable.
    Direct {
        array: String,
        span: Span,
    },
    /// `A[B[i]]` — one level of indirection.
    Indirect {
        array: String,
        via: String,
        span: Span,
    },
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
}

impl Expr {
    /// All array names read by this expression, with how they are
    /// accessed and where: `(array, Some(via), span)` for indirect,
    /// `(array, None, span)` for direct.
    pub fn array_reads(&self, out: &mut Vec<(String, Option<String>, Span)>) {
        match self {
            Expr::Number(_) | Expr::Var(_) => {}
            Expr::Direct { array, span } => out.push((array.clone(), None, *span)),
            Expr::Indirect { array, via, span } => {
                out.push((array.clone(), Some(via.clone()), *span))
            }
            Expr::Bin(_, a, b) => {
                a.array_reads(out);
                b.array_reads(out);
            }
            Expr::Neg(a) => a.array_reads(out),
        }
    }

    /// All scalar variable names read.
    pub fn var_reads(&self, out: &mut Vec<String>) {
        match self {
            Expr::Number(_) | Expr::Direct { .. } => {}
            Expr::Var(v) => out.push(v.clone()),
            Expr::Indirect { .. } => {}
            Expr::Bin(_, a, b) => {
                a.var_reads(out);
                b.var_reads(out);
            }
            Expr::Neg(a) => a.var_reads(out),
        }
    }

    /// Rough floating-point operation count, used for cost modeling.
    pub fn flops(&self) -> u64 {
        match self {
            Expr::Number(_) | Expr::Var(_) | Expr::Direct { .. } | Expr::Indirect { .. } => 0,
            Expr::Bin(_, a, b) => 1 + a.flops() + b.flops(),
            Expr::Neg(a) => 1 + a.flops(),
        }
    }

    /// Structural equality ignoring spans — used by reduction
    /// recognition to match `X[V[i]]` occurrences.
    pub fn same_shape(&self, other: &Expr) -> bool {
        match (self, other) {
            (Expr::Number(a), Expr::Number(b)) => a == b,
            (Expr::Var(a), Expr::Var(b)) => a == b,
            (Expr::Direct { array: a, .. }, Expr::Direct { array: b, .. }) => a == b,
            (
                Expr::Indirect {
                    array: a, via: va, ..
                },
                Expr::Indirect {
                    array: b, via: vb, ..
                },
            ) => a == b && va == vb,
            (Expr::Bin(op1, a1, b1), Expr::Bin(op2, a2, b2)) => {
                op1 == op2 && a1.same_shape(a2) && b1.same_shape(b2)
            }
            (Expr::Neg(a), Expr::Neg(b)) => a.same_shape(b),
            _ => false,
        }
    }
}

/// Statements allowed inside a `forall` body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `double name = expr;` — a loop-local scalar.
    Local {
        name: String,
        init: Expr,
        span: Span,
    },
    /// `X[IA[i]] += expr;` / `-=` — an irregular reduction update.
    ReduceIndirect {
        array: String,
        via: String,
        negate: bool,
        value: Expr,
        span: Span,
    },
    /// `X[IA[i]] = expr;` — a plain store through indirection. Reduction
    /// recognition ([`crate::analysis::normalize_program`]) rewrites the
    /// self-accumulating form into [`Stmt::ReduceIndirect`]; anything
    /// left is rejected by the dependence test.
    AssignIndirect {
        array: String,
        via: String,
        value: Expr,
        span: Span,
    },
    /// `Y[i] += expr;` / `Y[i] = expr;` — a direct update by loop index.
    AssignDirect {
        array: String,
        accumulate: bool,
        value: Expr,
        span: Span,
    },
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Local { span, .. }
            | Stmt::ReduceIndirect { span, .. }
            | Stmt::AssignIndirect { span, .. }
            | Stmt::AssignDirect { span, .. } => *span,
        }
    }
}

/// Element type of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemType {
    Double,
    Int,
}

/// A top-level array declaration: `double X[nsym];`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    pub name: String,
    pub ty: ElemType,
    /// Symbolic size (resolved against the runtime bindings at execution).
    pub size: String,
    pub span: Span,
}

/// A `forall` loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Forall {
    /// Loop variable name.
    pub var: String,
    /// Symbolic iteration count (upper bound).
    pub count: String,
    pub body: Vec<Stmt>,
    pub span: Span,
}

/// A whole program: declarations followed by loops.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub decls: Vec<ArrayDecl>,
    pub loops: Vec<Forall>,
}

impl Program {
    pub fn decl(&self, name: &str) -> Option<&ArrayDecl> {
        self.decls.iter().find(|d| d.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_reads_collects_both_kinds() {
        let e = Expr::Bin(
            BinOp::Mul,
            Box::new(Expr::Direct {
                array: "W".into(),
                span: Span::new(1, 5),
            }),
            Box::new(Expr::Indirect {
                array: "Q".into(),
                via: "IA".into(),
                span: Span::new(1, 12),
            }),
        );
        let mut reads = Vec::new();
        e.array_reads(&mut reads);
        assert_eq!(
            reads,
            vec![
                ("W".to_string(), None, Span::new(1, 5)),
                ("Q".to_string(), Some("IA".to_string()), Span::new(1, 12))
            ]
        );
    }

    #[test]
    fn flops_counts_operators() {
        let e = Expr::Neg(Box::new(Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Number(1.0)),
            Box::new(Expr::Bin(
                BinOp::Mul,
                Box::new(Expr::Var("a".into())),
                Box::new(Expr::Var("b".into())),
            )),
        )));
        assert_eq!(e.flops(), 3);
    }

    #[test]
    fn var_reads_ignores_arrays() {
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Var("f".into())),
            Box::new(Expr::Direct {
                array: "W".into(),
                span: Span::default(),
            }),
        );
        let mut vars = Vec::new();
        e.var_reads(&mut vars);
        assert_eq!(vars, vec!["f".to_string()]);
    }

    #[test]
    fn same_shape_ignores_spans() {
        let a = Expr::Indirect {
            array: "X".into(),
            via: "A".into(),
            span: Span::new(3, 9),
        };
        let b = Expr::Indirect {
            array: "X".into(),
            via: "A".into(),
            span: Span::default(),
        };
        assert!(a.same_shape(&b));
        assert_ne!(a, b, "derived equality still sees the span");
    }
}
