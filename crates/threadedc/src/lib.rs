//! # threadedc — a mini EARTH-C compiler for irregular reduction loops
//!
//! The paper's §4 describes a compiler analysis built on the EARTH-C
//! infrastructure: it recognizes irregular reduction loops, extracts
//! **reduction array sections** and **indirection array sections** (in
//! triplet notation), groups the reduction sections into **reference
//! groups** (Definition 1: sections accessed through the same set of
//! indirection sections), applies **loop fission** so each loop updates
//! a single reference group (introducing temporary arrays for scalars
//! shared across the fissioned loops), and finally emits one
//! LightInspector call plus phased threaded code per loop.
//!
//! This crate implements that pipeline over a C-like loop DSL:
//!
//! ```c
//! double X[n]; double W[e]; int IA1[e]; int IA2[e];
//! forall (i = 0; i < e; i++) {
//!     double f = W[i] * 0.5;
//!     X[IA1[i]] += f;
//!     X[IA2[i]] -= f;
//! }
//! ```
//!
//! Reductions need not be annotated: `X[IA[i]] = X[IA[i]] + f` is
//! recognized and normalized to the `+=` form, and statements through
//! indirection that are *not* reductions are rejected by the dependence
//! test with a [`Span`]-carrying [`Diagnostic`] instead of miscompiled.
//!
//! Pipeline stages (one module each):
//!
//! 1. [`lexer`] / [`parser`] — text → [`ast::Program`];
//! 2. [`analysis::normalize_program`] — reduction recognition (rewrites
//!    un-annotated self-accumulations into [`ast::Stmt::ReduceIndirect`]);
//! 3. [`sema`] — name resolution, kind/type checking;
//! 4. [`analysis`] — loop classification, array-section extraction,
//!    reference-group formation (Definition 1), and the dependence test;
//! 5. [`fission`] — loop fission by reference group, verified against
//!    the interpreter at compile time;
//! 6. [`codegen`] / [`lower`] — a [`codegen::CompiledLoop`] per
//!    fissioned loop, lowered *directly* to the CSR
//!    [`lightinspector::FlatPlan`] the PR 5 fast path streams — no
//!    nested-plan intermediate;
//! 7. [`interp`] — a direct sequential interpreter of the DSL, the
//!    reference the compiled execution is validated against;
//! 8. [`cache`] — a source-hash keyed compile cache for edit–rerun
//!    loops and the server's `SubmitSource` path.
//!
//! The end-to-end path (source text → phased execution on the EARTH
//! model) is exercised by the `compile_pipeline` example and the
//! integration tests.

pub mod analysis;
pub mod ast;
pub mod cache;
pub mod codegen;
pub mod fission;
pub mod interp;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod sema;

pub use analysis::{analyze_program, normalize_program, LoopClass, LoopInfo, RefGroup, Section};
pub use ast::{BinOp, Expr, Program, Stmt};
pub use cache::{source_hash, CompileCache};
pub use codegen::{
    compile, synthetic_bindings, CompiledLoop, CompiledProgram, InterpKernel, LoopPlan,
};
pub use fission::fission_loop;
pub use interp::{interpret, Bindings};
pub use lexer::{tokenize, Token};
pub use lower::{emit_flat_plans, FlatSummary};
pub use parser::parse;
pub use sema::{check, SemaError};

/// A source position: 1-based line and column. `col == 0` means "line
/// only" (synthesized nodes, whole-loop diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub line: usize,
    pub col: usize,
}

impl Span {
    pub fn new(line: usize, col: usize) -> Span {
        Span { line, col }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.col > 0 {
            write!(f, "{}:{}", self.line, self.col)
        } else {
            write!(f, "{}", self.line)
        }
    }
}

/// A compiler diagnostic carrying the source span of the offending
/// construct (1-based line, and column when known).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub span: Span,
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic anchored at a full span.
    pub fn at(span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            span,
            message: message.into(),
        }
    }

    /// A line-only diagnostic (column unknown).
    pub fn line(line: usize, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            span: Span { line, col: 0 },
            message: message.into(),
        }
    }

    /// The 1-based line (0 when unknown).
    pub fn line_no(&self) -> usize {
        self.span.line
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.span, self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_display_with_and_without_column() {
        let d = Diagnostic::at(Span::new(3, 7), "bad");
        assert_eq!(d.to_string(), "line 3:7: bad");
        let d = Diagnostic::line(3, "bad");
        assert_eq!(d.to_string(), "line 3: bad");
    }
}
