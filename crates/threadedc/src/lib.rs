//! # threadedc — a mini EARTH-C compiler for irregular reduction loops
//!
//! The paper's §4 describes a compiler analysis built on the EARTH-C
//! infrastructure: it recognizes irregular reduction loops, extracts
//! **reduction array sections** and **indirection array sections** (in
//! triplet notation), groups the reduction sections into **reference
//! groups** (Definition 1: sections accessed through the same set of
//! indirection sections), applies **loop fission** so each loop updates
//! a single reference group (introducing temporary arrays for scalars
//! shared across the fissioned loops), and finally emits one
//! LightInspector call plus phased threaded code per loop.
//!
//! This crate implements that pipeline over a C-like loop DSL:
//!
//! ```c
//! double X[n]; double W[e]; int IA1[e]; int IA2[e];
//! forall (i = 0; i < e; i++) {
//!     double f = W[i] * 0.5;
//!     X[IA1[i]] += f;
//!     X[IA2[i]] -= f;
//! }
//! ```
//!
//! Pipeline stages (one module each):
//!
//! 1. [`lexer`] / [`parser`] — text → [`ast::Program`];
//! 2. [`sema`] — name resolution, kind/type checking;
//! 3. [`analysis`] — loop classification, array-section extraction,
//!    reference-group formation;
//! 4. [`fission`] — loop fission by reference group;
//! 5. [`codegen`] — a [`codegen::CompiledLoop`] per fissioned loop: the
//!    LightInspector parameters plus an interpretable kernel that
//!    implements [`irred-compatible`](codegen::InterpKernel) execution
//!    semantics;
//! 6. [`interp`] — a direct sequential interpreter of the DSL, the
//!    reference the compiled execution is validated against.
//!
//! The end-to-end path (source text → phased execution on the EARTH
//! model) is exercised by the `compile_pipeline` example and the
//! integration tests.

pub mod analysis;
pub mod ast;
pub mod codegen;
pub mod fission;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod sema;

pub use analysis::{analyze_program, LoopClass, LoopInfo, RefGroup, Section};
pub use ast::{BinOp, Expr, Program, Stmt};
pub use codegen::{compile, CompiledLoop, CompiledProgram, InterpKernel};
pub use fission::fission_loop;
pub use interp::{interpret, Bindings};
pub use lexer::{tokenize, Token};
pub use parser::parse;
pub use sema::{check, SemaError};

/// A compiler diagnostic with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for Diagnostic {}
