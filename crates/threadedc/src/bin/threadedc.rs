//! `threadedc` — the compiler's command-line front door.
//!
//! Compiles a DSL source file and prints the reference-group report
//! (the compile log: array sections, reference groups, fission,
//! LIGHTINSPECTOR parameters) plus a per-loop summary of the CSR flat
//! plans the compiler emits. Diagnostics come out with source spans
//! (`line L:C: message`) and a nonzero exit code.
//!
//! ```text
//! threadedc [--procs N] [--k K] [--dist block|cyclic] [--size S]
//!           [--tuning scalar|auto] [--run] <file.tc>
//! ```
//!
//! The plan preview (and `--run`) uses deterministic synthetic bindings
//! sized by `--size` (default 64, clamped by literal array sizes), so
//! the CLI needs no user data.

use std::process::ExitCode;

use earth_model::sim::SimConfig;
use irred::{Distribution, ExecutionConfig, PhasedEngine, StrategyConfig, Tuning};
use threadedc::{compile, synthetic_bindings, LoopPlan};

struct Args {
    procs: usize,
    k: usize,
    dist: Distribution,
    size: usize,
    run: bool,
    tuning: Tuning,
    file: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: threadedc [--procs N] [--k K] [--dist block|cyclic] [--size S] \
         [--tuning scalar|auto] [--run] <file.tc>"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        procs: 4,
        k: 2,
        dist: Distribution::Cyclic,
        size: 64,
        run: false,
        // The determinism reference; `--tuning auto` opts into the
        // vectorized + tiled fast path.
        tuning: Tuning::new(),
        file: String::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |min: usize| -> usize {
            it.next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| usage())
                .max(min)
        };
        match a.as_str() {
            "--procs" => args.procs = num(1),
            "--k" => args.k = num(1),
            "--size" => args.size = num(2),
            "--dist" => {
                args.dist = match it.next().as_deref() {
                    Some("block") => Distribution::Block,
                    Some("cyclic") => Distribution::Cyclic,
                    _ => usage(),
                }
            }
            "--tuning" => {
                args.tuning = match it.next().as_deref() {
                    Some("scalar") => Tuning::new(),
                    Some("auto") => Tuning::auto(),
                    _ => usage(),
                }
            }
            "--run" => args.run = true,
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') && args.file.is_empty() => args.file = f.to_string(),
            _ => usage(),
        }
    }
    if args.file.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("threadedc: cannot read `{}`: {e}", args.file);
            return ExitCode::from(2);
        }
    };

    let compiled = match compile(&src) {
        Ok(c) => c,
        Err(d) => {
            // The span-carrying diagnostic is the contract: file, then
            // `line L:C: message`.
            eprintln!("{}: error: {d}", args.file);
            return ExitCode::FAILURE;
        }
    };

    println!("== {} ==", args.file);
    println!("-- reference-group report --");
    for line in &compiled.log {
        println!("{line}");
    }

    let phased = compiled
        .plan
        .iter()
        .filter(|p| matches!(p, LoopPlan::Phased(_)))
        .count();
    let regular = compiled.plan.len() - phased;
    println!("-- plan: {phased} phased loop(s), {regular} regular loop(s) --");

    let strat = StrategyConfig::new(args.procs, args.k, args.dist, 1);
    let mut b = synthetic_bindings(&compiled.program, args.size);
    match compiled.flat_summaries(&mut b, &strat) {
        Ok(summaries) => {
            for (line, s) in &summaries {
                println!("loop@{line}: flat plan {s}");
            }
        }
        Err(d) => {
            eprintln!("{}: error: {d}", args.file);
            return ExitCode::FAILURE;
        }
    }

    if args.run {
        let mut b = synthetic_bindings(&compiled.program, args.size);
        let engine =
            PhasedEngine::new(ExecutionConfig::sim(SimConfig::default()).with_tuning(args.tuning));
        match compiled.execute_flat(&mut b, &strat, &engine) {
            Ok(rep) => {
                println!(
                    "-- run (sim, synthetic bindings): {} cycles, {} phased / {} regular --",
                    rep.time_cycles, rep.phased_loops, rep.regular_loops
                );
                let mut names: Vec<&String> = b.f64s.keys().collect();
                names.sort();
                for name in names {
                    let v = &b.f64s[name];
                    let sum: f64 = v.iter().sum();
                    println!("{name}[{}]: sum={sum:.6}", v.len());
                }
            }
            Err(d) => {
                eprintln!("{}: error: {d}", args.file);
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}
