//! Chrome `trace_event` JSON export (and the matching hand validator).
//!
//! The emitted document is the "JSON Object Format" the Chrome tracing
//! UI and Perfetto accept: `{"traceEvents": [...], ...}`. Paired kinds
//! (`PhaseEnter`/`PhaseExit`, `CopyEnter`/`CopyExit`,
//! `FiberFire`/`FiberRetire`) become complete (`"ph":"X"`) duration
//! events; everything else becomes an instant (`"ph":"i"`). Timestamps
//! are emitted in the trace's own unit as microseconds — for simulator
//! traces one "µs" is one simulated cycle, which keeps the viewer's
//! zoom arithmetic exact. Everything is hand-written: the workspace is
//! hermetic and carries no serde.

use crate::{Timeline, TraceEvent, TraceKind};

fn push_args(out: &mut String, kind: &TraceKind) {
    let [a, b] = kind.args();
    out.push_str("{\"");
    out.push_str(a.0);
    out.push_str("\":");
    out.push_str(&a.1.to_string());
    if !b.0.is_empty() {
        out.push_str(",\"");
        out.push_str(b.0);
        out.push_str("\":");
        out.push_str(&b.1.to_string());
    }
    out.push('}');
}

#[allow(clippy::too_many_arguments)]
fn push_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ph: char,
    ts: u64,
    dur: Option<u64>,
    node: u32,
    kind: &TraceKind,
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(&format!(
        "    {{\"name\":\"{name}\",\"cat\":\"earth\",\"ph\":\"{ph}\",\"ts\":{ts},"
    ));
    if let Some(d) = dur {
        out.push_str(&format!("\"dur\":{d},"));
    }
    if ph == 'i' {
        out.push_str("\"s\":\"t\",");
    }
    out.push_str(&format!("\"pid\":0,\"tid\":{node},\"args\":"));
    push_args(out, kind);
    out.push('}');
}

/// Serialize `events` as a Chrome `trace_event` JSON document.
///
/// Phase, copy-loop and blocked spans come from folding the stream
/// through [`Timeline`]; fiber executions pair `FiberFire` with the
/// matching `FiberRetire`; the remaining kinds are instants.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\n  \"traceEvents\": [\n");
    let mut first = true;

    for span in &Timeline::from_events(events).spans {
        let kind = TraceKind::PhaseEnter {
            sweep: span.sweep,
            phase: span.phase,
        };
        push_event(
            &mut out,
            &mut first,
            span.kind.label(),
            'X',
            span.start,
            Some(span.duration()),
            span.node,
            &kind,
        );
    }

    for ev in events {
        match ev.kind {
            // Consumed by the span pass above.
            TraceKind::PhaseEnter { .. }
            | TraceKind::PhaseExit { .. }
            | TraceKind::CopyEnter { .. }
            | TraceKind::CopyExit { .. }
            | TraceKind::FiberFire { .. } => {}
            TraceKind::FiberRetire { exec, .. } => {
                push_event(
                    &mut out,
                    &mut first,
                    "fiber",
                    'X',
                    ev.ts.saturating_sub(exec),
                    Some(exec),
                    ev.node,
                    &ev.kind,
                );
            }
            _ => {
                push_event(
                    &mut out,
                    &mut first,
                    ev.kind.name(),
                    'i',
                    ev.ts,
                    None,
                    ev.node,
                    &ev.kind,
                );
            }
        }
    }

    out.push_str("\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n");
    out
}

// ---------------------------------------------------------------------
// Hand validator: a minimal recursive-descent JSON parser plus the
// structural checks a trace_event consumer relies on. No serde.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("JSON error at byte {}: {msg}", self.i))
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.s.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .s
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("JSON error at byte {start}: bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.i).copied() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.s.get(self.i).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => out.push(c),
                                None => return self.err("bad \\u escape"),
                            }
                            self.i += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    // Copy the raw byte; multi-byte UTF-8 sequences pass
                    // through unmodified.
                    let rest = &self.s[self.i..];
                    let ch_len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    match std::str::from_utf8(&rest[..ch_len.min(rest.len())]) {
                        Ok(chunk) => out.push_str(chunk),
                        Err(_) => return self.err("invalid UTF-8"),
                    }
                    self.i += ch_len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn document(&mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.i != self.s.len() {
            return self.err("trailing garbage");
        }
        Ok(v)
    }
}

/// Parse `json` and check it is a structurally valid Chrome
/// `trace_event` document: a top-level object with a `traceEvents`
/// array whose members each carry `name`/`ph` strings and numeric
/// `ts`/`pid`/`tid`, with `"ph":"X"` events also carrying a numeric
/// `dur`. Returns the number of events.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let doc = Parser {
        s: json.as_bytes(),
        i: 0,
    }
    .document()?;
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        Some(_) => return Err("traceEvents is not an array".into()),
        None => return Err("missing traceEvents".into()),
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = match ev.get("ph") {
            Some(Json::Str(s)) if !s.is_empty() => s.clone(),
            _ => return Err(format!("event {i}: missing/empty ph")),
        };
        if !matches!(ev.get("name"), Some(Json::Str(s)) if !s.is_empty()) {
            return Err(format!("event {i}: missing/empty name"));
        }
        for field in ["ts", "pid", "tid"] {
            match ev.get(field) {
                Some(Json::Num(n)) if n.is_finite() => {}
                _ => return Err(format!("event {i}: missing numeric {field}")),
            }
        }
        if ph == "X" && !matches!(ev.get("dur"), Some(Json::Num(n)) if n.is_finite() && *n >= 0.0) {
            return Err(format!("event {i}: X event without numeric dur"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceEvent, TraceKind};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::new(0, 0, TraceKind::PhaseEnter { sweep: 0, phase: 0 }),
            TraceEvent::new(4, 0, TraceKind::CopyEnter { sweep: 0, phase: 0 }),
            TraceEvent::new(6, 0, TraceKind::CopyExit { sweep: 0, phase: 0 }),
            TraceEvent::new(
                9,
                0,
                TraceKind::MsgSend {
                    to_node: 1,
                    bytes: 64,
                },
            ),
            TraceEvent::new(10, 0, TraceKind::PhaseExit { sweep: 0, phase: 0 }),
            TraceEvent::new(12, 1, TraceKind::FiberRetire { slot: 3, exec: 7 }),
        ]
    }

    #[test]
    fn exported_trace_validates() {
        let json = chrome_trace_json(&sample_events());
        let n = validate_chrome_trace(&json).expect("valid");
        // 3 spans (compute, copy, compute) + 1 instant + 1 fiber X.
        assert_eq!(n, 5);
    }

    #[test]
    fn empty_trace_validates() {
        let json = chrome_trace_json(&[]);
        assert_eq!(validate_chrome_trace(&json), Ok(0));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("").is_err());
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": [{\"ph\":\"i\"}]}").is_err());
        assert!(
            validate_chrome_trace(
                "{\"traceEvents\": [{\"name\":\"x\",\"ph\":\"X\",\"ts\":1,\"pid\":0,\"tid\":0}]}"
            )
            .is_err(),
            "X without dur must fail"
        );
        assert!(validate_chrome_trace("{\"traceEvents\": []} garbage").is_err());
    }

    #[test]
    fn validator_accepts_hand_written_document() {
        let doc = r#"{"traceEvents":[
            {"name":"compute","ph":"X","ts":0,"dur":10,"pid":0,"tid":2,"args":{"sweep":0}},
            {"name":"sync","ph":"i","ts":4,"s":"t","pid":0,"tid":1,"args":{}}
        ],"displayTimeUnit":"ms"}"#;
        assert_eq!(validate_chrome_trace(doc), Ok(2));
    }

    #[test]
    fn parser_handles_strings_and_escapes() {
        let doc = r#"{"traceEvents":[{"name":"a\"b\\cA","ph":"i","ts":1.5e2,"pid":0,"tid":0}]}"#;
        assert_eq!(validate_chrome_trace(doc), Ok(1));
    }
}
