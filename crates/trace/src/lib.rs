//! # trace — structured tracing and metrics for the EARTH reproduction
//!
//! The paper's claims are about *where time goes*: ring-communication
//! overlap under `k`-phase rotation, LightInspector cost, first-loop
//! vs. copy-loop balance. This crate gives every backend and engine a
//! shared, zero-dependency vocabulary for reporting that:
//!
//! * [`TraceEvent`] — a typed, `Copy` event (fiber fire/retire, sync,
//!   message send/recv with byte counts, phase enter/exit, portion
//!   rotation, inspector stage, fault injection, recovery rungs,
//!   watchdog heartbeats), stamped with a backend-defined timestamp:
//!   simulated **cycles** on the simulator, monotonic **nanoseconds**
//!   on the native backend.
//! * [`TraceSink`] — where events go while the run executes.
//!   [`NullSink`] is the always-off fast path (callers guard event
//!   construction on [`TraceSink::enabled`], so an untraced run pays
//!   one predictable branch); [`RingSink`] keeps per-node bounded ring
//!   buffers; [`CsvSink`] adds a machine-readable text rendering.
//! * [`Timeline`] — folds an event stream into per-processor,
//!   per-phase spans (compute vs. copy-loop vs. blocked-on-rotation)
//!   and renders the plain-text phase table the `--trace` flag prints.
//! * [`MetricsRegistry`] — named counters and gauges merged into a
//!   run's outcome.
//! * [`chrome`] — a hand-written (serde-free) Chrome `trace_event`
//!   JSON exporter whose output loads in `chrome://tracing` and
//!   Perfetto, plus the matching hand validator.
//!
//! Determinism contract: recording an event never consults a clock —
//! the *caller* supplies the timestamp — so on the deterministic
//! simulator the drained event stream is byte-identical across runs
//! with the same seed.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::Mutex;

pub mod chrome;
pub mod timeline;

pub use chrome::{chrome_trace_json, validate_chrome_trace};
pub use timeline::{Span, SpanKind, Timeline};

/// The `node` id used for machine-level events that belong to no single
/// node (recovery rungs, watchdog heartbeats).
pub const RUN_NODE: u32 = u32::MAX;

/// Which fault the injection layer fired (mirrors
/// `earth_model::faults::MessageFault` plus fiber faults, without
/// depending on that crate — `trace` sits below everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A message was silently dropped.
    MsgDrop,
    /// A message was delayed.
    MsgDelay,
    /// A message was reordered behind later traffic.
    MsgReorder,
    /// A message was delivered twice.
    MsgDuplicate,
    /// A fiber body was made to fail.
    Fiber,
}

/// What happened. Every variant is plain old data so events stay `Copy`
/// and ring buffers never allocate per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A fiber's sync slot reached zero and its body started running.
    FiberFire { slot: u32 },
    /// The fiber body finished; `exec` is its execution time in the
    /// timestamp unit (cycles on the simulator).
    FiberRetire { slot: u32, exec: u64 },
    /// A `SYNC` EARTH operation was issued toward `to_node`.
    Sync { to_node: u32, slot: u32 },
    /// A `DATA_SYNC`/`BLKMOV` payload of `bytes` left for `to_node`.
    MsgSend { to_node: u32, bytes: u64 },
    /// A payload of `bytes` arrived from `from_node`.
    MsgRecv { from_node: u32, bytes: u64 },
    /// A rotating-portion phase began on this node.
    PhaseEnter { sweep: u32, phase: u32 },
    /// The phase's work (both loops) finished on this node.
    PhaseExit { sweep: u32, phase: u32 },
    /// The copy loop (folding a received portion / staging read state)
    /// began within the surrounding phase.
    CopyEnter { sweep: u32, phase: u32 },
    /// The copy loop ended.
    CopyExit { sweep: u32, phase: u32 },
    /// This node forwarded portion `portion` to `to_node` on the ring.
    PortionRotate { portion: u32, to_node: u32 },
    /// The LightInspector completed pass `stage` of its pipeline.
    InspectorStage { stage: u32 },
    /// The fault-injection layer fired.
    FaultInjected { kind: FaultKind },
    /// The recovery ladder started attempt `attempt` (0-based); an
    /// `attempt` of `u32::MAX` marks the fall-back-to-sequential rung.
    RecoveryRung { attempt: u32 },
    /// The native watchdog sampled the shared progress counter.
    WatchdogHeartbeat { progress: u64 },
    /// A native node thread found every inbound lane empty and parked.
    NodeParked,
    /// The node thread resumed after parking for `parked_ns`
    /// nanoseconds (woken by a producer or by the park timeout).
    NodeUnparked { parked_ns: u64 },
}

impl TraceKind {
    /// Short stable name, used by the CSV and Chrome exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::FiberFire { .. } => "fiber_fire",
            TraceKind::FiberRetire { .. } => "fiber_retire",
            TraceKind::Sync { .. } => "sync",
            TraceKind::MsgSend { .. } => "msg_send",
            TraceKind::MsgRecv { .. } => "msg_recv",
            TraceKind::PhaseEnter { .. } => "phase_enter",
            TraceKind::PhaseExit { .. } => "phase_exit",
            TraceKind::CopyEnter { .. } => "copy_enter",
            TraceKind::CopyExit { .. } => "copy_exit",
            TraceKind::PortionRotate { .. } => "portion_rotate",
            TraceKind::InspectorStage { .. } => "inspector_stage",
            TraceKind::FaultInjected { .. } => "fault_injected",
            TraceKind::RecoveryRung { .. } => "recovery_rung",
            TraceKind::WatchdogHeartbeat { .. } => "watchdog_heartbeat",
            TraceKind::NodeParked => "node_parked",
            TraceKind::NodeUnparked { .. } => "node_unparked",
        }
    }

    /// The two numeric arguments the exporters attach, with names.
    pub fn args(&self) -> [(&'static str, u64); 2] {
        match *self {
            TraceKind::FiberFire { slot } => [("slot", slot as u64), ("", 0)],
            TraceKind::FiberRetire { slot, exec } => [("slot", slot as u64), ("exec", exec)],
            TraceKind::Sync { to_node, slot } => [("to", to_node as u64), ("slot", slot as u64)],
            TraceKind::MsgSend { to_node, bytes } => [("to", to_node as u64), ("bytes", bytes)],
            TraceKind::MsgRecv { from_node, bytes } => {
                [("from", from_node as u64), ("bytes", bytes)]
            }
            TraceKind::PhaseEnter { sweep, phase }
            | TraceKind::PhaseExit { sweep, phase }
            | TraceKind::CopyEnter { sweep, phase }
            | TraceKind::CopyExit { sweep, phase } => {
                [("sweep", sweep as u64), ("phase", phase as u64)]
            }
            TraceKind::PortionRotate { portion, to_node } => {
                [("portion", portion as u64), ("to", to_node as u64)]
            }
            TraceKind::InspectorStage { stage } => [("stage", stage as u64), ("", 0)],
            TraceKind::FaultInjected { kind } => [("kind", kind as u64), ("", 0)],
            TraceKind::RecoveryRung { attempt } => [("attempt", attempt as u64), ("", 0)],
            TraceKind::WatchdogHeartbeat { progress } => [("progress", progress), ("", 0)],
            TraceKind::NodeParked => [("", 0), ("", 0)],
            TraceKind::NodeUnparked { parked_ns } => [("parked_ns", parked_ns), ("", 0)],
        }
    }
}

/// One structured event: a timestamp (backend-defined unit), the node
/// it happened on ([`RUN_NODE`] for machine-level events), and what
/// happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    pub ts: u64,
    pub node: u32,
    pub kind: TraceKind,
}

impl TraceEvent {
    pub fn new(ts: u64, node: u32, kind: TraceKind) -> Self {
        TraceEvent { ts, node, kind }
    }

    /// One CSV line: `ts,node,name,arg1name,arg1,arg2name,arg2`.
    pub fn csv_line(&self) -> String {
        let [a, b] = self.kind.args();
        format!(
            "{},{},{},{},{},{},{}",
            self.ts,
            self.node,
            self.kind.name(),
            a.0,
            a.1,
            b.0,
            b.1
        )
    }
}

/// Where events go during a run.
///
/// `record` takes `&self` so one sink can be shared across the native
/// backend's node threads behind an `Arc`. Hot paths must guard event
/// construction on [`enabled`](TraceSink::enabled) — with [`NullSink`]
/// that reduces the whole tracing layer to a single well-predicted
/// branch per potential event.
pub trait TraceSink: Send + Sync {
    /// Whether events are being kept. Callers skip event construction
    /// entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event. May drop it (bounded sinks overwrite oldest).
    fn record(&self, ev: TraceEvent);

    /// Snapshot all retained events, merged across nodes in timestamp
    /// order (stable: per-node recording order breaks ties).
    fn drain(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Events this sink has discarded (bounded sinks overwrite oldest).
    /// Zero for unbounded or always-off sinks. Surfaced as the
    /// `trace_dropped_events` counter in run metrics so a budgeted ring
    /// at large node counts degrades *visibly*, never silently.
    fn dropped(&self) -> u64 {
        0
    }
}

/// The always-off sink: `enabled()` is `false` and `record` is a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn record(&self, _ev: TraceEvent) {}
}

struct NodeRing {
    buf: std::collections::VecDeque<TraceEvent>,
    dropped: u64,
}

/// Per-node bounded ring buffers. Each node's events go to that node's
/// own ring (one uncontended mutex per node — simulator shards and
/// native threads each write only their own nodes' rings), so
/// recording is lock-cheap. When a ring is full the **oldest** event is
/// overwritten and counted in [`RingSink::dropped`].
pub struct RingSink {
    rings: Vec<Mutex<NodeRing>>,
    capacity: usize,
}

impl RingSink {
    /// Rings for `num_nodes` nodes plus one machine-level ring (events
    /// tagged [`RUN_NODE`] or any out-of-range node land there), each
    /// holding at most `capacity` events.
    pub fn new(num_nodes: usize, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            rings: (0..=num_nodes)
                .map(|_| {
                    Mutex::new(NodeRing {
                        buf: std::collections::VecDeque::with_capacity(capacity.min(1024)),
                        dropped: 0,
                    })
                })
                .collect(),
            capacity,
        }
    }

    fn ring_of(&self, node: u32) -> &Mutex<NodeRing> {
        let i = (node as usize).min(self.rings.len() - 1);
        &self.rings[i]
    }

    /// Total events overwritten because a ring was full.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.lock().unwrap().dropped).sum()
    }

    /// The per-node ring capacity this sink was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl TraceSink for RingSink {
    fn record(&self, ev: TraceEvent) {
        let mut ring = self.ring_of(ev.node).lock().unwrap();
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(ev);
    }

    fn drain(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for r in &self.rings {
            all.extend(r.lock().unwrap().buf.iter().copied());
        }
        // Stable: per-ring recording order breaks timestamp ties, and
        // rings are visited in node order, so the merged stream is a
        // pure function of what was recorded.
        all.sort_by_key(|e| e.ts);
        all
    }

    fn dropped(&self) -> u64 {
        RingSink::dropped(self)
    }
}

/// A [`RingSink`] that can also render its contents as CSV.
pub struct CsvSink {
    inner: RingSink,
}

impl CsvSink {
    pub fn new(num_nodes: usize, capacity: usize) -> Self {
        CsvSink {
            inner: RingSink::new(num_nodes, capacity),
        }
    }

    /// The retained events as CSV with a header line.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("ts,node,event,arg1,val1,arg2,val2\n");
        for ev in self.inner.drain() {
            out.push_str(&ev.csv_line());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for CsvSink {
    fn record(&self, ev: TraceEvent) {
        self.inner.record(ev);
    }
    fn drain(&self) -> Vec<TraceEvent> {
        self.inner.drain()
    }
    fn dropped(&self) -> u64 {
        self.inner.dropped()
    }
}

/// Render a drained event stream as CSV (header + one line per event).
pub fn events_to_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("ts,node,event,arg1,val1,arg2,val2\n");
    for ev in events {
        out.push_str(&ev.csv_line());
        out.push('\n');
    }
    out
}

/// Named counters and gauges describing one run, with deterministic
/// (sorted) iteration order. Counters accumulate; gauges overwrite.
///
/// Names are either plain (`"messages"`) or labeled
/// (`"jobs_ok{tenant=acme}"`, built by [`Self::count_labeled`] /
/// [`Self::gauge_labeled`]) — the label syntax is part of the rendered
/// name, so exports and `render` need no schema change for multi-tenant
/// serving metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<Cow<'static, str>, u64>,
    gauges: BTreeMap<Cow<'static, str>, f64>,
}

/// Render a `name{label=value}` metric key. Label values are sanitized
/// (braces, `=`, and newlines replaced) so a hostile tenant id cannot
/// forge a different metric name.
pub fn labeled_key(name: &str, label: &str, value: &str) -> String {
    let mut clean = String::with_capacity(value.len());
    for c in value.chars() {
        clean.push(match c {
            '{' | '}' | '=' | '\n' | '\r' | ',' => '_',
            c => c,
        });
    }
    format!("{name}{{{label}={clean}}}")
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (creating it at zero).
    pub fn count(&mut self, name: impl Into<Cow<'static, str>>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    /// Add `delta` to the labeled counter `name{label=value}` — e.g.
    /// `count_labeled("jobs_ok", "tenant", "acme", 1)`.
    pub fn count_labeled(&mut self, name: &str, label: &str, value: &str, delta: u64) {
        self.count(labeled_key(name, label, value), delta);
    }

    /// Set gauge `name` to `value`.
    pub fn gauge(&mut self, name: impl Into<Cow<'static, str>>, value: f64) {
        self.gauges.insert(name.into(), value);
    }

    /// Set the labeled gauge `name{label=value}`.
    pub fn gauge_labeled(&mut self, name: &str, label: &str, lvalue: &str, value: f64) {
        self.gauge(labeled_key(name, label, lvalue), value);
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k.as_ref(), v))
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.gauges.iter().map(|(k, &v)| (k.as_ref(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Merge another registry into this one (counters add, gauges
    /// overwrite) — used when a recovery ladder accumulates attempts
    /// and when a server folds per-job metrics into its registry.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
    }

    /// Two-column plain-text rendering, counters then gauges.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("  {k:<28} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("  {k:<28} {v:.6}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, node: u32) -> TraceEvent {
        TraceEvent::new(
            ts,
            node,
            TraceKind::Sync {
                to_node: 0,
                slot: 1,
            },
        )
    }

    #[test]
    fn null_sink_is_disabled_and_empty() {
        let s = NullSink;
        assert!(!s.enabled());
        s.record(ev(1, 0));
        assert!(s.drain().is_empty());
    }

    #[test]
    fn ring_sink_orders_by_timestamp_across_nodes() {
        let s = RingSink::new(2, 16);
        s.record(ev(5, 1));
        s.record(ev(3, 0));
        s.record(ev(5, 0));
        let got = s.drain();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].ts, 3);
        // Tie at ts=5: node order breaks it deterministically.
        assert_eq!((got[1].ts, got[1].node), (5, 0));
        assert_eq!((got[2].ts, got[2].node), (5, 1));
    }

    #[test]
    fn ring_sink_bounds_and_counts_drops() {
        let s = RingSink::new(1, 2);
        for t in 0..5 {
            s.record(ev(t, 0));
        }
        let got = s.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].ts, 3); // oldest overwritten
        assert_eq!(s.dropped(), 3);
    }

    #[test]
    fn run_level_events_use_overflow_ring() {
        let s = RingSink::new(2, 4);
        s.record(TraceEvent::new(
            1,
            RUN_NODE,
            TraceKind::RecoveryRung { attempt: 0 },
        ));
        assert_eq!(s.drain().len(), 1);
    }

    #[test]
    fn csv_sink_renders_header_and_lines() {
        let s = CsvSink::new(1, 8);
        s.record(ev(7, 0));
        let csv = s.to_csv();
        assert!(csv.starts_with("ts,node,event,"));
        assert!(csv.contains("7,0,sync,to,0,slot,1"));
    }

    #[test]
    fn labeled_metrics_key_by_tenant_and_sanitize() {
        let mut m = MetricsRegistry::new();
        m.count_labeled("jobs_ok", "tenant", "acme", 2);
        m.count_labeled("jobs_ok", "tenant", "acme", 1);
        m.count_labeled("jobs_ok", "tenant", "zeta", 5);
        m.gauge_labeled("queue_depth", "tenant", "acme", 3.0);
        assert_eq!(m.counter("jobs_ok{tenant=acme}"), Some(3));
        assert_eq!(m.counter("jobs_ok{tenant=zeta}"), Some(5));
        assert_eq!(m.gauge_value("queue_depth{tenant=acme}"), Some(3.0));
        // A hostile tenant id cannot forge a different metric name.
        m.count_labeled("jobs_ok", "tenant", "x}\njobs_ok{tenant=y", 1);
        assert_eq!(m.counter("jobs_ok{tenant=x__jobs_ok_tenant_y}"), Some(1));
        assert!(m.render().contains("jobs_ok{tenant=acme}"));
        // Labeled counters survive a merge.
        let mut sum = MetricsRegistry::new();
        sum.count_labeled("jobs_ok", "tenant", "acme", 1);
        sum.merge(&m);
        assert_eq!(sum.counter("jobs_ok{tenant=acme}"), Some(4));
    }

    #[test]
    fn metrics_counters_add_and_gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.count("messages", 2);
        m.count("messages", 3);
        m.gauge("seconds", 1.0);
        m.gauge("seconds", 2.0);
        assert_eq!(m.counter("messages"), Some(5));
        assert_eq!(m.gauge_value("seconds"), Some(2.0));
        let mut other = MetricsRegistry::new();
        other.count("messages", 1);
        m.merge(&other);
        assert_eq!(m.counter("messages"), Some(6));
        assert!(m.render().contains("messages"));
    }
}
