//! Fold an event stream into per-processor, per-phase spans.
//!
//! The phased executor emits `PhaseEnter`/`PhaseExit` around each
//! rotating-portion phase and `CopyEnter`/`CopyExit` around its copy
//! loop. [`Timeline::from_events`] turns those into [`Span`]s of three
//! kinds per node:
//!
//! * **Compute** — inside a phase, outside the copy loop (the paper's
//!   first loop: local contributions into the staged portion);
//! * **CopyLoop** — inside the copy loop (folding arrived portions /
//!   staging replicated read state);
//! * **Blocked** — between one phase's exit and the next phase's entry
//!   on the same node: waiting for the ring rotation to deliver the
//!   next portion.

use crate::{TraceEvent, TraceKind};

/// How the cycles in a [`Span`] were spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    Compute,
    CopyLoop,
    Blocked,
}

impl SpanKind {
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::CopyLoop => "copy-loop",
            SpanKind::Blocked => "blocked",
        }
    }
}

/// One contiguous stretch of one node's time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub node: u32,
    pub sweep: u32,
    pub phase: u32,
    pub kind: SpanKind,
    pub start: u64,
    pub end: u64,
}

impl Span {
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Per-processor, per-phase spans folded from a trace, plus the totals
/// the plain-text table prints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    pub spans: Vec<Span>,
    /// Highest real node id seen, plus one (machine-level events are
    /// excluded).
    pub num_nodes: usize,
    /// Last event timestamp seen (any kind) — the run's extent in the
    /// trace's time unit.
    pub extent: u64,
}

#[derive(Default, Clone, Copy)]
struct Open {
    sweep: u32,
    phase: u32,
    since: u64,
    prev_exit: Option<u64>,
    in_copy: bool,
    copy_since: u64,
}

impl Timeline {
    /// Fold `events` (any order-stable stream, e.g. a
    /// [`TraceSink::drain`](crate::TraceSink::drain) result) into spans.
    pub fn from_events(events: &[TraceEvent]) -> Timeline {
        let mut tl = Timeline::default();
        let mut open: Vec<Option<Open>> = Vec::new();
        for ev in events {
            tl.extent = tl.extent.max(ev.ts);
            if ev.node == crate::RUN_NODE {
                continue;
            }
            let n = ev.node as usize;
            if n >= open.len() {
                open.resize(n + 1, None);
            }
            tl.num_nodes = tl.num_nodes.max(n + 1);
            match ev.kind {
                TraceKind::PhaseEnter { sweep, phase } => {
                    let prev_exit = open[n].and_then(|o| o.prev_exit);
                    if let Some(exit) = prev_exit {
                        if ev.ts > exit {
                            tl.spans.push(Span {
                                node: ev.node,
                                sweep,
                                phase,
                                kind: SpanKind::Blocked,
                                start: exit,
                                end: ev.ts,
                            });
                        }
                    }
                    open[n] = Some(Open {
                        sweep,
                        phase,
                        since: ev.ts,
                        prev_exit,
                        in_copy: false,
                        copy_since: 0,
                    });
                }
                TraceKind::CopyEnter { .. } => {
                    if let Some(o) = open[n].as_mut() {
                        if !o.in_copy {
                            if ev.ts > o.since {
                                tl.spans.push(Span {
                                    node: ev.node,
                                    sweep: o.sweep,
                                    phase: o.phase,
                                    kind: SpanKind::Compute,
                                    start: o.since,
                                    end: ev.ts,
                                });
                            }
                            o.in_copy = true;
                            o.copy_since = ev.ts;
                        }
                    }
                }
                TraceKind::CopyExit { .. } => {
                    if let Some(o) = open[n].as_mut() {
                        if o.in_copy {
                            if ev.ts > o.copy_since {
                                tl.spans.push(Span {
                                    node: ev.node,
                                    sweep: o.sweep,
                                    phase: o.phase,
                                    kind: SpanKind::CopyLoop,
                                    start: o.copy_since,
                                    end: ev.ts,
                                });
                            }
                            o.in_copy = false;
                            o.since = ev.ts;
                        }
                    }
                }
                TraceKind::PhaseExit { .. } => {
                    if let Some(o) = open[n].take() {
                        let start = if o.in_copy { o.copy_since } else { o.since };
                        let kind = if o.in_copy {
                            SpanKind::CopyLoop
                        } else {
                            SpanKind::Compute
                        };
                        if ev.ts > start {
                            tl.spans.push(Span {
                                node: ev.node,
                                sweep: o.sweep,
                                phase: o.phase,
                                kind,
                                start,
                                end: ev.ts,
                            });
                        }
                        // Tombstone: only `prev_exit` stays live until
                        // the next PhaseEnter overwrites it.
                        open[n] = Some(Open {
                            prev_exit: Some(ev.ts),
                            in_copy: false,
                            ..o
                        });
                    }
                }
                _ => {}
            }
        }
        tl
    }

    /// Total duration attributed to `kind` on `node`.
    pub fn node_total(&self, node: u32, kind: SpanKind) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.node == node && s.kind == kind)
            .map(|s| s.duration())
            .sum()
    }

    /// Total duration attributed to `kind` across all nodes.
    pub fn total(&self, kind: SpanKind) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.duration())
            .sum()
    }

    /// The plain-text per-phase table the `--trace` flag prints: one
    /// row per node with compute / copy-loop / blocked totals and
    /// percentages, then a machine-wide summary line.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {:<6} {:>14} {:>14} {:>14} {:>9} {:>9} {:>9}\n",
            "node", "compute", "copy-loop", "blocked", "comp%", "copy%", "blk%"
        ));
        let pct = |part: u64, whole: u64| {
            if whole == 0 {
                0.0
            } else {
                100.0 * part as f64 / whole as f64
            }
        };
        for n in 0..self.num_nodes {
            let c = self.node_total(n as u32, SpanKind::Compute);
            let y = self.node_total(n as u32, SpanKind::CopyLoop);
            let b = self.node_total(n as u32, SpanKind::Blocked);
            let tot = c + y + b;
            out.push_str(&format!(
                "  {:<6} {:>14} {:>14} {:>14} {:>8.1}% {:>8.1}% {:>8.1}%\n",
                n,
                c,
                y,
                b,
                pct(c, tot),
                pct(y, tot),
                pct(b, tot)
            ));
        }
        let (c, y, b) = (
            self.total(SpanKind::Compute),
            self.total(SpanKind::CopyLoop),
            self.total(SpanKind::Blocked),
        );
        let tot = c + y + b;
        out.push_str(&format!(
            "  {:<6} {:>14} {:>14} {:>14} {:>8.1}% {:>8.1}% {:>8.1}%\n",
            "all",
            c,
            y,
            b,
            pct(c, tot),
            pct(y, tot),
            pct(b, tot)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;

    fn phase(node: u32, sweep: u32, phase_: u32, enter: u64, exit: u64) -> Vec<TraceEvent> {
        vec![
            TraceEvent::new(
                enter,
                node,
                TraceKind::PhaseEnter {
                    sweep,
                    phase: phase_,
                },
            ),
            TraceEvent::new(
                exit,
                node,
                TraceKind::PhaseExit {
                    sweep,
                    phase: phase_,
                },
            ),
        ]
    }

    #[test]
    fn folds_phases_into_compute_and_blocked() {
        let mut evs = phase(0, 0, 0, 10, 30);
        evs.extend(phase(0, 0, 1, 50, 60)); // 20-cycle gap → blocked
        let tl = Timeline::from_events(&evs);
        assert_eq!(tl.node_total(0, SpanKind::Compute), 20 + 10);
        assert_eq!(tl.node_total(0, SpanKind::Blocked), 20);
        assert_eq!(tl.num_nodes, 1);
        assert_eq!(tl.extent, 60);
    }

    #[test]
    fn copy_loop_splits_a_phase() {
        let evs = vec![
            TraceEvent::new(0, 2, TraceKind::PhaseEnter { sweep: 0, phase: 0 }),
            TraceEvent::new(8, 2, TraceKind::CopyEnter { sweep: 0, phase: 0 }),
            TraceEvent::new(13, 2, TraceKind::CopyExit { sweep: 0, phase: 0 }),
            TraceEvent::new(20, 2, TraceKind::PhaseExit { sweep: 0, phase: 0 }),
        ];
        let tl = Timeline::from_events(&evs);
        assert_eq!(tl.node_total(2, SpanKind::Compute), 8 + 7);
        assert_eq!(tl.node_total(2, SpanKind::CopyLoop), 5);
        assert_eq!(tl.num_nodes, 3);
    }

    #[test]
    fn run_level_events_do_not_create_nodes() {
        let evs = vec![TraceEvent::new(
            5,
            crate::RUN_NODE,
            TraceKind::RecoveryRung { attempt: 0 },
        )];
        let tl = Timeline::from_events(&evs);
        assert_eq!(tl.num_nodes, 0);
        assert_eq!(tl.extent, 5);
    }

    #[test]
    fn table_renders_every_node_and_summary() {
        let mut evs = phase(0, 0, 0, 0, 10);
        evs.extend(phase(1, 0, 0, 0, 6));
        let tbl = Timeline::from_events(&evs).table();
        assert!(tbl.contains("compute"));
        assert_eq!(tbl.lines().count(), 4); // header + 2 nodes + all
    }
}
