//! The serde-free hand validator for Chrome `trace_event` JSON, run
//! against the exporter's own output and against documents a real
//! `--trace` invocation produces. `ci.sh` relies on this contract: the
//! `fig5 --trace` smoke writes a JSON file and validates it with
//! [`trace::validate_chrome_trace`], so any drift between exporter and
//! validator fails here first.

use trace::{chrome_trace_json, validate_chrome_trace, TraceEvent, TraceKind};

fn synthetic_run(nodes: u32, phases: u32) -> Vec<TraceEvent> {
    let mut evs = Vec::new();
    for n in 0..nodes {
        let mut t = (n as u64) * 3;
        for p in 0..phases {
            evs.push(TraceEvent::new(
                t,
                n,
                TraceKind::PhaseEnter { sweep: 0, phase: p },
            ));
            evs.push(TraceEvent::new(
                t + 10,
                n,
                TraceKind::CopyEnter { sweep: 0, phase: p },
            ));
            evs.push(TraceEvent::new(
                t + 14,
                n,
                TraceKind::CopyExit { sweep: 0, phase: p },
            ));
            evs.push(TraceEvent::new(
                t + 15,
                n,
                TraceKind::MsgSend {
                    to_node: (n + 1) % nodes,
                    bytes: 128,
                },
            ));
            evs.push(TraceEvent::new(
                t + 16,
                n,
                TraceKind::PortionRotate {
                    portion: p,
                    to_node: (n + 1) % nodes,
                },
            ));
            evs.push(TraceEvent::new(
                t + 20,
                n,
                TraceKind::PhaseExit { sweep: 0, phase: p },
            ));
            t += 25;
        }
        evs.push(TraceEvent::new(
            t,
            n,
            TraceKind::FiberRetire { slot: 0, exec: 9 },
        ));
    }
    evs.push(TraceEvent::new(
        1,
        trace::RUN_NODE,
        TraceKind::RecoveryRung { attempt: 0 },
    ));
    evs
}

#[test]
fn exporter_output_passes_the_validator() {
    let events = synthetic_run(4, 3);
    let json = chrome_trace_json(&events);
    let n = validate_chrome_trace(&json).expect("exporter must emit valid trace_event JSON");
    assert!(n > 0, "expected events in the document");
}

#[test]
fn validator_counts_match_expectations() {
    // One node, one phase, no copy loop: a single X span + instants.
    let events = vec![
        TraceEvent::new(0, 0, TraceKind::PhaseEnter { sweep: 0, phase: 0 }),
        TraceEvent::new(
            3,
            0,
            TraceKind::Sync {
                to_node: 0,
                slot: 1,
            },
        ),
        TraceEvent::new(8, 0, TraceKind::PhaseExit { sweep: 0, phase: 0 }),
    ];
    let json = chrome_trace_json(&events);
    assert_eq!(validate_chrome_trace(&json), Ok(2));
}

#[test]
fn corrupted_documents_are_rejected() {
    let json = chrome_trace_json(&synthetic_run(2, 1));
    // Truncate mid-document.
    let cut = &json[..json.len() / 2];
    assert!(validate_chrome_trace(cut).is_err());
    // Break the required ph field.
    let broken = json.replace("\"ph\":\"X\"", "\"ph\":\"\"");
    assert!(validate_chrome_trace(&broken).is_err());
}
