//! Parallel sim-core scaling benchmark: speedup-vs-procs and k-sweep
//! curves at 256 and 1024 simulated processors.
//!
//! The serial event loop caps every fig-4/5/6/7-style curve at the
//! speed of one host core walking one binary heap. This harness drives
//! the conservative time-window parallel core
//! (`SimConfig::host_threads`, DESIGN.md §17) over the paper's three
//! reduction families — the moldyn force loop, the euler edge loop, and
//! a power-law scatter — at P ∈ {8, 32, 64, 256, 1024} simulated procs
//! and k ∈ {1, 2, 4}, at 1, 2, and 4 host threads. For every point it
//! records host wall-clock and *simulated* cycles; the simulated cycles
//! must be byte-identical across host threads (the serial loop is the
//! oracle), which `--check` enforces together with value equality.
//!
//! Results land in `bench_results/BENCH_sim.json`
//! (`BENCH_sim_quick.json` in quick mode; see bench_results/README.md
//! for the schema).
//!
//! Modes:
//!   bench_sim                full sweep, writes the JSON
//!   REPRO_QUICK=1 ...        trimmed decks + P list (CI smoke)
//!   bench_sim --check        exit 1 on any parallel-vs-serial cycle or
//!                            value divergence; on a ≥4-core host also
//!                            require >1.5× wall-clock speedup at 4
//!                            threads on 256-proc moldyn (self-skips
//!                            with a log line on smaller hosts)

use std::fmt::Write as _;
use std::time::Instant;

use irred::{
    Distribution, EdgeKernel, ExecutionConfig, PhasedEngine, PhasedSpec, ReductionEngine,
    StrategyConfig,
};
use kernels::{EulerProblem, FamilyProblem, MolDynProblem};
use repro_bench::{detect_host_cores, quick, SimConfig};
use workloads::{Mesh, MolDyn, PowerLawGraph};

/// Host thread counts every (family, P, k) point is measured at.
const THREADS: [usize; 3] = [1, 2, 4];

struct Point {
    family: &'static str,
    procs: usize,
    k: usize,
    host_threads: usize,
    wall_ms: f64,
    sim_cycles: u64,
    /// Wall-clock speedup vs the 1-thread run of the same point.
    speedup: f64,
    /// Cycles and values bit-identical to the 1-thread run.
    check_ok: bool,
}

impl Point {
    fn render(&self) -> String {
        format!(
            "  {:<9} P={:<5} k={}  t={}  {:>9.1} ms  {:>12} cyc  x{:<5.2} {}",
            self.family,
            self.procs,
            self.k,
            self.host_threads,
            self.wall_ms,
            self.sim_cycles,
            self.speedup,
            if self.check_ok { "ok" } else { "<-- DIVERGED" }
        )
    }
}

/// One sim run; returns (wall ms, simulated cycles, values).
fn run_once<K: EdgeKernel>(
    spec: &PhasedSpec<K>,
    strat: &StrategyConfig,
    threads: usize,
) -> (f64, u64, Vec<Vec<f64>>) {
    let cfg = ExecutionConfig::sim(SimConfig::default().with_host_threads(threads));
    let start = Instant::now();
    let out = PhasedEngine::new(cfg).run(spec, strat).expect("sim run");
    let wall = start.elapsed().as_secs_f64() * 1e3;
    (wall, out.time_cycles, out.values)
}

/// Measure one (family, P, k) point at every thread count, checking the
/// parallel runs against the serial oracle.
fn sweep_point<K: EdgeKernel>(
    points: &mut Vec<Point>,
    family: &'static str,
    spec: &PhasedSpec<K>,
    procs: usize,
    k: usize,
) -> bool {
    let strat = StrategyConfig::new(procs, k, Distribution::Cyclic, 1);
    let (wall1, cycles1, values1) = run_once(spec, &strat, 1);
    points.push(Point {
        family,
        procs,
        k,
        host_threads: 1,
        wall_ms: wall1,
        sim_cycles: cycles1,
        speedup: 1.0,
        check_ok: true,
    });
    println!("{}", points.last().unwrap().render());
    let mut all_ok = true;
    for &t in &THREADS[1..] {
        let (wall, cycles, values) = run_once(spec, &strat, t);
        let check_ok = cycles == cycles1 && values == values1;
        all_ok &= check_ok;
        points.push(Point {
            family,
            procs,
            k,
            host_threads: t,
            wall_ms: wall,
            sim_cycles: cycles,
            speedup: wall1 / wall.max(1e-9),
            check_ok,
        });
        println!("{}", points.last().unwrap().render());
    }
    all_ok
}

fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn to_json(points: &[Point], all_ok: bool, gate: &str) -> String {
    let mut out = String::new();
    writeln!(out, "{{").unwrap();
    writeln!(out, "  \"schema\": 1,").unwrap();
    writeln!(out, "  \"tool\": \"bench_sim\",").unwrap();
    writeln!(out, "  \"git_sha\": \"{}\",", git_sha()).unwrap();
    writeln!(out, "  \"quick\": {},", quick()).unwrap();
    writeln!(out, "  \"host_cores\": {},", detect_host_cores()).unwrap();
    writeln!(out, "  \"check_ok\": {all_ok},").unwrap();
    writeln!(out, "  \"speedup_gate\": \"{gate}\",").unwrap();
    writeln!(out, "  \"points\": [").unwrap();
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        writeln!(
            out,
            "    {{ \"family\": \"{}\", \"procs\": {}, \"k\": {}, \"host_threads\": {}, \
             \"wall_ms\": {:.3}, \"sim_cycles\": {}, \"speedup\": {:.4}, \"check_ok\": {} }}{}",
            p.family,
            p.procs,
            p.k,
            p.host_threads,
            p.wall_ms,
            p.sim_cycles,
            p.speedup,
            p.check_ok,
            comma
        )
        .unwrap();
    }
    writeln!(out, "  ]").unwrap();
    writeln!(out, "}}").unwrap();
    out
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let q = quick();
    let cores = detect_host_cores();
    println!("=== parallel sim-core scaling (host_cores={cores}, quick={q}) ===");

    // Simulated-processor sweep. Quick mode keeps the 256-proc point:
    // the CI smoke is specifically a "does the windowed core still
    // scale-and-agree at 256 procs" check.
    let plist: &[usize] = if q {
        &[8, 256]
    } else {
        &[8, 32, 64, 256, 1024]
    };
    // Full k-sweep at small P; k = 2 (the paper's all-round best) at
    // the large points to keep the 1024-proc sweep affordable.
    let klist = |p: usize| -> &'static [usize] {
        if p <= 64 {
            &[1, 2, 4]
        } else {
            &[2]
        }
    };

    // Problem sizes: fixed per family, large enough that 1024 simulated
    // procs still all receive elements.
    let moldyn = MolDynProblem::from_config(MolDyn::fcc(if q { 4 } else { 8 }, 1.1));
    let euler_n = if q { 1_024 } else { 4_096 };
    let euler = EulerProblem::from_mesh(Mesh::generate(euler_n, euler_n * 4, 11), 11);
    let pl_n = if q { 1_024 } else { 4_096 };
    let powerlaw = FamilyProblem::from_family(
        PowerLawGraph::generate(pl_n, pl_n * 4, 1.5, 13)
            .expect("powerlaw deck")
            .to_family(13),
    );

    let mut points = Vec::new();
    let mut all_ok = true;
    for &p in plist {
        for &k in klist(p) {
            all_ok &= sweep_point(&mut points, "moldyn", &moldyn.spec, p, k);
            all_ok &= sweep_point(&mut points, "euler", &euler.spec, p, k);
            all_ok &= sweep_point(&mut points, "powerlaw", &powerlaw.spec, p, k);
        }
    }

    // The multi-core speedup gate: 256-proc moldyn, k=2, 4 host
    // threads. Same self-skip policy as the schema-2 native core
    // curves: a host without 4 cores cannot show parallel speedup, so
    // the gate logs and passes rather than failing on hardware.
    let mut gate_failed = false;
    let gate_point = points
        .iter()
        .find(|p| p.family == "moldyn" && p.procs == 256 && p.k == 2 && p.host_threads == 4);
    let gate = match (cores >= 4, gate_point) {
        (false, _) => {
            println!(
                "speedup gate: SKIPPED — host has {cores} core(s), cannot demonstrate \
                 4-thread wall-clock speedup (needs >= 4)"
            );
            format!("skipped: host has {cores} core(s)")
        }
        (true, None) => {
            println!("speedup gate: SKIPPED — 256-proc point not in this sweep");
            "skipped: 256-proc point not swept".to_string()
        }
        (true, Some(p)) if p.speedup > 1.5 => {
            println!(
                "speedup gate: PASSED — moldyn P=256 k=2 at 4 threads: x{:.2}",
                p.speedup
            );
            format!("passed: x{:.2}", p.speedup)
        }
        (true, Some(p)) => {
            println!(
                "speedup gate: FAILED — moldyn P=256 k=2 at 4 threads: x{:.2} (need > 1.5)",
                p.speedup
            );
            gate_failed = true;
            format!("failed: x{:.2}", p.speedup)
        }
    };

    // Quick mode writes its own file so the CI smoke never clobbers the
    // committed full-sweep report (same convention as BENCH_native).
    let path = if q {
        "bench_results/BENCH_sim_quick.json"
    } else {
        "bench_results/BENCH_sim.json"
    };
    std::fs::create_dir_all("bench_results").expect("mkdir bench_results");
    std::fs::write(path, to_json(&points, all_ok, &gate)).expect("write report");
    println!("report: {path}");

    if check {
        let diverged: Vec<&Point> = points.iter().filter(|p| !p.check_ok).collect();
        for p in &diverged {
            eprintln!(
                "check FAILED: {} P={} k={} t={}: simulated run diverged from serial",
                p.family, p.procs, p.k, p.host_threads
            );
        }
        if gate_failed {
            eprintln!("check FAILED: wall-clock speedup gate (see above)");
        }
        if !diverged.is_empty() || gate_failed {
            std::process::exit(1);
        }
        println!(
            "check: serial and parallel agree (cycles + values) at all {} points",
            points.len()
        );
    }
}
