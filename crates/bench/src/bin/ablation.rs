//! Ablations over the design choices DESIGN.md calls out.
//!
//! 1. **k sweep beyond {1,2,4}** — where does the overlap benefit stop
//!    paying for threading overhead? (The paper only tries 1, 2, 4.)
//! 2. **Numbering locality** — the same euler mesh with generator-order
//!    vs randomly shuffled node numbering: quantifies how much of the
//!    strategy's small-P overhead is a property of the dataset, the
//!    paper's own explanation for the moldyn-10K slowdowns.
//! 3. **Native backend** — the phased strategy on real host threads vs
//!    shared-memory atomics and replication, on a no-read-state kernel.

use std::sync::Arc;

use earth_model::native::NativeConfig;
use irred::baseline::{atomic_reduction, replicated_reduction, serial_reduction};
use irred::kernel::WeightedPairKernel;
use irred::{seq_reduction, PhasedEngine, PhasedSpec, ReductionEngine};
use kernels::EulerProblem;
use repro_bench::{
    dump_trace, quick, trace_requested, ExecutionConfig, Report, Row, SimConfig, StrategyConfig,
};
use workloads::{Distribution, Mesh, MeshPreset};

fn main() {
    let cfg = SimConfig::default();
    let sweeps = if quick() { 10 } else { 100 };
    let mut rep = Report::new("Ablations: k sweep, numbering locality, native backend");

    // --- 1. k sweep -----------------------------------------------------
    let problem = EulerProblem::preset(MeshPreset::Euler2K, 1);
    let seq = seq_reduction(&problem.spec, sweeps, cfg);
    for &k in &[1usize, 2, 3, 4, 6, 8] {
        let strat = StrategyConfig::new(16, k, Distribution::Cyclic, sweeps);
        let r = PhasedEngine::sim(cfg).run(&problem.spec, &strat).unwrap();
        rep.push(Row {
            dataset: "euler2K@16p".into(),
            strategy: format!("k{k}"),
            procs: 16,
            seconds: r.seconds,
            speedup: seq.seconds / r.seconds,
        });
    }
    rep.note("k sweep: expect a maximum near k=2 — more phases beyond that add switch/copy cost without more overlap".into());

    // --- 2. numbering locality -------------------------------------------
    for (name, mesh) in [
        ("ordered", Mesh::preset(MeshPreset::Euler2K, 3)),
        ("shuffled", Mesh::preset(MeshPreset::Euler2K, 3).shuffled(3)),
    ] {
        let p = EulerProblem::from_mesh(mesh, 3);
        let seq = seq_reduction(&p.spec, sweeps, cfg);
        for &procs in &[2usize, 32] {
            let r = PhasedEngine::sim(cfg)
                .run(
                    &p.spec,
                    &StrategyConfig::new(procs, 2, Distribution::Cyclic, sweeps),
                )
                .unwrap();
            rep.push(Row {
                dataset: format!("euler2K-{name}"),
                strategy: "2c".into(),
                procs,
                seconds: r.seconds,
                speedup: seq.seconds / r.seconds,
            });
        }
    }
    rep.note("numbering: shuffled numbering buffers nearly every reference — the dataset-dependent degradation of §5.4.2".into());

    // --- 3. native backend ------------------------------------------------
    let n = 100_000usize;
    let e = 600_000usize;
    let mut s = 0x5EEDu64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let spec = PhasedSpec {
        kernel: Arc::new(WeightedPairKernel {
            weights: Arc::new((0..e).map(|_| (next() % 100) as f64).collect()),
        }),
        num_elements: n,
        indirection: Arc::new(vec![
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
            (0..e).map(|_| (next() % n as u64) as u32).collect(),
        ]),
    };
    let native_sweeps = if quick() { 5 } else { 20 };
    let cores = std::thread::available_parallelism().map_or(1, |v| v.get());
    let threads = cores.clamp(1, 8).max(2);
    let (_, serial) = serial_reduction(&spec, native_sweeps);
    rep.note(format!("native ({threads} threads on {cores} core(s), {native_sweeps} sweeps, {e} iters): serial {serial:?}"));
    if cores < 2 {
        rep.note("NOTE: single-core host — native wall-clock speedups are degenerate (threads timeshare one CPU);                   results below check correctness/overhead only. This is precisely why the evaluation uses the                   discrete-event simulator.".into());
    }
    let (_, atomic) = atomic_reduction(&spec, threads, native_sweeps);
    let (_, repl) = replicated_reduction(&spec, threads, native_sweeps);
    let strat = StrategyConfig::new(threads, 2, Distribution::Cyclic, native_sweeps);
    let phased = PhasedEngine::native(NativeConfig::default())
        .run(&spec, &strat)
        .expect("native run")
        .wall;
    rep.note(format!(
        "native: atomics {atomic:?} ({:.2}x), replication {repl:?} ({:.2}x), phased-EARTH {phased:?} ({:.2}x)",
        serial.as_secs_f64() / atomic.as_secs_f64(),
        serial.as_secs_f64() / repl.as_secs_f64(),
        serial.as_secs_f64() / phased.as_secs_f64(),
    ));
    rep.save().expect("write csv");

    if trace_requested() {
        let strat = StrategyConfig::new(16, 2, Distribution::Cyclic, 2);
        let traced = PhasedEngine::new(ExecutionConfig::sim(cfg).traced())
            .run(&problem.spec, &strat)
            .unwrap();
        dump_trace("ablation", &traced).expect("write trace");
    }
}
