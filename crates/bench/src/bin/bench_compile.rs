//! Compiler front-door latency harness: cold-compile vs compile-cache-hit
//! submit latency over the daemon's `SubmitSource` path, plus the raw
//! in-process `threadedc::compile` cost for scale.
//!
//! Drives an in-process `reductiond` with N distinct source programs
//! (distinct cache keys), submitting each `resubmits + 1` times: the
//! first submit pays parse + analysis + fission + verification (a cache
//! miss), the rest hit the tenant's compile cache and pay only
//! execution. Emits `bench_results/BENCH_compile.json`.
//!
//! Modes:
//!   bench_compile                        full run, writes the JSON
//!   bench_compile --programs N           distinct sources (default 8)
//!   bench_compile --resubmits N          cache-hit submits per source
//!   bench_compile --check [baseline]     gate mode: assert every reply
//!                                        bit-identical to the
//!                                        interpreter and the daemon's
//!                                        hit/miss counters add up; with
//!                                        a baseline path, also gate
//!                                        cold-vs-baseline latency
//!
//! `REPRO_QUICK=1` shrinks the program count for CI smoke use.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use server::client::Client;
use server::protocol::{Frame, SubmitSource};
use server::{Server, ServerConfig};
use threadedc::{compile, interpret, parse, Bindings};

struct Opts {
    programs: usize,
    resubmits: usize,
    check: bool,
    baseline: Option<String>,
    elements: usize,
    iterations: usize,
}

impl Default for Opts {
    fn default() -> Self {
        let quick = repro_bench::quick();
        Opts {
            programs: if quick { 4 } else { 8 },
            resubmits: if quick { 2 } else { 5 },
            check: false,
            baseline: None,
            elements: 64,
            iterations: 512,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_compile [--programs N] [--resubmits N] [--elements N] \
         [--iterations N] [--check [baseline.json]]"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--programs" => o.programs = num(args.next()),
            "--resubmits" => o.resubmits = num(args.next()),
            "--elements" => o.elements = num(args.next()),
            "--iterations" => o.iterations = num(args.next()),
            "--check" => {
                o.check = true;
                if args.peek().is_some_and(|a| !a.starts_with("--")) {
                    o.baseline = args.next();
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    o
}

fn num(v: Option<String>) -> usize {
    v.and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| usage())
}

/// Distinct source per index: the multiplier constant changes the source
/// hash, so each program is its own compile-cache entry, while the
/// shape (un-annotated two-group loop, automatic fission) stays fixed.
fn source(idx: usize) -> String {
    format!(
        "double P[n]; double Q[n]; double W[e]; int A[e]; int B[e];\n\
         forall (i = 0; i < e; i++) {{\n\
         \x20 double f = W[i] * {}.0;\n\
         \x20 P[A[i]] = P[A[i]] + f;\n\
         \x20 Q[B[i]] = Q[B[i]] - f;\n\
         }}\n",
        idx + 1
    )
}

/// Whole-number weights: every partial sum is exact, so the phased
/// result is bit-comparable to the sequential interpreter.
fn inputs(n: usize, e: usize, seed: u64) -> (Vec<f64>, Vec<u32>, Vec<u32>) {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let w = (0..e).map(|_| (next() % 50) as f64).collect();
    let a = (0..e).map(|_| (next() % n as u64) as u32).collect();
    let b = (0..e).map(|_| (next() % n as u64) as u32).collect();
    (w, a, b)
}

fn job(o: &Opts, id: u64, idx: usize) -> SubmitSource {
    let (w, a, b) = inputs(o.elements, o.iterations, idx as u64 + 1);
    SubmitSource {
        job_id: id,
        deadline_ms: 0,
        procs: 2,
        k: 2,
        dist: 1,
        sweeps: 1,
        source: source(idx),
        sizes: vec![
            ("n".into(), o.elements as u32),
            ("e".into(), o.iterations as u32),
        ],
        f64s: vec![("W".into(), w)],
        ints: vec![("A".into(), a), ("B".into(), b)],
    }
}

/// Interpreter reference for `--check`: P and Q on identical bindings.
fn reference(o: &Opts, idx: usize) -> (Vec<f64>, Vec<f64>) {
    let (w, a, b) = inputs(o.elements, o.iterations, idx as u64 + 1);
    let mut bind = Bindings::default();
    bind.sizes.insert("n".into(), o.elements);
    bind.sizes.insert("e".into(), o.iterations);
    bind.f64s.insert("W".into(), w);
    bind.ints.insert("A".into(), a);
    bind.ints.insert("B".into(), b);
    interpret(&parse(&source(idx)).unwrap(), &mut bind).unwrap();
    (bind.f64s["P"].clone(), bind.f64s["Q"].clone())
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn metric(report: &str, key: &str) -> u64 {
    report
        .lines()
        .find_map(|l| l.strip_prefix(key))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {key} missing in:\n{report}"))
}

fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Extract one `"key": <float>` from our own flat JSON (hermetic
/// policy: no serde; this only reads files this tool wrote).
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let o = parse_opts();
    let quick = repro_bench::quick();

    let srv = Server::bind_tcp(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind in-process daemon");
    let addr = srv.local_addr().expect("local addr");
    println!(
        "# bench_compile: {} programs x {} resubmits, {} elems x {} iters{}",
        o.programs,
        o.resubmits,
        o.elements,
        o.iterations,
        if o.check { ", checked" } else { "" },
    );

    // Raw front-end cost, no daemon: parse + analysis + fission +
    // verification per program.
    let mut compile_only = Vec::with_capacity(o.programs);
    for idx in 0..o.programs {
        let src = source(idx);
        let t0 = Instant::now();
        compile(&src).expect("benchmark sources compile");
        compile_only.push(t0.elapsed());
    }
    compile_only.sort();

    let mut c = Client::connect(addr, "bench-compile").expect("connect");
    let mut cold = Vec::with_capacity(o.programs);
    let mut hit = Vec::with_capacity(o.programs * o.resubmits);
    let mut id = 0u64;
    for idx in 0..o.programs {
        let expect = o.check.then(|| reference(&o, idx));
        for round in 0..=o.resubmits {
            id += 1;
            let t0 = Instant::now();
            let frame = c.submit_source(job(&o, id, idx)).expect("submit");
            let dt = t0.elapsed();
            let Frame::JobOk(ok) = frame else {
                panic!("program {idx} round {round}: {frame:?}");
            };
            if let Some((p, q)) = &expect {
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&ok.values[0]), bits(p), "program {idx}: P mismatch");
                assert_eq!(bits(&ok.values[1]), bits(q), "program {idx}: Q mismatch");
            }
            if round == 0 {
                cold.push(dt);
            } else {
                hit.push(dt);
            }
        }
    }
    cold.sort();
    hit.sort();

    let metrics = c.metrics().expect("metrics");
    let (hits, misses, entries) = (
        metric(&metrics, "compile_cache_hits "),
        metric(&metrics, "compile_cache_misses "),
        metric(&metrics, "compile_cache_entries "),
    );
    c.shutdown().expect("shutdown");
    srv.stop();

    let cold_p50 = percentile(&cold, 0.50);
    let hit_p50 = percentile(&hit, 0.50);
    println!(
        "compile_only_ms p50={:.3} (n={}, parse+analysis+fission+verify)",
        ms(percentile(&compile_only, 0.50)),
        compile_only.len()
    );
    println!(
        "cold_ms         p50={:.3} p99={:.3} (n={}, cache miss: compile + execute)",
        ms(cold_p50),
        ms(percentile(&cold, 0.99)),
        cold.len()
    );
    println!(
        "hit_ms          p50={:.3} p99={:.3} (n={}, cache hit: execute only)",
        ms(hit_p50),
        ms(percentile(&hit, 0.99)),
        hit.len()
    );
    println!("daemon: compile_cache_entries {entries}");
    println!("daemon: compile_cache_hits    {hits}");
    println!("daemon: compile_cache_misses  {misses}");

    // Quick runs use a smaller config, so they track their own baseline
    // file instead of clobbering the full one.
    let path = if quick {
        "bench_results/BENCH_compile_quick.json"
    } else {
        "bench_results/BENCH_compile.json"
    };
    let mut out = String::new();
    writeln!(out, "{{").unwrap();
    writeln!(out, "  \"schema\": 1,").unwrap();
    writeln!(out, "  \"tool\": \"bench_compile\",").unwrap();
    writeln!(out, "  \"git_sha\": \"{}\",", git_sha()).unwrap();
    writeln!(out, "  \"quick\": {quick},").unwrap();
    writeln!(
        out,
        "  \"config\": {{ \"programs\": {}, \"resubmits\": {}, \"elements\": {}, \
         \"iterations\": {} }},",
        o.programs, o.resubmits, o.elements, o.iterations
    )
    .unwrap();
    writeln!(
        out,
        "  \"compile_only_p50_ms\": {:.6},",
        ms(percentile(&compile_only, 0.50))
    )
    .unwrap();
    writeln!(out, "  \"cold_p50_ms\": {:.6},", ms(cold_p50)).unwrap();
    writeln!(
        out,
        "  \"cold_p99_ms\": {:.6},",
        ms(percentile(&cold, 0.99))
    )
    .unwrap();
    writeln!(out, "  \"hit_p50_ms\": {:.6},", ms(hit_p50)).unwrap();
    writeln!(out, "  \"hit_p99_ms\": {:.6},", ms(percentile(&hit, 0.99))).unwrap();
    writeln!(
        out,
        "  \"cache_counters\": {{ \"entries\": {entries}, \"hits\": {hits}, \
         \"misses\": {misses} }}"
    )
    .unwrap();
    writeln!(out, "}}").unwrap();
    std::fs::create_dir_all("bench_results").expect("mkdir bench_results");
    std::fs::write(path, &out).expect("write BENCH_compile.json");
    println!("wrote {path}");

    if o.check {
        // The daemon's counters must account for exactly this run: one
        // miss per distinct program, the rest hits, nothing evicted.
        let want_misses = o.programs as u64;
        let want_hits = (o.programs * o.resubmits) as u64;
        if misses != want_misses || hits != want_hits || entries != want_misses {
            eprintln!(
                "CACHE CHECK FAILED: entries/hits/misses = {entries}/{hits}/{misses}, \
                 expected {want_misses}/{want_hits}/{want_misses}"
            );
            std::process::exit(1);
        }
        println!("# cache counters: {want_misses} misses, {want_hits} hits, as expected");
        println!("# bit-identity: every reply matched the interpreter");
        if let Some(base) = &o.baseline {
            // Generous 3x gate: this is a smoke check against gross
            // regressions (e.g. cache no longer hit), not a perf SLO —
            // CI hosts are noisy.
            match std::fs::read_to_string(base) {
                Ok(text) => {
                    let base_cold = json_f64(&text, "cold_p50_ms").unwrap_or(f64::MAX);
                    let now = ms(cold_p50);
                    if now > base_cold * 3.0 {
                        eprintln!(
                            "PERF REGRESSION: cold p50 {now:.2} ms is over 3x baseline \
                             {base_cold:.2} ms"
                        );
                        std::process::exit(1);
                    }
                    println!("# cold p50 {now:.2} ms vs baseline {base_cold:.2} ms (within 3x)");
                }
                Err(e) => {
                    eprintln!("note: baseline {base} unreadable ({e}); latency gate skipped");
                }
            }
        }
    }
}
