//! Native-backend performance tracker.
//!
//! Runs a fixed stable of workloads on the *native* (host-thread)
//! backend at 8 nodes, times prepare once and `execute` over several
//! repetitions, and emits machine-readable `bench_results/BENCH_native.json`
//! (schema 2: per-workload median/MAD wall-clock + speedup vs a timed
//! sequential reference, a host-core scaling curve per workload, the
//! `Tuning` label, git SHA, config) so the perf trajectory is tracked
//! PR-over-PR.
//!
//! Every workload is swept over host core counts (1, powers of two,
//! `available_parallelism`) by re-preparing with
//! `Tuning::auto().host_threads(tc)`; the headline stats are the
//! max-thread point and the full curve lands in `core_curve`. On a
//! single-core host the sweep degenerates to one point.
//!
//! Modes:
//!   bench_native                  full run, writes BENCH_native.json
//!   REPRO_QUICK=1 bench_native    quick subset (fewer sweeps/reps)
//!   bench_native --check <base>   also compare against a baseline JSON
//!                                 (headline medians AND curve points)
//!                                 and exit 1 on >20 % median regression
//!
//! `ci.sh perf` runs the quick mode against the checked-in baseline.

use std::time::{Duration, Instant};

use earth_model::native::NativeConfig;
use irred::{GatherEngine, PhasedEngine, ReductionEngine, SeqEngine, Tuning, Workspace};
use kernels::{EulerProblem, MolDynProblem, MvmProblem};
use repro_bench::{
    core_sweep_counts, dump_trace, quick, trace_requested, CorePoint, ExecutionConfig,
    NativeBenchResult, NativeReport, SimConfig, StrategyConfig,
};
use workloads::{CgClass, Distribution, MeshPreset, MolDynPreset};

const PROCS: usize = 8;
const K: usize = 2; // the paper's all-round best strategy: 2c

fn reps() -> usize {
    if quick() {
        3
    } else {
        7
    }
}

fn sweeps() -> usize {
    if quick() {
        5
    } else {
        20
    }
}

/// Time `reps` executes of one prepared plan; returns (samples, prepare time).
fn time_engine<Spec, E: ReductionEngine<Spec>>(
    engine: &E,
    spec: &Spec,
    strat: &StrategyConfig,
    reps: usize,
) -> (Vec<Duration>, Duration) {
    let t0 = Instant::now();
    let mut prepared = engine.prepare(spec, strat).expect("prepare");
    let prepare = t0.elapsed();
    let mut ws = Workspace::new();
    // One warmup execute (first execute meters costs / populates pools).
    engine.execute(&mut prepared, &mut ws).expect("warmup");
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let out = engine.execute(&mut prepared, &mut ws).expect("execute");
        samples.push(t.elapsed());
        std::hint::black_box(out.values.len());
    }
    (samples, prepare)
}

fn median_secs(samples: &[Duration]) -> f64 {
    let mut secs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
    secs.sort_by(|a, b| a.total_cmp(b));
    let n = secs.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        secs[n / 2]
    } else {
        0.5 * (secs[n / 2 - 1] + secs[n / 2])
    }
}

/// Sweep one workload over the host core counts: re-prepare + time with
/// each thread cap, collect the curve, and return the max-thread point's
/// raw samples for the headline stats.
fn sweep_cores<Spec, E, F>(
    spec: &Spec,
    strat: &StrategyConfig,
    reps: usize,
    make: F,
) -> (Vec<Duration>, Duration, Vec<CorePoint>)
where
    E: ReductionEngine<Spec>,
    F: Fn(usize) -> E,
{
    let mut curve = Vec::new();
    let mut headline = None;
    for tc in core_sweep_counts() {
        let engine = make(tc);
        let (samples, prepare) = time_engine(&engine, spec, strat, reps);
        curve.push(CorePoint {
            host_threads: tc,
            median_s: median_secs(&samples),
        });
        headline = Some((samples, prepare));
    }
    let (samples, prepare) = headline.expect("core_sweep_counts is never empty");
    (samples, prepare, curve)
}

/// Wall time of one sequential reference run (same sweeps).
fn time_seq<Spec, E: ReductionEngine<Spec>>(
    engine: &E,
    spec: &Spec,
    strat: &StrategyConfig,
) -> f64 {
    let t = Instant::now();
    let out = engine.run(spec, strat).expect("seq run");
    std::hint::black_box(out.values.len());
    t.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check <baseline.json>").clone());

    let cfg = SimConfig::default();
    let native = NativeConfig::default();
    let sweeps = sweeps();
    let reps = reps();
    let tuning = Tuning::auto();
    let mut report = NativeReport::new(PROCS, sweeps, reps, quick());
    report.set_tuning(tuning.label());

    let phased_cfg =
        move |tc: usize| ExecutionConfig::native(native).with_tuning(tuning.host_threads(tc));

    // --- the workload stable: moldyn 2K / 10K, euler 2K, mvm-W -----------
    type Bench = Box<dyn Fn() -> NativeBenchResult>;
    let stable: Vec<(&str, Bench)> = vec![
        (
            "moldyn-10K",
            Box::new(move || {
                let problem = MolDynProblem::preset(MolDynPreset::MolDyn10K);
                let strat = StrategyConfig::new(PROCS, K, Distribution::Cyclic, sweeps);
                let seq_strat = StrategyConfig::new(1, 1, Distribution::Block, sweeps);
                let seq_s = time_seq(&SeqEngine::new(cfg), &problem.spec, &seq_strat);
                let (samples, prepare, curve) = sweep_cores(&problem.spec, &strat, reps, |tc| {
                    PhasedEngine::new(phased_cfg(tc))
                });
                NativeBenchResult::new("moldyn-10K", "2c", samples, prepare, seq_s)
                    .with_tuning(tuning.label())
                    .with_core_curve(curve)
            }),
        ),
        (
            "moldyn-2K",
            Box::new(move || {
                let problem = MolDynProblem::preset(MolDynPreset::MolDyn2K);
                let strat = StrategyConfig::new(PROCS, K, Distribution::Cyclic, sweeps);
                let seq_strat = StrategyConfig::new(1, 1, Distribution::Block, sweeps);
                let seq_s = time_seq(&SeqEngine::new(cfg), &problem.spec, &seq_strat);
                let (samples, prepare, curve) = sweep_cores(&problem.spec, &strat, reps, |tc| {
                    PhasedEngine::new(phased_cfg(tc))
                });
                NativeBenchResult::new("moldyn-2K", "2c", samples, prepare, seq_s)
                    .with_tuning(tuning.label())
                    .with_core_curve(curve)
            }),
        ),
        (
            "euler-2K",
            Box::new(move || {
                let problem = EulerProblem::preset(MeshPreset::Euler2K, 7);
                let strat = StrategyConfig::new(PROCS, K, Distribution::Cyclic, sweeps);
                let seq_strat = StrategyConfig::new(1, 1, Distribution::Block, sweeps);
                let seq_s = time_seq(&SeqEngine::new(cfg), &problem.spec, &seq_strat);
                let (samples, prepare, curve) = sweep_cores(&problem.spec, &strat, reps, |tc| {
                    PhasedEngine::new(phased_cfg(tc))
                });
                NativeBenchResult::new("euler-2K", "2c", samples, prepare, seq_s)
                    .with_tuning(tuning.label())
                    .with_core_curve(curve)
            }),
        ),
        (
            "mvm-W",
            Box::new(move || {
                let problem = MvmProblem::nas_class(CgClass::W, 11);
                let mvm_sweeps = sweeps.min(10);
                let strat = StrategyConfig::new(PROCS, K, Distribution::Cyclic, mvm_sweeps);
                let t = Instant::now();
                let (y, _) = problem.sequential(mvm_sweeps, cfg);
                std::hint::black_box(y.len());
                let seq_s = t.elapsed().as_secs_f64();
                let (samples, prepare, curve) = sweep_cores(&problem.spec, &strat, reps, |tc| {
                    GatherEngine::new(phased_cfg(tc))
                });
                NativeBenchResult::new("mvm-W", "2c", samples, prepare, seq_s)
                    .with_tuning(tuning.label())
                    .with_core_curve(curve)
            }),
        ),
    ];

    for (name, run) in stable {
        eprintln!("bench_native: running {name} ({sweeps} sweeps x {reps} reps)...");
        let r = run();
        println!("{}", r.render());
        report.push(r);
    }

    if trace_requested() {
        // One traced native run of the headline workload so the phase
        // timeline (park/unpark, sync waits, per-phase spans) is
        // inspectable; writes bench_results/bench_native_trace.json.
        let problem = MolDynProblem::preset(MolDynPreset::MolDyn10K);
        let strat = StrategyConfig::new(PROCS, K, Distribution::Cyclic, sweeps);
        let traced =
            PhasedEngine::new(ExecutionConfig::native(native).with_tuning(tuning).traced())
                .run(&problem.spec, &strat)
                .expect("traced native run");
        dump_trace("bench_native", &traced).expect("write trace");
    }

    // Compare BEFORE saving: the baseline may be the very file this run
    // overwrites, and a self-comparison would always pass.
    let verdict = baseline.map(|base| report.check_against(&base, 0.20));

    // Quick runs use a different config (fewer sweeps/reps), so they
    // track their own baseline file instead of clobbering the full one.
    let path = if quick() {
        "bench_results/BENCH_native_quick.json"
    } else {
        "bench_results/BENCH_native.json"
    };
    report.save(path).expect("write BENCH_native.json");
    println!("wrote {path}");

    match verdict {
        Some(Ok(lines)) => {
            for l in lines {
                println!("{l}");
            }
        }
        Some(Err(msg)) => {
            eprintln!("PERF REGRESSION: {msg}");
            std::process::exit(1);
        }
        None => {}
    }
}
