//! Native-backend performance tracker.
//!
//! Runs a fixed stable of workloads on the *native* (host-thread)
//! backend at 8 nodes, times prepare once and `execute` over several
//! repetitions, and emits machine-readable `bench_results/BENCH_native.json`
//! (per-workload median/MAD wall-clock + speedup vs a timed sequential
//! reference, git SHA, config) so the perf trajectory is tracked
//! PR-over-PR.
//!
//! Modes:
//!   bench_native                  full run, writes BENCH_native.json
//!   REPRO_QUICK=1 bench_native    quick subset (fewer sweeps/reps)
//!   bench_native --check <base>   also compare against a baseline JSON
//!                                 and exit 1 on >20 % median regression
//!
//! `ci.sh perf` runs the quick mode against the checked-in baseline.

use std::time::{Duration, Instant};

use earth_model::native::NativeConfig;
use irred::{GatherEngine, PhasedEngine, ReductionEngine, SeqEngine, Workspace};
use kernels::{EulerProblem, MolDynProblem, MvmProblem};
use repro_bench::{
    dump_trace, quick, trace_requested, ExecutionConfig, NativeBenchResult, NativeReport,
    SimConfig, StrategyConfig,
};
use workloads::{CgClass, Distribution, MeshPreset, MolDynPreset};

const PROCS: usize = 8;
const K: usize = 2; // the paper's all-round best strategy: 2c

fn reps() -> usize {
    if quick() {
        3
    } else {
        7
    }
}

fn sweeps() -> usize {
    if quick() {
        5
    } else {
        20
    }
}

/// Time `reps` executes of one prepared plan; returns (samples, prepare time).
fn time_engine<Spec, E: ReductionEngine<Spec>>(
    engine: &E,
    spec: &Spec,
    strat: &StrategyConfig,
    reps: usize,
) -> (Vec<Duration>, Duration) {
    let t0 = Instant::now();
    let mut prepared = engine.prepare(spec, strat).expect("prepare");
    let prepare = t0.elapsed();
    let mut ws = Workspace::new();
    // One warmup execute (first execute meters costs / populates pools).
    engine.execute(&mut prepared, &mut ws).expect("warmup");
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let out = engine.execute(&mut prepared, &mut ws).expect("execute");
        samples.push(t.elapsed());
        std::hint::black_box(out.values.len());
    }
    (samples, prepare)
}

/// Wall time of one sequential reference run (same sweeps).
fn time_seq<Spec, E: ReductionEngine<Spec>>(
    engine: &E,
    spec: &Spec,
    strat: &StrategyConfig,
) -> f64 {
    let t = Instant::now();
    let out = engine.run(spec, strat).expect("seq run");
    std::hint::black_box(out.values.len());
    t.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check <baseline.json>").clone());

    let cfg = SimConfig::default();
    let native = NativeConfig::default();
    let sweeps = sweeps();
    let reps = reps();
    let mut report = NativeReport::new(PROCS, sweeps, reps, quick());

    // --- phased workloads: moldyn 2K / 10K, euler 2K ---------------------
    type Bench = Box<dyn Fn() -> NativeBenchResult>;
    let phased: Vec<(&str, Bench)> = vec![
        (
            "moldyn-10K",
            Box::new(move || {
                let problem = MolDynProblem::preset(MolDynPreset::MolDyn10K);
                let strat = StrategyConfig::new(PROCS, K, Distribution::Cyclic, sweeps);
                let seq_strat = StrategyConfig::new(1, 1, Distribution::Block, sweeps);
                let seq_s = time_seq(&SeqEngine::new(cfg), &problem.spec, &seq_strat);
                let (samples, prepare) =
                    time_engine(&PhasedEngine::native(native), &problem.spec, &strat, reps);
                NativeBenchResult::new("moldyn-10K", "2c", samples, prepare, seq_s)
            }),
        ),
        (
            "moldyn-2K",
            Box::new(move || {
                let problem = MolDynProblem::preset(MolDynPreset::MolDyn2K);
                let strat = StrategyConfig::new(PROCS, K, Distribution::Cyclic, sweeps);
                let seq_strat = StrategyConfig::new(1, 1, Distribution::Block, sweeps);
                let seq_s = time_seq(&SeqEngine::new(cfg), &problem.spec, &seq_strat);
                let (samples, prepare) =
                    time_engine(&PhasedEngine::native(native), &problem.spec, &strat, reps);
                NativeBenchResult::new("moldyn-2K", "2c", samples, prepare, seq_s)
            }),
        ),
        (
            "euler-2K",
            Box::new(move || {
                let problem = EulerProblem::preset(MeshPreset::Euler2K, 7);
                let strat = StrategyConfig::new(PROCS, K, Distribution::Cyclic, sweeps);
                let seq_strat = StrategyConfig::new(1, 1, Distribution::Block, sweeps);
                let seq_s = time_seq(&SeqEngine::new(cfg), &problem.spec, &seq_strat);
                let (samples, prepare) =
                    time_engine(&PhasedEngine::native(native), &problem.spec, &strat, reps);
                NativeBenchResult::new("euler-2K", "2c", samples, prepare, seq_s)
            }),
        ),
        (
            "mvm-W",
            Box::new(move || {
                let problem = MvmProblem::nas_class(CgClass::W, 11);
                let mvm_sweeps = sweeps.min(10);
                let strat = StrategyConfig::new(PROCS, K, Distribution::Cyclic, mvm_sweeps);
                let t = Instant::now();
                let (y, _) = problem.sequential(mvm_sweeps, cfg);
                std::hint::black_box(y.len());
                let seq_s = t.elapsed().as_secs_f64();
                let (samples, prepare) =
                    time_engine(&GatherEngine::native(native), &problem.spec, &strat, reps);
                NativeBenchResult::new("mvm-W", "2c", samples, prepare, seq_s)
            }),
        ),
    ];

    for (name, run) in phased {
        eprintln!("bench_native: running {name} ({sweeps} sweeps x {reps} reps)...");
        let r = run();
        println!("{}", r.render());
        report.push(r);
    }

    if trace_requested() {
        // One traced native run of the headline workload so the phase
        // timeline (park/unpark, sync waits, per-phase spans) is
        // inspectable; writes bench_results/bench_native_trace.json.
        let problem = MolDynProblem::preset(MolDynPreset::MolDyn10K);
        let strat = StrategyConfig::new(PROCS, K, Distribution::Cyclic, sweeps);
        let traced = PhasedEngine::new(ExecutionConfig::native(native).traced())
            .run(&problem.spec, &strat)
            .expect("traced native run");
        dump_trace("bench_native", &traced).expect("write trace");
    }

    // Compare BEFORE saving: the baseline may be the very file this run
    // overwrites, and a self-comparison would always pass.
    let verdict = baseline.map(|base| report.check_against(&base, 0.20));

    // Quick runs use a different config (fewer sweeps/reps), so they
    // track their own baseline file instead of clobbering the full one.
    let path = if quick() {
        "bench_results/BENCH_native_quick.json"
    } else {
        "bench_results/BENCH_native.json"
    };
    report.save(path).expect("write BENCH_native.json");
    println!("wrote {path}");

    match verdict {
        Some(Ok(lines)) => {
            for l in lines {
                println!("{l}");
            }
        }
        Some(Err(msg)) => {
            eprintln!("PERF REGRESSION: {msg}");
            std::process::exit(1);
        }
        None => {}
    }
}
