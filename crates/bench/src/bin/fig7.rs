//! Figure 7: `moldyn` on the 2 916- and 10 976-molecule datasets.
//!
//! Strategies 1c / 2c / 4c / 2b over 2–32 processors, 100 time steps.
//!
//! Paper's shape: on the 2K dataset, 2-processor speedups of 1.11–1.30
//! with 1c best at P = 2 (fewer phases → less copying) and 2c best at
//! scale (relative 2→32 = 9.70); on the 10K dataset, 2-processor
//! *slowdowns* (0.56–0.82 — locality loss) but good relative speedups
//! (2c: 10.76), with 4c occasionally edging 2c thanks to load-imbalance
//! tolerance.

use irred::{seq_reduction, PhasedEngine, ReductionEngine};
use kernels::MolDynProblem;
use repro_bench::{
    dump_trace, lhs_procs, lhs_sweeps, paper_strategies, trace_requested, ExecutionConfig, Report,
    Row, SimConfig, StrategyConfig,
};
use workloads::{Distribution, MolDynPreset};

fn main() {
    let cfg = SimConfig::default();
    let sweeps = lhs_sweeps();
    let mut rep = Report::new("Figure 7: moldyn 2K and 10K datasets");

    let datasets = [
        (MolDynPreset::MolDyn2K, 10.80, [7.50, 9.70, 8.70, 6.50]),
        (MolDynPreset::MolDyn10K, 28.98, [8.42, 10.76, 10.51, 9.15]),
    ];

    for (preset, paper_seq, paper_rel) in datasets {
        let label = preset.label().to_string();
        let problem = MolDynProblem::preset(preset);
        let seq = seq_reduction(&problem.spec, sweeps, cfg);
        rep.seq(&label, seq.seconds, paper_seq);

        for (si, &(k, dist, name)) in paper_strategies().iter().enumerate() {
            for &p in &lhs_procs() {
                let strat = StrategyConfig::new(p, k, dist, sweeps);
                let r = PhasedEngine::sim(cfg).run(&problem.spec, &strat).unwrap();
                rep.push(Row {
                    dataset: label.clone(),
                    strategy: name.to_string(),
                    procs: p,
                    seconds: r.seconds,
                    speedup: seq.seconds / r.seconds,
                });
            }
            if let Some(rel) = rep.relative(&label, name, 2, 32) {
                rep.note(format!(
                    "{label} {name}: relative speedup 2→32 = {rel:.2} (paper {:.2})",
                    paper_rel[si]
                ));
            }
        }
    }
    rep.save().expect("write csv");

    if trace_requested() {
        let problem = MolDynProblem::preset(MolDynPreset::MolDyn2K);
        let strat = StrategyConfig::new(8, 2, Distribution::Cyclic, 2);
        let traced = PhasedEngine::new(ExecutionConfig::sim(cfg).traced())
            .run(&problem.spec, &strat)
            .unwrap();
        dump_trace("fig7", &traced).expect("write trace");
    }
}
