//! Skew-sweep strategy benchmark for the workload families.
//!
//! Runs each generated family — power-law graph, hot-key scatter-add,
//! particle-in-cell — across its skew knob on the *simulator* (metered,
//! deterministic cycle counts, so this check is immune to host noise),
//! timing the phased rotating-portions executor against the classic
//! communicating inspector/executor at the paper's all-round best
//! strategy (P=8, k=2, cyclic). The comparison is one **adaptation**:
//! a (re-)preparation plus one sweep — the regime these families model
//! (fresh minibatch index sets, particle churn, adaptive frontiers),
//! where the classic scheme must re-pay its communicating inspector and
//! partitioning (§5.4.3) while the phased scheme's LightInspector is a
//! linear pass. For every point it records the plan statistics
//! ([`irred::PlanStats`]), what [`StrategyConfig::auto_select`] picks
//! from them, and which engine was empirically faster; results land in
//! `bench_results/BENCH_workloads.json`.
//!
//! Modes:
//!   bench_workloads             full sweep, writes the JSON
//!   REPRO_QUICK=1 ...           smaller decks (CI smoke)
//!   bench_workloads --check     additionally require auto_select to
//!                               match the empirical winner at the
//!                               no-skew and extreme-skew endpoints of
//!                               the power-law and hot-key sweeps, and
//!                               exit 1 if it does not

use std::fmt::Write as _;

use irred::baseline::{IeEngine, InspectorExecutor};
use irred::{EngineChoice, PhasedEngine, ReductionEngine, StrategyConfig, Workspace};
use kernels::FamilyProblem;
use repro_bench::{quick, SimConfig};
use workloads::{Distribution, FamilySpec, HotKeyScatter, PicDeck, PowerLawGraph};

const PROCS: usize = 8;
const K: usize = 2;

struct Point {
    family: &'static str,
    param: String,
    skew: f64,
    distinct: usize,
    total_refs: u64,
    phased_cycles: u64,
    phased_prep_cycles: u64,
    ie_cycles: u64,
    ie_prep_cycles: u64,
    auto: EngineChoice,
    empirical: EngineChoice,
}

impl Point {
    fn phased_total(&self) -> u64 {
        self.phased_cycles + self.phased_prep_cycles
    }

    fn ie_total(&self) -> u64 {
        self.ie_cycles + self.ie_prep_cycles
    }

    fn render(&self) -> String {
        format!(
            "  {:<9} {:<14} skew {:>6.2}  distinct {:>6}  phased {:>9} cyc (+{:>6} prep)  ie {:>9} cyc (+{:>8} prep)  auto {:<6} empirical {:<6}{}",
            self.family,
            self.param,
            self.skew,
            self.distinct,
            self.phased_cycles,
            self.phased_prep_cycles,
            self.ie_cycles,
            self.ie_prep_cycles,
            self.auto.label(),
            self.empirical.label(),
            if self.auto == self.empirical { "" } else { "  <-- mismatch" }
        )
    }
}

/// One sweep point: run both engines on the simulator, sanity-check that
/// they agree bit for bit, and record per-adaptation cycles (preparation
/// + one sweep) + statistics + the choice.
fn measure(family: FamilySpec, fam: &'static str, param: String) -> Point {
    let strat = StrategyConfig::new(PROCS, K, Distribution::Cyclic, 1);
    let num_elements = family.num_elements;
    let num_iterations = family.num_iterations();
    let p = FamilyProblem::from_family(family);
    let cfg = SimConfig::default();
    let engine = PhasedEngine::sim(cfg);
    let mut prepared = engine.prepare(&p.spec, &strat).expect("prepare");
    let stats = prepared.plan_stats();
    let mut ws = Workspace::new();
    let phased = engine.execute(&mut prepared, &mut ws).expect("phased sim");
    // Phased re-preparation: a LightInspector linear pass over the local
    // references (modeled; the incremental path under churn is cheaper
    // still).
    let phased_prep =
        (stats.total_refs as f64 / PROCS as f64 * StrategyConfig::PREP_REF_CYCLES) as u64;
    let ie_engine = IeEngine::sim(cfg);
    let mut ie_prepared = ie_engine.prepare(&p.spec, &strat).expect("ie prepare");
    let ie = ie_engine
        .execute(&mut ie_prepared, &mut Workspace::new())
        .expect("ie sim");
    // IE re-preparation: the communicating inspector (modeled by the
    // engine itself) plus re-partitioning the moved data (§5.4.3).
    let ie_prep = ie_prepared.inspector_cycles()
        + InspectorExecutor::partitioning_cycles(num_elements, num_iterations, &cfg);
    assert_eq!(
        phased.values, ie.values,
        "{fam} {param}: engines disagree bit-for-bit"
    );
    let point = Point {
        family: fam,
        param,
        skew: stats.skew,
        distinct: stats.distinct_elements,
        total_refs: stats.total_refs,
        phased_cycles: phased.time_cycles,
        phased_prep_cycles: phased_prep,
        ie_cycles: ie.time_cycles,
        ie_prep_cycles: ie_prep,
        auto: strat.auto_select(&stats).engine,
        empirical: EngineChoice::RotatingPortions,
    };
    let empirical = if point.ie_total() < point.phased_total() {
        EngineChoice::InspectorExecutor
    } else {
        EngineChoice::RotatingPortions
    };
    Point { empirical, ..point }
}

fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn to_json(points: &[Point], endpoints_ok: bool) -> String {
    let mut out = String::new();
    writeln!(out, "{{").unwrap();
    writeln!(out, "  \"schema\": 1,").unwrap();
    writeln!(out, "  \"tool\": \"bench_workloads\",").unwrap();
    writeln!(out, "  \"git_sha\": \"{}\",", git_sha()).unwrap();
    writeln!(out, "  \"quick\": {},", quick()).unwrap();
    writeln!(
        out,
        "  \"config\": {{ \"procs\": {PROCS}, \"k\": {K}, \"ghost_cost\": {} }},",
        StrategyConfig::GHOST_COST
    )
    .unwrap();
    writeln!(out, "  \"endpoints_ok\": {endpoints_ok},").unwrap();
    writeln!(out, "  \"points\": [").unwrap();
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        writeln!(
            out,
            "    {{ \"family\": \"{}\", \"param\": \"{}\", \"skew\": {:.4}, \
             \"distinct\": {}, \"total_refs\": {}, \"phased_cycles\": {}, \
             \"phased_prep_cycles\": {}, \"phased_total\": {}, \"ie_cycles\": {}, \
             \"ie_prep_cycles\": {}, \"ie_total\": {}, \"auto\": \"{}\", \
             \"empirical\": \"{}\" }}{}",
            p.family,
            p.param,
            p.skew,
            p.distinct,
            p.total_refs,
            p.phased_cycles,
            p.phased_prep_cycles,
            p.phased_total(),
            p.ie_cycles,
            p.ie_prep_cycles,
            p.ie_total(),
            p.auto.label(),
            p.empirical.label(),
            comma
        )
        .unwrap();
    }
    writeln!(out, "  ]").unwrap();
    writeln!(out, "}}").unwrap();
    out
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let q = quick();
    println!("=== workload-family skew sweep (sim, P={PROCS} k={K}) ===");

    let (pl_nodes, pl_deg) = if q { (4_096, 8) } else { (8_192, 8) };
    let (hk_keys, hk_rows) = if q { (4_096, 32_768) } else { (8_192, 65_536) };
    let (pic_cells, pic_parts) = if q { (2_048, 16_384) } else { (4_096, 32_768) };

    let mut points = Vec::new();

    for &alpha in &[0.0, 0.8, 1.5, 2.5] {
        let g =
            PowerLawGraph::generate(pl_nodes, pl_nodes * pl_deg, alpha, 1).expect("powerlaw deck");
        points.push(measure(
            g.to_family(1),
            "powerlaw",
            format!("alpha={alpha}"),
        ));
        println!("{}", points.last().unwrap().render());
    }

    for &frac in &[0.0, 0.5, 0.9, 0.99] {
        let d = HotKeyScatter::generate(hk_keys, hk_rows, 1, frac, 1, 2).expect("hotkey deck");
        points.push(measure(
            d.to_family(2),
            "hotkey",
            format!("hot_frac={frac}"),
        ));
        println!("{}", points.last().unwrap().render());
    }

    for &churn in &[0.1, 0.5, 0.9] {
        let d = PicDeck::generate(pic_cells, pic_parts, 1, churn, 3).expect("pic deck");
        points.push(measure(d.initial(), "pic", format!("churn={churn}")));
        println!("{}", points.last().unwrap().render());
    }

    // The endpoints the auto-selection rule is accountable for: the
    // flattest and most skewed points of each monotone sweep.
    let endpoint = |fam: &str, param: &str| -> &Point {
        points
            .iter()
            .find(|p| p.family == fam && p.param == param)
            .expect("endpoint point exists")
    };
    let endpoints = [
        endpoint("powerlaw", "alpha=0"),
        endpoint("powerlaw", "alpha=2.5"),
        endpoint("hotkey", "hot_frac=0"),
        endpoint("hotkey", "hot_frac=0.99"),
    ];
    let endpoints_ok = endpoints.iter().all(|p| p.auto == p.empirical);

    let path = "bench_results/BENCH_workloads.json";
    std::fs::create_dir_all("bench_results").expect("mkdir bench_results");
    std::fs::write(path, to_json(&points, endpoints_ok)).expect("write report");
    println!("report: {path}");

    if check {
        if endpoints_ok {
            println!("check: auto_select matches the empirical winner at all 4 skew endpoints");
        } else {
            for p in endpoints {
                if p.auto != p.empirical {
                    eprintln!(
                        "check FAILED: {} {}: auto_select picked {} but {} was faster \
                         ({} vs {} total cycles)",
                        p.family,
                        p.param,
                        p.auto.label(),
                        p.empirical.label(),
                        p.phased_total(),
                        p.ie_total()
                    );
                }
            }
            std::process::exit(1);
        }
    }
}
