//! Figure 6: `euler` on the 2.8K-node and 9.4K-node meshes.
//!
//! Strategies 1c / 2c / 4c / 2b over 2–32 processors, 100 time steps,
//! inspector executed once (outside the timed loop, as in §5.4.1).
//!
//! Paper's shape: low 2-processor absolute speedups (1.10–1.24); 2c the
//! best at scale with relative 2→32 speedups of 9.28 (2K) and 10.36
//! (10K); 2c beats 1c by 15–30%; block (2b) competitive at P ≤ 4 but
//! 16–33% behind cyclic at P ≥ 8 from per-phase load imbalance.

use irred::{seq_reduction, PhasedEngine, ReductionEngine};
use kernels::EulerProblem;
use repro_bench::{
    dump_trace, lhs_procs, lhs_sweeps, paper_strategies, trace_requested, ExecutionConfig, Report,
    Row, SimConfig, StrategyConfig,
};
use workloads::{Distribution, MeshPreset};

fn main() {
    let cfg = SimConfig::default();
    let sweeps = lhs_sweeps();
    let mut rep = Report::new("Figure 6: euler 2K and 10K meshes");

    let datasets = [
        (MeshPreset::Euler2K, 7.84, [7.12, 9.28, 8.49, 6.78]),
        (MeshPreset::Euler10K, 29.07, [7.62, 10.36, 9.95, 6.94]),
    ];

    for (preset, paper_seq, paper_rel) in datasets {
        let label = preset.label().to_string();
        let problem = EulerProblem::preset(preset, 1);
        let seq = seq_reduction(&problem.spec, sweeps, cfg);
        rep.seq(&label, seq.seconds, paper_seq);

        for (si, &(k, dist, name)) in paper_strategies().iter().enumerate() {
            for &p in &lhs_procs() {
                let strat = StrategyConfig::new(p, k, dist, sweeps);
                let r = PhasedEngine::sim(cfg).run(&problem.spec, &strat).unwrap();
                rep.push(Row {
                    dataset: label.clone(),
                    strategy: name.to_string(),
                    procs: p,
                    seconds: r.seconds,
                    speedup: seq.seconds / r.seconds,
                });
            }
            if let Some(rel) = rep.relative(&label, name, 2, 32) {
                rep.note(format!(
                    "{label} {name}: relative speedup 2→32 = {rel:.2} (paper {:.2})",
                    paper_rel[si]
                ));
            }
        }
        // Block-vs-cyclic gap at scale (paper: 33% at 32 procs on 2K).
        if let (Some(c), Some(b)) = (
            rep.seconds_of(&label, "2c", 32),
            rep.seconds_of(&label, "2b", 32),
        ) {
            rep.note(format!(
                "{label}: cyclic beats block at P=32 by {:+.1}% (paper: 33% on the 2K mesh)",
                (b / c - 1.0) * 100.0
            ));
        }
    }
    rep.save().expect("write csv");

    if trace_requested() {
        let problem = EulerProblem::preset(MeshPreset::Euler2K, 1);
        let strat = StrategyConfig::new(8, 2, Distribution::Cyclic, 2);
        let traced = PhasedEngine::new(ExecutionConfig::sim(cfg).traced())
            .run(&problem.spec, &strat)
            .unwrap();
        dump_trace("fig6", &traced).expect("write trace");
    }
}
