//! Figure 5: `mvm` on NAS CG class B.
//!
//! Class B (75 000 rows, 13.7 M nonzeros) was too large for the paper's
//! 1- and 2-node configurations, so it reports **relative speedups
//! against the best 4-processor version (k = 2)** over 4–64 processors.

use kernels::MvmProblem;
use repro_bench::{
    dump_trace, mvm_sweeps, quick, trace_requested, ExecutionConfig, Report, Row, SimConfig,
    StrategyConfig,
};
use workloads::{CgClass, Distribution};

fn main() {
    let cfg = SimConfig::default();
    let sweeps = if quick() { 3 } else { mvm_sweeps().min(20) };
    let mut rep = Report::new("Figure 5: mvm class B");
    let label = "mvm-B";

    let problem = MvmProblem::nas_class(CgClass::B, 1);
    let procs: Vec<usize> = if quick() {
        vec![4, 16, 64]
    } else {
        vec![4, 8, 16, 32, 64]
    };

    // Baseline: the best 4-processor version (k = 2), as in the paper.
    let base = problem
        .run_sim(&StrategyConfig::new(4, 2, Distribution::Block, sweeps), cfg)
        .seconds;
    rep.note(format!(
        "baseline: k2 @ 4 procs = {base:.3}s (relative speedup 4.0 by definition)"
    ));

    for &k in &[1usize, 2, 4] {
        for &p in &procs {
            let strat = StrategyConfig::new(p, k, Distribution::Block, sweeps);
            let r = problem.run_sim(&strat, cfg);
            rep.push(Row {
                dataset: label.to_string(),
                strategy: format!("k{k}"),
                procs: p,
                seconds: r.seconds,
                // Relative speedup normalized so the 4-proc baseline = 4.
                speedup: 4.0 * base / r.seconds,
            });
        }
    }

    if let (Some(t1), Some(t2), Some(t4)) = (
        rep.seconds_of(label, "k1", 64),
        rep.seconds_of(label, "k2", 64),
        rep.seconds_of(label, "k4", 64),
    ) {
        rep.note(format!(
            "at P=64: k2 beats k1 by {:+.1}%, k4 by {:+.1}% (paper's class-B plot shows the same ordering as class A)",
            (t1 / t2 - 1.0) * 100.0,
            (t4 / t2 - 1.0) * 100.0
        ));
    }
    rep.save().expect("write csv");

    if trace_requested() {
        // Re-run the baseline configuration with the ring sink on and
        // export the phase timeline + Chrome trace.
        let strat = StrategyConfig::new(4, 2, Distribution::Block, sweeps.min(2));
        let traced = problem.run_sim(&strat, ExecutionConfig::sim(cfg).traced());
        dump_trace("fig5", &traced).expect("write trace");
    }
}
