//! §5.4.3's discussion, made concrete: the phased strategy vs the
//! classic partitioning-based inspector/executor, on the same simulated
//! machine and the same euler meshes.
//!
//! The paper compares against Agrawal & Saltz's Intel Paragon results:
//! with partitioning and communication optimization, euler's 2K mesh got
//! "almost no speedups" and the 10K mesh a relative 2→32 speedup of ~8.
//! Here both families run on identical hardware assumptions, plus we
//! report the preprocessing costs each scheme pays (the phased
//! strategy's headline advantage for adaptive problems).

use std::sync::Arc;

use irred::baseline::{IeEngine, InspectorExecutor};
use irred::{seq_reduction, PhasedEngine, ReductionEngine, Workspace};
use kernels::euler::EulerKernel;
use kernels::EulerProblem;
use lightinspector::{inspect, InspectorInput, PhaseGeometry};
use repro_bench::{
    dump_trace, lhs_sweeps, trace_requested, ExecutionConfig, Report, Row, SimConfig,
    StrategyConfig,
};
use workloads::{distribute, rcb_partition, Distribution, MeshPreset};

/// The IE baseline cannot refresh replicated read state; compare on a
/// frozen-state euler kernel (one reference group, static q) — the same
/// loop body, no time-step feedback.
struct FrozenEuler(EulerKernel);

impl irred::EdgeKernel for FrozenEuler {
    fn num_refs(&self) -> usize {
        2
    }
    fn num_arrays(&self) -> usize {
        4
    }
    fn num_read_arrays(&self) -> usize {
        0
    }
    fn contrib(&self, _read: &[f64], iter: usize, elems: &[u32], out: &mut [f64]) {
        // Delegate to the real euler body with the frozen state (euler
        // has one read array, so `q0` already is the interleaved layout).
        self.0.contrib(&self.0.q0, iter, elems, out)
    }
    fn flops_per_iter(&self) -> u64 {
        self.0.flops_per_iter()
    }
    fn edge_reads_per_iter(&self) -> usize {
        1
    }
    fn node_reads_per_elem(&self) -> usize {
        1
    }
}

fn main() {
    let cfg = SimConfig::default();
    let sweeps = lhs_sweeps();
    let mut rep = Report::new("Baseline comparison: phased vs inspector-executor (euler)");

    for preset in [MeshPreset::Euler2K, MeshPreset::Euler10K] {
        let problem = EulerProblem::preset(preset, 1);
        let kernel = FrozenEuler(EulerKernel {
            coeff: problem.spec.kernel.coeff.clone(),
            q0: problem.spec.kernel.q0.clone(),
        });
        let spec = irred::PhasedSpec {
            kernel: std::sync::Arc::new(kernel),
            num_elements: problem.spec.num_elements,
            indirection: problem.spec.indirection.clone(),
        };
        let label = preset.label().to_string();
        let seq = seq_reduction(&spec, sweeps, cfg);
        rep.seq(&label, seq.seconds, f64::NAN);

        for &p in &[2usize, 8, 32] {
            // Phased (2c).
            let strat = StrategyConfig::new(p, 2, Distribution::Cyclic, sweeps);
            let r = PhasedEngine::sim(cfg).run(&spec, &strat).unwrap();
            rep.push(Row {
                dataset: label.clone(),
                strategy: "phased-2c".into(),
                procs: p,
                seconds: r.seconds,
                speedup: seq.seconds / r.seconds,
            });

            // Inspector/executor with RCB ownership.
            let owners = rcb_partition(&problem.mesh.coords, p.next_power_of_two());
            let owners: Arc<Vec<u32>> = Arc::new(owners.iter().map(|&o| o % p as u32).collect());
            let ie_strat = StrategyConfig::new(p, 1, Distribution::Block, sweeps);
            let ie_engine = IeEngine::with_owners(cfg, Arc::clone(&owners));
            let mut prepared = ie_engine.prepare(&spec, &ie_strat).expect("valid IE spec");
            let ie = ie_engine
                .execute(&mut prepared, &mut Workspace::new())
                .expect("IE run");
            if trace_requested() && p == 8 && matches!(preset, MeshPreset::Euler2K) {
                // Export both schemes' event streams at the same scale:
                // the phased ring rotation vs the IE scatter/fold pattern.
                let traced = PhasedEngine::new(ExecutionConfig::sim(cfg).traced())
                    .run(&spec, &StrategyConfig::new(p, 2, Distribution::Cyclic, 2))
                    .unwrap();
                dump_trace("baseline_compare_phased", &traced).expect("write trace");
                let t_ie =
                    IeEngine::with_owners(ExecutionConfig::sim(cfg).traced(), owners.clone());
                let mut t_prep = t_ie.prepare(&spec, &ie_strat).expect("valid IE spec");
                let ie_out = t_ie
                    .execute(&mut t_prep, &mut Workspace::new())
                    .expect("IE run");
                dump_trace("baseline_compare_ie", &ie_out).expect("write trace");
            }
            rep.push(Row {
                dataset: label.clone(),
                strategy: "ie-rcb".into(),
                procs: p,
                seconds: ie.seconds,
                speedup: seq.seconds / ie.seconds,
            });
            let part = InspectorExecutor::partitioning_cycles(
                spec.num_elements,
                spec.num_iterations(),
                &cfg,
            );
            rep.note(format!(
                "{label} P={p}: IE preprocessing = {:.1} ms inspector (communicating) + {:.1} ms partitioning; \
                 ghosts/proc ≈ {}",
                cfg.seconds(prepared.inspector_cycles()) * 1e3,
                cfg.seconds(part) * 1e3,
                prepared.ghost_counts().iter().sum::<usize>() / p
            ));

            // LightInspector cost for the same configuration (measured on
            // the host, reported as modeled cycles ∝ passes over the data).
            let g = PhaseGeometry::new(p, 2, spec.num_elements);
            let dist = distribute(spec.num_iterations(), p, Distribution::Cyclic);
            let li_start = std::time::Instant::now();
            for (q, owned) in dist.iter().enumerate().take(p) {
                let l1: Vec<u32> = owned
                    .iter()
                    .map(|&i| spec.indirection[0][i as usize])
                    .collect();
                let l2: Vec<u32> = owned
                    .iter()
                    .map(|&i| spec.indirection[1][i as usize])
                    .collect();
                let _ = inspect(InspectorInput {
                    geometry: g,
                    proc_id: q,
                    indirection: &[&l1, &l2],
                })
                .unwrap();
            }
            rep.note(format!(
                "{label} P={p}: LightInspector (all {p} procs, host wall) = {:.2} ms — no communication",
                li_start.elapsed().as_secs_f64() * 1e3
            ));
        }
        if let (Some(ph), Some(ie)) = (
            rep.relative(&label, "phased-2c", 2, 32),
            rep.relative(&label, "ie-rcb", 2, 32),
        ) {
            rep.note(format!(
                "{label}: relative 2→32 — phased {ph:.2} vs IE {ie:.2} \
                 (paper/Paragon: ~no speedup on 2K, ~8 on 10K for partitioning schemes)"
            ));
        }
    }
    rep.save().expect("write csv");
}
