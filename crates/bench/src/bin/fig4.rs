//! Figure 4: parallel performance of `mvm` on NAS CG classes W and A.
//!
//! The paper plots execution time for k ∈ {1, 2, 4} over 1–32 processors
//! (64 for class A) against the sequential time on one i860XP. Expected
//! shape: near-linear absolute speedups; k = 2 best, k = 4 a close
//! second, k = 1 measurably worse at scale (7.9–15.3%).

use kernels::MvmProblem;
use repro_bench::{
    dump_trace, mvm_sweeps, quick, trace_requested, ExecutionConfig, Report, Row, SimConfig,
    StrategyConfig,
};
use workloads::{CgClass, Distribution};

fn main() {
    let cfg = SimConfig::default();
    let sweeps = mvm_sweeps();
    let mut rep = Report::new("Figure 4: mvm class W and class A");

    let classes: &[(CgClass, f64, &[usize])] = &[
        (CgClass::W, 41.38, &[2, 4, 8, 16, 32]),
        (CgClass::A, 154.55, &[2, 4, 8, 16, 32, 64]),
    ];

    for &(class, paper_seq, procs) in classes {
        let label = format!("mvm-{}", class.label());
        let problem = MvmProblem::nas_class(class, 1);
        let (_, seq_cycles) = problem.sequential(sweeps, cfg);
        let seq_s = cfg.seconds(seq_cycles);
        rep.seq(&label, seq_s, paper_seq);

        let plist: Vec<usize> = if quick() { vec![2, 32] } else { procs.to_vec() };
        for &k in &[1usize, 2, 4] {
            for &p in &plist {
                let strat = StrategyConfig::new(p, k, Distribution::Block, sweeps);
                let r = problem.run_sim(&strat, cfg);
                rep.push(Row {
                    dataset: label.clone(),
                    strategy: format!("k{k}"),
                    procs: p,
                    seconds: r.seconds,
                    speedup: seq_s / r.seconds,
                });
            }
        }
        // Paper's headline comparisons at the largest configuration.
        let p = *plist.last().unwrap();
        if let (Some(t1), Some(t2), Some(t4)) = (
            rep.seconds_of(&label, "k1", p),
            rep.seconds_of(&label, "k2", p),
            rep.seconds_of(&label, "k4", p),
        ) {
            rep.note(format!(
                "{label}: at P={p}, k2 beats k1 by {:+.1}% and k4 by {:+.1}% \
                 (paper: W@32 13.99%/≤4.84%, A@64 15.31%/≤3.48%)",
                (t1 / t2 - 1.0) * 100.0,
                (t4 / t2 - 1.0) * 100.0
            ));
        }
    }
    rep.save().expect("write csv");

    if trace_requested() {
        let problem = MvmProblem::nas_class(CgClass::W, 1);
        let strat = StrategyConfig::new(8, 2, Distribution::Block, sweeps.min(2));
        let traced = problem.run_sim(&strat, ExecutionConfig::sim(cfg).traced());
        dump_trace("fig4", &traced).expect("write trace");
    }
}
