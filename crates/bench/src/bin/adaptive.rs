//! The paper's future work, implemented: adaptive irregular reductions
//! with an **incremental LightInspector**.
//!
//! Scenario: `moldyn` with positions drifting every `R` sweeps, forcing
//! a neighbour-list rebuild. We compare the preprocessing cost per
//! adaptation event for three schemes:
//!
//! 1. full LightInspector re-run (what the paper's system would do);
//! 2. incremental LightInspector (our extension): stable hash ownership
//!    of pairs + a multiset diff, so updates scale with the *churn*;
//! 3. what a partitioning-based scheme would pay: re-partition +
//!    communicating re-inspection (modeled).
//!
//! The point of the paper — "the performance can be obtained on adaptive
//! problems, without paying the high overhead of frequently
//! partitioning" — becomes quantitative here.

use irred::baseline::InspectorExecutor;
use lightinspector::{diff_pairs, inspect, IncrementalInspector, InspectorInput, PhaseGeometry};
use repro_bench::{dump_trace_events, quick, trace_requested, Report, SimConfig};
use trace::{TraceEvent, TraceKind};
use workloads::hash_distribute_pairs;
use workloads::MolDyn;

fn padded(pairs: &[(u32, u32)], capacity: usize) -> (Vec<u32>, Vec<u32>) {
    assert!(pairs.len() <= capacity, "neighbour list overflow");
    let mut a: Vec<u32> = pairs.iter().map(|p| p.0).collect();
    let mut b: Vec<u32> = pairs.iter().map(|p| p.1).collect();
    a.resize(capacity, 0);
    b.resize(capacity, 0);
    (a, b)
}

fn main() {
    let cfg = SimConfig::default();
    let mut rep = Report::new("Adaptive: incremental LightInspector under churn");
    let procs = 8usize;
    let k = 2usize;
    let rounds = if quick() { 3 } else { 10 };

    let mut md = MolDyn::fcc(9, 1.05); // the 2 916-molecule dataset
    let g = PhaseGeometry::new(procs, k, md.num_molecules);

    // Fixed-capacity local lists (15% slack) with stable hash ownership.
    let initial = hash_distribute_pairs(&md.ia1, &md.ia2, procs);
    let caps: Vec<usize> = initial.iter().map(|v| v.len() + v.len() / 7 + 8).collect();
    let mut incs: Vec<IncrementalInspector> = initial
        .iter()
        .zip(&caps)
        .enumerate()
        .map(|(q, (pairs, &cap))| {
            let (a, b) = padded(pairs, cap);
            IncrementalInspector::new(g, q, vec![a, b])
        })
        .collect();

    let mut total_full = 0.0;
    let mut total_inc = 0.0;
    for round in 0..rounds {
        md.perturb(0.04, round as u64);
        let churn = md.rebuild_interactions();
        let fresh = hash_distribute_pairs(&md.ia1, &md.ia2, procs);

        // Scheme 1: full re-inspection on every proc.
        let t0 = std::time::Instant::now();
        for (q, (pairs, &cap)) in fresh.iter().zip(&caps).enumerate() {
            let (a, b) = padded(pairs, cap);
            let _ = inspect(InspectorInput {
                geometry: g,
                proc_id: q,
                indirection: &[&a, &b],
            })
            .unwrap();
        }
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;
        total_full += full_ms;

        // Scheme 2: incremental. The diff is neighbour-list bookkeeping a
        // real rebuild produces for free (it knows which pairs it
        // added/removed), so it is timed separately from the plan updates.
        let mut diffs = Vec::with_capacity(procs);
        let td = std::time::Instant::now();
        for (q, inc) in incs.iter().enumerate() {
            let (na, nb) = padded(&fresh[q], caps[q]);
            let new_pairs: Vec<(u32, u32)> = na.iter().zip(&nb).map(|(&x, &y)| (x, y)).collect();
            diffs.push(diff_pairs(
                inc.indirection()[0].as_slice(),
                inc.indirection()[1].as_slice(),
                &new_pairs,
            ));
        }
        let diff_ms = td.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        let mut updated = 0usize;
        for (inc, d) in incs.iter_mut().zip(diffs) {
            updated += d.len();
            for (slot, x, y) in d {
                inc.update(slot, &[x, y]);
            }
        }
        let inc_ms = t1.elapsed().as_secs_f64() * 1e3;
        total_inc += inc_ms;

        rep.note(format!(
            "round {round}: churn {churn} pairs → {updated} plan updates — full {full_ms:.2} ms vs incremental {inc_ms:.2} ms (+{diff_ms:.2} ms list diff) = {:.1}x on the inspector",
            full_ms / inc_ms.max(1e-9)
        ));
    }

    // Scheme 3: the partitioning scheme's modeled cost per event.
    let part =
        InspectorExecutor::partitioning_cycles(md.num_molecules, md.num_interactions(), &cfg);
    rep.note(format!(
        "partitioning-based scheme per adaptation (modeled): {:.1} ms re-partition + communicating inspector",
        cfg.seconds(part) * 1e3
    ));
    rep.note(format!(
        "totals over {rounds} rounds: full {total_full:.1} ms, incremental {total_inc:.1} ms ({:.1}x cheaper)",
        total_full / total_inc.max(1e-9)
    ));
    rep.save().expect("write csv");

    if trace_requested() {
        // This binary never runs the reduction itself, so trace the
        // inspection pipeline: one full LightInspector pass per
        // processor, stage completions as events.
        let mut events = Vec::new();
        let fresh = hash_distribute_pairs(&md.ia1, &md.ia2, procs);
        for (q, (pairs, &cap)) in fresh.iter().zip(&caps).enumerate() {
            let (a, b) = padded(pairs, cap);
            let _ = lightinspector::inspect_observed(
                InspectorInput {
                    geometry: g,
                    proc_id: q,
                    indirection: &[&a, &b],
                },
                &mut |stage| {
                    events.push(TraceEvent::new(
                        stage as u64,
                        q as u32,
                        TraceKind::InspectorStage { stage },
                    ));
                },
            )
            .unwrap();
        }
        dump_trace_events("adaptive", &events).expect("write trace");
    }
}
