//! Serving-layer throughput/latency harness for `reductiond`.
//!
//! Spawns an in-process daemon (or connects to an external one with
//! `--addr`), drives it with N tenant threads submitting jobs that
//! share a handful of plan structures, and reports jobs/sec plus
//! cold-vs-warm latency percentiles — the warm numbers show what the
//! plan cache and workspace pooling amortize away.
//!
//! Modes:
//!   bench_server                       in-process daemon, 2 tenants
//!   bench_server --addr HOST:PORT      drive an external daemon
//!   bench_server --tenants N --jobs N  scale the client side
//!   bench_server --structures N        distinct plan shapes (default 4)
//!   bench_server --chaos               add an adversarial tenant
//!   bench_server --check               verify every reply bit-identical
//!                                      to a direct engine run
//!
//! `REPRO_QUICK=1` shrinks the job count for CI smoke use.

use std::sync::Arc;
use std::time::{Duration, Instant};

use irred::{ExecutionConfig, PhasedSpec, ReductionEngine, SeqEngine, StrategyConfig};
use server::client::Client;
use server::executor::JobKernel;
use server::protocol::{FaultSpec, Frame, SubmitJob, FLAG_NO_FALLBACK};
use server::{Server, ServerConfig};
use workloads::Distribution;

struct Opts {
    addr: Option<String>,
    tenants: usize,
    jobs: usize,
    structures: u64,
    chaos: bool,
    check: bool,
    elements: u32,
    iterations: u32,
}

impl Default for Opts {
    fn default() -> Self {
        let quick = std::env::var("REPRO_QUICK").is_ok();
        Opts {
            addr: None,
            tenants: 2,
            jobs: if quick { 40 } else { 400 },
            structures: 4,
            chaos: false,
            check: false,
            elements: 256,
            iterations: 2048,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_server [--addr HOST:PORT] [--tenants N] [--jobs N] \
         [--structures N] [--elements N] [--iterations N] [--chaos] [--check]"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => o.addr = Some(val()),
            "--tenants" => o.tenants = val().parse().unwrap_or_else(|_| usage()),
            "--jobs" => o.jobs = val().parse().unwrap_or_else(|_| usage()),
            "--structures" => o.structures = val().parse().unwrap_or_else(|_| usage()),
            "--elements" => o.elements = val().parse().unwrap_or_else(|_| usage()),
            "--iterations" => o.iterations = val().parse().unwrap_or_else(|_| usage()),
            "--chaos" => o.chaos = true,
            "--check" => o.check = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    o
}

/// Deterministic job: `structure` picks the plan shape (indirection +
/// strategy), `seed` perturbs only the weights, so jobs with the same
/// `structure` hit the same plan-cache entry.
fn mk_job(o: &Opts, id: u64, structure: u64, seed: u64) -> SubmitJob {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let elems = o.elements;
    let iters = o.iterations as usize;
    let ind = |salt: u64| -> Vec<u32> {
        (0..iters)
            .map(|i| {
                ((i as u64).wrapping_mul(2654435761 + salt * 97 + structure * 31)
                    % u64::from(elems)) as u32
            })
            .collect()
    };
    SubmitJob {
        job_id: id,
        deadline_ms: 0,
        flags: 0,
        num_elements: elems,
        iterations: iters as u32,
        num_refs: 2,
        num_arrays: 1,
        procs: 4,
        k: 2,
        dist: if structure.is_multiple_of(2) { 0 } else { 1 },
        sweeps: 2,
        fault: None,
        weights: (0..iters).map(|_| (next() % 4096) as f64 / 128.0).collect(),
        indirection: vec![ind(1), ind(2)],
    }
}

fn direct_values(job: &SubmitJob) -> Vec<Vec<f64>> {
    let spec = PhasedSpec {
        kernel: Arc::new(JobKernel {
            num_refs: usize::from(job.num_refs),
            num_arrays: usize::from(job.num_arrays),
            weights: Arc::new(job.weights.clone()),
        }),
        num_elements: job.num_elements as usize,
        indirection: Arc::new(job.indirection.clone()),
    };
    let strat = StrategyConfig::try_new(
        usize::from(job.procs),
        usize::from(job.k),
        if job.dist == 0 {
            Distribution::Block
        } else {
            Distribution::Cyclic
        },
        usize::from(job.sweeps),
    )
    .expect("bench strategy");
    SeqEngine::new(ExecutionConfig::default())
        .run(&spec, &strat)
        .expect("direct run")
        .values
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

struct TenantResult {
    ok: u64,
    busy_retries: u64,
    cold: Vec<Duration>,
    warm: Vec<Duration>,
}

fn run_tenant(addr: std::net::SocketAddr, o: &Opts, t: usize) -> TenantResult {
    let tenant = format!("bench-{t}");
    let mut c = Client::connect(addr, &tenant).expect("connect");
    let mut res = TenantResult {
        ok: 0,
        busy_retries: 0,
        cold: Vec::new(),
        warm: Vec::new(),
    };
    let mut seen = std::collections::HashSet::new();
    for i in 0..o.jobs as u64 {
        let structure = i % o.structures;
        let job = mk_job(o, t as u64 * 1_000_000 + i, structure, t as u64 * 31 + i);
        let expect = o.check.then(|| direct_values(&job));
        let t0 = Instant::now();
        let frame = loop {
            match c.submit(job.clone()).expect("submit") {
                Frame::Busy(b) => {
                    res.busy_retries += 1;
                    std::thread::sleep(Duration::from_millis(u64::from(b.retry_after_ms).min(20)));
                }
                f => break f,
            }
        };
        let dt = t0.elapsed();
        match frame {
            Frame::JobOk(ok) => {
                res.ok += 1;
                if let Some(expect) = expect {
                    assert_eq!(
                        ok.values, expect,
                        "tenant {t} job {i}: bit-identity violated"
                    );
                }
            }
            f => panic!("tenant {t} job {i}: {f:?}"),
        }
        if seen.insert(structure) {
            res.cold.push(dt);
        } else {
            res.warm.push(dt);
        }
    }
    res
}

/// One adversarial neighbor cycling poisoned jobs + wire garbage, to
/// measure healthy-tenant latency under fault-isolation pressure.
fn run_chaos(
    addr: std::net::SocketAddr,
    o: &Opts,
    stop: Arc<std::sync::atomic::AtomicBool>,
) -> u64 {
    let mut rounds = 0u64;
    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
        rounds += 1;
        if let Ok(mut c) = Client::connect(addr, "bench-chaos") {
            let mut j = mk_job(o, rounds, rounds % o.structures, rounds);
            j.fault = Some(FaultSpec {
                kind: 3,
                seed: rounds,
            });
            j.flags = FLAG_NO_FALLBACK;
            let _ = c.submit(j);
        }
        if let Ok(mut c) = Client::connect(addr, "bench-chaos") {
            let _ = c.send_raw(&[0xFF; 32]);
            let _ = c.recv();
        }
    }
    rounds
}

fn main() {
    let o = parse_opts();

    // In-process daemon unless an external address was given.
    let local = o.addr.is_none().then(|| {
        Server::bind_tcp(
            "127.0.0.1:0",
            ServerConfig {
                workers: 4,
                ..ServerConfig::default()
            },
        )
        .expect("bind in-process daemon")
    });
    let addr: std::net::SocketAddr = match (&local, &o.addr) {
        (Some(s), _) => s.local_addr().expect("local addr"),
        (None, Some(a)) => a.parse().expect("--addr must be HOST:PORT"),
        (None, None) => unreachable!(),
    };
    println!(
        "# bench_server: {} tenants x {} jobs, {} structures, {} elems x {} iters{}{}",
        o.tenants,
        o.jobs,
        o.structures,
        o.elements,
        o.iterations,
        if o.chaos { ", +chaos" } else { "" },
        if o.check { ", checked" } else { "" },
    );

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let chaos = o.chaos.then(|| {
        let stop = Arc::clone(&stop);
        let oc = Opts {
            addr: o.addr.clone(),
            ..parse_opts()
        };
        std::thread::spawn(move || run_chaos(addr, &oc, stop))
    });

    let t0 = Instant::now();
    let results: Vec<TenantResult> = std::thread::scope(|s| {
        let o = &o;
        let handles: Vec<_> = (0..o.tenants)
            .map(|t| s.spawn(move || run_tenant(addr, o, t)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant"))
            .collect()
    });
    let wall = t0.elapsed();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let chaos_rounds = chaos.map(|h| h.join().expect("chaos"));

    let ok: u64 = results.iter().map(|r| r.ok).sum();
    let busy: u64 = results.iter().map(|r| r.busy_retries).sum();
    let mut cold: Vec<Duration> = results
        .iter()
        .flat_map(|r| r.cold.iter().copied())
        .collect();
    let mut warm: Vec<Duration> = results
        .iter()
        .flat_map(|r| r.warm.iter().copied())
        .collect();
    cold.sort();
    warm.sort();

    println!("jobs_ok         {ok}");
    println!("busy_retries    {busy}");
    println!("wall_s          {:.3}", wall.as_secs_f64());
    println!("throughput_jps  {:.1}", ok as f64 / wall.as_secs_f64());
    println!(
        "cold_ms         p50={:.3} p99={:.3} (n={}, first job per structure: prepare + plan build)",
        ms(percentile(&cold, 0.50)),
        ms(percentile(&cold, 0.99)),
        cold.len()
    );
    println!(
        "warm_ms         p50={:.3} p99={:.3} (n={}, plan-cache hits)",
        ms(percentile(&warm, 0.50)),
        ms(percentile(&warm, 0.99)),
        warm.len()
    );
    if let Some(rounds) = chaos_rounds {
        println!("chaos_rounds    {rounds}");
    }

    // Pull the daemon's own view before shutting it down.
    if let Ok(mut c) = Client::connect(addr, "bench-metrics") {
        if let Ok(report) = c.metrics() {
            for line in report.lines() {
                if line.starts_with("plan_cache") || line.starts_with("jobs_") {
                    println!("daemon: {line}");
                }
            }
        }
        if local.is_some() {
            c.shutdown().expect("shutdown");
        }
    }
    if let Some(s) = local {
        s.stop();
    }
    if o.check {
        println!("# bit-identity: every reply matched a direct engine run");
    }
}
