//! # repro-bench — the reproduction harness
//!
//! One binary per figure of the paper's evaluation section:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig4` | `mvm` on classes W and A (exec time & speedups, k ∈ {1,2,4}) |
//! | `fig5` | `mvm` on class B (relative speedups vs best 4-proc version) |
//! | `fig6` | `euler` on both meshes, strategies 1c/2c/4c/2b |
//! | `fig7` | `moldyn` on both datasets, strategies 1c/2c/4c/2b |
//! | `baseline_compare` | the §5.4.3 discussion: phased vs classic inspector/executor |
//! | `adaptive` | the paper's future work: incremental LightInspector under churn |
//! | `ablation` | k sweep, numbering-locality sensitivity, native backend |
//!
//! Every binary prints a table with the paper's corresponding numbers
//! alongside, and appends machine-readable CSV under `bench_results/`.
//!
//! Environment knobs: `REPRO_SWEEPS` overrides the sweep count
//! (default: 100 time steps for euler/moldyn, 50 products for mvm);
//! `REPRO_QUICK=1` shrinks everything for smoke-testing. Passing
//! `--trace` on any figure binary re-runs one representative
//! configuration with the ring sink on, prints the per-phase timeline
//! table, and writes a Chrome `trace_event` JSON under `bench_results/`.

use std::fmt::Write as _;
use std::io::Write as _;

pub use earth_model::sim::SimConfig;
pub use irred::{ExecutionConfig, RunOutcome, StrategyConfig};
pub use workloads::Distribution;

/// Sweep count for the LHS kernels (euler/moldyn), honoring the env knobs.
pub fn lhs_sweeps() -> usize {
    sweeps_or(100)
}

/// Sweep count for mvm.
pub fn mvm_sweeps() -> usize {
    sweeps_or(50)
}

fn sweeps_or(default: usize) -> usize {
    if let Ok(s) = std::env::var("REPRO_SWEEPS") {
        if let Ok(v) = s.parse() {
            return v;
        }
    }
    if quick() {
        default / 10
    } else {
        default
    }
}

/// Whether `REPRO_QUICK` smoke mode is on.
pub fn quick() -> bool {
    std::env::var("REPRO_QUICK").is_ok_and(|v| v == "1")
}

/// Whether `--trace` was passed on the command line.
pub fn trace_requested() -> bool {
    std::env::args().any(|a| a == "--trace")
}

/// Dump a traced run: print the per-phase timeline table and the metrics
/// registry, and write `bench_results/<slug>_trace.json` as Chrome
/// `trace_event` JSON (open in `chrome://tracing` or Perfetto). The JSON
/// is re-validated through the hand validator before it is written —
/// a malformed export fails the run rather than producing a file
/// Perfetto rejects.
pub fn dump_trace(slug: &str, out: &RunOutcome) -> std::io::Result<()> {
    dump_trace_events(slug, &out.trace)?;
    print!("{}", out.metrics().render());
    Ok(())
}

/// The event-stream half of [`dump_trace`], for call sites that have a
/// raw event list rather than a full [`RunOutcome`].
pub fn dump_trace_events(slug: &str, events: &[trace::TraceEvent]) -> std::io::Result<()> {
    let json = trace::chrome_trace_json(events);
    let n = trace::validate_chrome_trace(&json)
        .unwrap_or_else(|e| panic!("generated Chrome trace is invalid: {e}"));
    std::fs::create_dir_all("bench_results")?;
    let path = format!("bench_results/{slug}_trace.json");
    std::fs::write(&path, &json)?;
    println!("--- phase timeline ({slug}) ---");
    print!("{}", trace::Timeline::from_events(events).table());
    println!("chrome trace: {path} ({n} events)");
    Ok(())
}

/// Processor counts used by the paper for the LHS kernels.
pub fn lhs_procs() -> Vec<usize> {
    if quick() {
        vec![2, 8, 32]
    } else {
        vec![2, 4, 8, 16, 32]
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Row {
    pub dataset: String,
    pub strategy: String,
    pub procs: usize,
    pub seconds: f64,
    /// Absolute speedup vs the metered sequential run.
    pub speedup: f64,
}

/// Collects rows, prints the table, and writes the CSV.
pub struct Report {
    title: String,
    rows: Vec<Row>,
    notes: Vec<String>,
}

impl Report {
    pub fn new(title: &str) -> Self {
        println!("=== {title} ===");
        Report {
            title: title.to_string(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn push(&mut self, row: Row) {
        println!(
            "  {:<22} {:<4} P={:<3} {:>9.3}s  speedup {:>6.2}",
            row.dataset, row.strategy, row.procs, row.seconds, row.speedup
        );
        self.rows.push(row);
    }

    pub fn seq(&mut self, dataset: &str, seconds: f64, paper_seconds: f64) {
        println!("  {dataset:<22} sequential {seconds:>9.3}s   (paper: {paper_seconds}s)");
        self.rows.push(Row {
            dataset: dataset.to_string(),
            strategy: "seq".to_string(),
            procs: 1,
            seconds,
            speedup: 1.0,
        });
    }

    /// A free-form comparison line, echoed and kept in the CSV as a comment.
    pub fn note(&mut self, text: String) {
        println!("  {text}");
        self.notes.push(text);
    }

    /// Seconds of one recorded configuration.
    pub fn seconds_of(&self, dataset: &str, strategy: &str, procs: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.dataset == dataset && r.strategy == strategy && r.procs == procs)
            .map(|r| r.seconds)
    }

    /// Relative speedup between two of this report's configurations.
    pub fn relative(&self, dataset: &str, strategy: &str, from: usize, to: usize) -> Option<f64> {
        let find = |p: usize| {
            self.rows
                .iter()
                .find(|r| r.dataset == dataset && r.strategy == strategy && r.procs == p)
                .map(|r| r.seconds)
        };
        Some(find(from)? / find(to)?)
    }

    /// Write `bench_results/<slug>.csv`.
    pub fn save(&self) -> std::io::Result<()> {
        std::fs::create_dir_all("bench_results")?;
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let mut out = String::new();
        writeln!(out, "dataset,strategy,procs,seconds,speedup").unwrap();
        for r in &self.rows {
            writeln!(
                out,
                "{},{},{},{:.6},{:.4}",
                r.dataset, r.strategy, r.procs, r.seconds, r.speedup
            )
            .unwrap();
        }
        for n in &self.notes {
            writeln!(out, "# {n}").unwrap();
        }
        let mut f = std::fs::File::create(format!("bench_results/{slug}.csv"))?;
        f.write_all(out.as_bytes())
    }
}

/// One point of a workload's host-core scaling curve: the median
/// execute wall-clock when the native runtime is restricted to
/// `host_threads` OS threads.
#[derive(Debug, Clone)]
pub struct CorePoint {
    pub host_threads: usize,
    pub median_s: f64,
}

/// The number of host cores the native backend can use. Captured once
/// per process (the old code re-queried it at JSON-serialization time,
/// which is how `host_cores: 1` could disagree with what the timed runs
/// actually used).
pub fn detect_host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// The host-thread counts a scaling sweep visits: powers of two up to
/// the detected core count, always including 1 and the core count
/// itself. On a single-core host this degenerates to `[1]` — the curve
/// then has one point and the monotonicity gate is trivially satisfied.
pub fn core_sweep_counts() -> Vec<usize> {
    let max = detect_host_cores();
    let mut counts = vec![1];
    let mut c = 2;
    while c < max {
        counts.push(c);
        c *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

/// One workload's native-backend timing: wall-clock samples reduced to
/// median/MAD, plus the prepare cost, a timed sequential reference, the
/// [`irred::Tuning`] label the run used, and (when the bench swept host
/// cores) the per-core-count scaling curve.
#[derive(Debug, Clone)]
pub struct NativeBenchResult {
    pub name: String,
    pub strategy: String,
    pub tuning: String,
    pub reps: usize,
    pub median_s: f64,
    pub mad_s: f64,
    pub min_s: f64,
    pub max_s: f64,
    pub prepare_s: f64,
    pub seq_s: f64,
    pub core_curve: Vec<CorePoint>,
}

impl NativeBenchResult {
    pub fn new(
        name: &str,
        strategy: &str,
        samples: Vec<std::time::Duration>,
        prepare: std::time::Duration,
        seq_s: f64,
    ) -> Self {
        let mut secs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
        secs.sort_by(|a, b| a.total_cmp(b));
        let median = |s: &[f64]| -> f64 {
            let n = s.len();
            if n == 0 {
                0.0
            } else if n % 2 == 1 {
                s[n / 2]
            } else {
                0.5 * (s[n / 2 - 1] + s[n / 2])
            }
        };
        let med = median(&secs);
        let mut devs: Vec<f64> = secs.iter().map(|s| (s - med).abs()).collect();
        devs.sort_by(|a, b| a.total_cmp(b));
        NativeBenchResult {
            name: name.to_string(),
            strategy: strategy.to_string(),
            tuning: String::new(),
            reps: secs.len(),
            median_s: med,
            mad_s: median(&devs),
            min_s: secs.first().copied().unwrap_or(0.0),
            max_s: secs.last().copied().unwrap_or(0.0),
            prepare_s: prepare.as_secs_f64(),
            seq_s,
            core_curve: Vec::new(),
        }
    }

    /// Record the [`irred::Tuning`] label the measured runs used.
    pub fn with_tuning(mut self, label: String) -> Self {
        self.tuning = label;
        self
    }

    /// Attach a host-core scaling curve (one point per swept thread
    /// count, ascending).
    pub fn with_core_curve(mut self, curve: Vec<CorePoint>) -> Self {
        self.core_curve = curve;
        self
    }

    pub fn speedup_vs_seq(&self) -> f64 {
        if self.median_s > 0.0 {
            self.seq_s / self.median_s
        } else {
            0.0
        }
    }

    /// Human-readable one-liner for stdout.
    pub fn render(&self) -> String {
        format!(
            "  {:<12} {:<4} median {:>9.2} ms  mad {:>7.2} ms  prepare {:>8.2} ms  seq {:>9.2} ms  speedup {:>5.2}x",
            self.name,
            self.strategy,
            self.median_s * 1e3,
            self.mad_s * 1e3,
            self.prepare_s * 1e3,
            self.seq_s * 1e3,
            self.speedup_vs_seq(),
        )
    }
}

/// The machine-readable native-backend perf report
/// (`bench_results/BENCH_native.json`). Schema documented in
/// `bench_results/README.md`.
pub struct NativeReport {
    procs: usize,
    sweeps: usize,
    reps: usize,
    quick: bool,
    /// Captured at construction time — see [`detect_host_cores`].
    host_cores: usize,
    /// The default [`irred::Tuning`] label of the report's runs.
    tuning: String,
    results: Vec<NativeBenchResult>,
}

fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

impl NativeReport {
    pub fn new(procs: usize, sweeps: usize, reps: usize, quick: bool) -> Self {
        NativeReport {
            procs,
            sweeps,
            reps,
            quick,
            host_cores: detect_host_cores(),
            tuning: String::new(),
            results: Vec::new(),
        }
    }

    /// Record the default [`irred::Tuning`] label for the report header.
    pub fn set_tuning(&mut self, label: String) {
        self.tuning = label;
    }

    pub fn push(&mut self, r: NativeBenchResult) {
        self.results.push(r);
    }

    /// Serialize to the `BENCH_native.json` schema, version 2
    /// (hand-rolled, no serde). v2 adds the `tuning` labels and the
    /// per-workload `core_curve` arrays; `host_cores` is the value
    /// captured when the report was created, not at serialization time.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        writeln!(out, "{{").unwrap();
        writeln!(out, "  \"schema\": 2,").unwrap();
        writeln!(out, "  \"tool\": \"bench_native\",").unwrap();
        writeln!(out, "  \"git_sha\": \"{}\",", git_sha()).unwrap();
        writeln!(out, "  \"quick\": {},", self.quick).unwrap();
        writeln!(
            out,
            "  \"config\": {{ \"procs\": {}, \"sweeps\": {}, \"reps\": {}, \
             \"host_cores\": {}, \"tuning\": \"{}\" }},",
            self.procs, self.sweeps, self.reps, self.host_cores, self.tuning
        )
        .unwrap();
        writeln!(out, "  \"workloads\": [").unwrap();
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            // The workload record stays one-object-per-line (the
            // baseline parser is a line scanner); curve points follow
            // on their own lines, associated with the last-seen name.
            writeln!(
                out,
                "    {{ \"name\": \"{}\", \"strategy\": \"{}\", \"tuning\": \"{}\", \
                 \"reps\": {}, \
                 \"median_s\": {:.6}, \"mad_s\": {:.6}, \"min_s\": {:.6}, \"max_s\": {:.6}, \
                 \"prepare_s\": {:.6}, \"seq_s\": {:.6}, \"speedup_vs_seq\": {:.4},",
                r.name,
                r.strategy,
                r.tuning,
                r.reps,
                r.median_s,
                r.mad_s,
                r.min_s,
                r.max_s,
                r.prepare_s,
                r.seq_s,
                r.speedup_vs_seq(),
            )
            .unwrap();
            writeln!(out, "      \"core_curve\": [").unwrap();
            for (j, pt) in r.core_curve.iter().enumerate() {
                let pc = if j + 1 < r.core_curve.len() { "," } else { "" };
                writeln!(
                    out,
                    "        {{ \"host_threads\": {}, \"median_s\": {:.6} }}{}",
                    pt.host_threads, pt.median_s, pc
                )
                .unwrap();
            }
            writeln!(out, "      ] }}{comma}").unwrap();
        }
        writeln!(out, "  ]").unwrap();
        writeln!(out, "}}").unwrap();
        out
    }

    pub fn save(&self, path: &str) -> std::io::Result<()> {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Compare against a baseline `BENCH_native.json`: every workload
    /// present in BOTH reports must have `median_s` no worse than
    /// `(1 + tolerance) x` the baseline median, and every scaling-curve
    /// point present in both (same workload, same `host_threads`) must
    /// satisfy the same bound — a regression that only shows at some
    /// core counts still fails. Returns per-workload comparison lines
    /// on success, or a description of the first regression on failure.
    /// Workloads / curve points only in one report are noted but never
    /// fail the check (so the stable and the host can evolve).
    pub fn check_against(
        &self,
        baseline_path: &str,
        tolerance: f64,
    ) -> Result<Vec<String>, String> {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
        let base = parse_native_medians(&text);
        if base.is_empty() {
            return Err(format!("no workloads parsed from baseline {baseline_path}"));
        }
        let base_curves = parse_native_curves(&text);
        let mut lines = Vec::new();
        let mut worst: Option<(String, f64, f64)> = None;
        for r in &self.results {
            match base.iter().find(|(n, _)| *n == r.name) {
                Some((_, base_med)) => {
                    let ratio = if *base_med > 0.0 {
                        r.median_s / base_med
                    } else {
                        1.0
                    };
                    lines.push(format!(
                        "  {:<12} {:.2} ms vs baseline {:.2} ms ({:+.1} %)",
                        r.name,
                        r.median_s * 1e3,
                        base_med * 1e3,
                        (ratio - 1.0) * 100.0
                    ));
                    if ratio > 1.0 + tolerance && worst.as_ref().is_none_or(|(_, _, w)| ratio > *w)
                    {
                        worst = Some((r.name.clone(), *base_med, ratio));
                    }
                }
                None => lines.push(format!("  {:<12} (not in baseline; skipped)", r.name)),
            }
            // The per-core-count curve gate (schema-1 baselines simply
            // have no curves, so this loop is empty against them).
            let base_curve = base_curves
                .iter()
                .find(|(n, _)| *n == r.name)
                .map(|(_, c)| c.as_slice())
                .unwrap_or(&[]);
            for pt in &r.core_curve {
                let Some((_, base_med)) = base_curve.iter().find(|(ht, _)| *ht == pt.host_threads)
                else {
                    continue;
                };
                let ratio = if *base_med > 0.0 {
                    pt.median_s / base_med
                } else {
                    1.0
                };
                lines.push(format!(
                    "  {:<12} @{}t {:.2} ms vs baseline {:.2} ms ({:+.1} %)",
                    r.name,
                    pt.host_threads,
                    pt.median_s * 1e3,
                    base_med * 1e3,
                    (ratio - 1.0) * 100.0
                ));
                if ratio > 1.0 + tolerance && worst.as_ref().is_none_or(|(_, _, w)| ratio > *w) {
                    worst = Some((
                        format!("{} @{} host threads", r.name, pt.host_threads),
                        *base_med,
                        ratio,
                    ));
                }
            }
        }
        if let Some((name, base_med, ratio)) = worst {
            return Err(format!(
                "{name}: median is {:.0} % over baseline {:.2} ms (tolerance {:.0} %)",
                (ratio - 1.0) * 100.0,
                base_med * 1e3,
                tolerance * 100.0
            ));
        }
        Ok(lines)
    }
}

/// Extract `(name, median_s)` pairs from a `BENCH_native.json` emitted
/// by [`NativeReport::to_json`] — a targeted scan of our own one-object-
/// per-line format, not a general JSON parser (hermetic policy: no serde).
pub fn parse_native_medians(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(npos) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[npos + 9..];
        let Some(nend) = rest.find('"') else { continue };
        let name = rest[..nend].to_string();
        let Some(mpos) = line.find("\"median_s\": ") else {
            continue;
        };
        let mrest = &line[mpos + 12..];
        let mend = mrest
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(mrest.len());
        if let Ok(v) = mrest[..mend].parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

/// Extract per-workload scaling curves `(name, [(host_threads,
/// median_s)])` from a schema-2 `BENCH_native.json`. Same targeted line
/// scan as [`parse_native_medians`]: a line carrying `"name"` opens a
/// workload record; subsequent `"host_threads"` lines (which carry no
/// name) are that workload's curve points. Schema-1 files simply yield
/// workloads with empty curves.
pub fn parse_native_curves(json: &str) -> Vec<(String, Vec<(usize, f64)>)> {
    fn num_after(line: &str, key: &str) -> Option<f64> {
        let pos = line.find(key)?;
        let rest = &line[pos + key.len()..];
        let end = rest
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse::<f64>().ok()
    }
    let mut out: Vec<(String, Vec<(usize, f64)>)> = Vec::new();
    for line in json.lines() {
        if let Some(npos) = line.find("\"name\": \"") {
            let rest = &line[npos + 9..];
            if let Some(nend) = rest.find('"') {
                out.push((rest[..nend].to_string(), Vec::new()));
            }
            continue;
        }
        let (Some(ht), Some(med)) = (
            num_after(line, "\"host_threads\": "),
            num_after(line, "\"median_s\": "),
        ) else {
            continue;
        };
        if let Some((_, curve)) = out.last_mut() {
            curve.push((ht as usize, med));
        }
    }
    out
}

/// The four strategies of §5.4.1, in the paper's order.
pub fn paper_strategies() -> Vec<(usize, Distribution, &'static str)> {
    vec![
        (1, Distribution::Cyclic, "1c"),
        (2, Distribution::Cyclic, "2c"),
        (4, Distribution::Cyclic, "4c"),
        (2, Distribution::Block, "2b"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_speedup_lookup() {
        let mut rep = Report::new("t");
        rep.push(Row {
            dataset: "d".into(),
            strategy: "2c".into(),
            procs: 2,
            seconds: 10.0,
            speedup: 1.2,
        });
        rep.push(Row {
            dataset: "d".into(),
            strategy: "2c".into(),
            procs: 32,
            seconds: 1.0,
            speedup: 12.0,
        });
        assert_eq!(rep.relative("d", "2c", 2, 32), Some(10.0));
        assert_eq!(rep.relative("d", "1c", 2, 32), None);
    }

    #[test]
    fn sweep_defaults() {
        // Without env overrides, paper defaults hold.
        if std::env::var("REPRO_SWEEPS").is_err() && !quick() {
            assert_eq!(lhs_sweeps(), 100);
            assert_eq!(mvm_sweeps(), 50);
        }
    }
}
