//! # repro-bench — the reproduction harness
//!
//! One binary per figure of the paper's evaluation section:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig4` | `mvm` on classes W and A (exec time & speedups, k ∈ {1,2,4}) |
//! | `fig5` | `mvm` on class B (relative speedups vs best 4-proc version) |
//! | `fig6` | `euler` on both meshes, strategies 1c/2c/4c/2b |
//! | `fig7` | `moldyn` on both datasets, strategies 1c/2c/4c/2b |
//! | `baseline_compare` | the §5.4.3 discussion: phased vs classic inspector/executor |
//! | `adaptive` | the paper's future work: incremental LightInspector under churn |
//! | `ablation` | k sweep, numbering-locality sensitivity, native backend |
//!
//! Every binary prints a table with the paper's corresponding numbers
//! alongside, and appends machine-readable CSV under `bench_results/`.
//!
//! Environment knobs: `REPRO_SWEEPS` overrides the sweep count
//! (default: 100 time steps for euler/moldyn, 50 products for mvm);
//! `REPRO_QUICK=1` shrinks everything for smoke-testing. Passing
//! `--trace` on any figure binary re-runs one representative
//! configuration with the ring sink on, prints the per-phase timeline
//! table, and writes a Chrome `trace_event` JSON under `bench_results/`.

use std::fmt::Write as _;
use std::io::Write as _;

pub use earth_model::sim::SimConfig;
pub use irred::{ExecutionConfig, RunOutcome, StrategyConfig};
pub use workloads::Distribution;

/// Sweep count for the LHS kernels (euler/moldyn), honoring the env knobs.
pub fn lhs_sweeps() -> usize {
    sweeps_or(100)
}

/// Sweep count for mvm.
pub fn mvm_sweeps() -> usize {
    sweeps_or(50)
}

fn sweeps_or(default: usize) -> usize {
    if let Ok(s) = std::env::var("REPRO_SWEEPS") {
        if let Ok(v) = s.parse() {
            return v;
        }
    }
    if quick() {
        default / 10
    } else {
        default
    }
}

/// Whether `REPRO_QUICK` smoke mode is on.
pub fn quick() -> bool {
    std::env::var("REPRO_QUICK").is_ok_and(|v| v == "1")
}

/// Whether `--trace` was passed on the command line.
pub fn trace_requested() -> bool {
    std::env::args().any(|a| a == "--trace")
}

/// Dump a traced run: print the per-phase timeline table and the metrics
/// registry, and write `bench_results/<slug>_trace.json` as Chrome
/// `trace_event` JSON (open in `chrome://tracing` or Perfetto). The JSON
/// is re-validated through the hand validator before it is written —
/// a malformed export fails the run rather than producing a file
/// Perfetto rejects.
pub fn dump_trace(slug: &str, out: &RunOutcome) -> std::io::Result<()> {
    dump_trace_events(slug, &out.trace)?;
    print!("{}", out.metrics().render());
    Ok(())
}

/// The event-stream half of [`dump_trace`], for call sites that have a
/// raw event list rather than a full [`RunOutcome`].
pub fn dump_trace_events(slug: &str, events: &[trace::TraceEvent]) -> std::io::Result<()> {
    let json = trace::chrome_trace_json(events);
    let n = trace::validate_chrome_trace(&json)
        .unwrap_or_else(|e| panic!("generated Chrome trace is invalid: {e}"));
    std::fs::create_dir_all("bench_results")?;
    let path = format!("bench_results/{slug}_trace.json");
    std::fs::write(&path, &json)?;
    println!("--- phase timeline ({slug}) ---");
    print!("{}", trace::Timeline::from_events(events).table());
    println!("chrome trace: {path} ({n} events)");
    Ok(())
}

/// Processor counts used by the paper for the LHS kernels.
pub fn lhs_procs() -> Vec<usize> {
    if quick() {
        vec![2, 8, 32]
    } else {
        vec![2, 4, 8, 16, 32]
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Row {
    pub dataset: String,
    pub strategy: String,
    pub procs: usize,
    pub seconds: f64,
    /// Absolute speedup vs the metered sequential run.
    pub speedup: f64,
}

/// Collects rows, prints the table, and writes the CSV.
pub struct Report {
    title: String,
    rows: Vec<Row>,
    notes: Vec<String>,
}

impl Report {
    pub fn new(title: &str) -> Self {
        println!("=== {title} ===");
        Report {
            title: title.to_string(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn push(&mut self, row: Row) {
        println!(
            "  {:<22} {:<4} P={:<3} {:>9.3}s  speedup {:>6.2}",
            row.dataset, row.strategy, row.procs, row.seconds, row.speedup
        );
        self.rows.push(row);
    }

    pub fn seq(&mut self, dataset: &str, seconds: f64, paper_seconds: f64) {
        println!("  {dataset:<22} sequential {seconds:>9.3}s   (paper: {paper_seconds}s)");
        self.rows.push(Row {
            dataset: dataset.to_string(),
            strategy: "seq".to_string(),
            procs: 1,
            seconds,
            speedup: 1.0,
        });
    }

    /// A free-form comparison line, echoed and kept in the CSV as a comment.
    pub fn note(&mut self, text: String) {
        println!("  {text}");
        self.notes.push(text);
    }

    /// Seconds of one recorded configuration.
    pub fn seconds_of(&self, dataset: &str, strategy: &str, procs: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.dataset == dataset && r.strategy == strategy && r.procs == procs)
            .map(|r| r.seconds)
    }

    /// Relative speedup between two of this report's configurations.
    pub fn relative(&self, dataset: &str, strategy: &str, from: usize, to: usize) -> Option<f64> {
        let find = |p: usize| {
            self.rows
                .iter()
                .find(|r| r.dataset == dataset && r.strategy == strategy && r.procs == p)
                .map(|r| r.seconds)
        };
        Some(find(from)? / find(to)?)
    }

    /// Write `bench_results/<slug>.csv`.
    pub fn save(&self) -> std::io::Result<()> {
        std::fs::create_dir_all("bench_results")?;
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let mut out = String::new();
        writeln!(out, "dataset,strategy,procs,seconds,speedup").unwrap();
        for r in &self.rows {
            writeln!(
                out,
                "{},{},{},{:.6},{:.4}",
                r.dataset, r.strategy, r.procs, r.seconds, r.speedup
            )
            .unwrap();
        }
        for n in &self.notes {
            writeln!(out, "# {n}").unwrap();
        }
        let mut f = std::fs::File::create(format!("bench_results/{slug}.csv"))?;
        f.write_all(out.as_bytes())
    }
}

/// The four strategies of §5.4.1, in the paper's order.
pub fn paper_strategies() -> Vec<(usize, Distribution, &'static str)> {
    vec![
        (1, Distribution::Cyclic, "1c"),
        (2, Distribution::Cyclic, "2c"),
        (4, Distribution::Cyclic, "4c"),
        (2, Distribution::Block, "2b"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_speedup_lookup() {
        let mut rep = Report::new("t");
        rep.push(Row {
            dataset: "d".into(),
            strategy: "2c".into(),
            procs: 2,
            seconds: 10.0,
            speedup: 1.2,
        });
        rep.push(Row {
            dataset: "d".into(),
            strategy: "2c".into(),
            procs: 32,
            seconds: 1.0,
            speedup: 12.0,
        });
        assert_eq!(rep.relative("d", "2c", 2, 32), Some(10.0));
        assert_eq!(rep.relative("d", "1c", 2, 32), None);
    }

    #[test]
    fn sweep_defaults() {
        // Without env overrides, paper defaults hold.
        if std::env::var("REPRO_SWEEPS").is_err() && !quick() {
            assert_eq!(lhs_sweeps(), 100);
            assert_eq!(mvm_sweeps(), 50);
        }
    }
}
