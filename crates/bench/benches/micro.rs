//! Host micro-benchmarks for the building blocks, on the in-tree
//! [`harness::bench`] harness.
//!
//! These measure *host* performance of the runtime pieces themselves —
//! the LightInspector's passes, incremental updates, the cache
//! simulator, ownership arithmetic, and the native EARTH backend's
//! messaging — complementing the figure binaries, which measure
//! *simulated* machine performance.
//!
//! Run with `cargo bench -p repro-bench`. `BENCH_ITERS` / `BENCH_WARMUP`
//! control the sample counts; set `BENCH_CSV=bench_results/micro.csv`
//! to append machine-readable results.

use harness::bench::Suite;
use harness::Rng64;

use earth_model::native::{run_native, NativeCtx};
use earth_model::{FiberCtx, FiberSpec, MachineProgram};
use lightinspector::{inspect, IncrementalInspector, InspectorInput, PhaseGeometry};
use memsim::{AccessKind, Cache, CacheConfig, MemConfig, MemModel};

fn random_mesh(e: usize, n: u32, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let mut rng = Rng64::seed_from_u64(seed);
    (
        (0..e).map(|_| rng.gen_range(0..n)).collect(),
        (0..e).map(|_| rng.gen_range(0..n)).collect(),
    )
}

fn bench_inspector() {
    let mut suite = Suite::new("lightinspector");
    for &e in &[10_000usize, 100_000] {
        let (a, b) = random_mesh(e, 10_000, 42);
        let geom = PhaseGeometry::new(16, 2, 10_000);
        suite.throughput(e as u64);
        suite.bench(&format!("inspect/{e}"), || {
            inspect(InspectorInput {
                geometry: geom,
                proc_id: 3,
                indirection: &[&a, &b],
            })
            .unwrap()
        });
    }
    suite.finish();
}

fn bench_incremental() {
    let (a, b) = random_mesh(50_000, 10_000, 7);
    let geom = PhaseGeometry::new(16, 2, 10_000);
    let mut rng = Rng64::seed_from_u64(9);
    let updates: Vec<(usize, Vec<u32>)> = (0..1_000)
        .map(|_| {
            (
                rng.gen_range(0..50_000usize),
                vec![rng.gen_range(0..10_000u32), rng.gen_range(0..10_000u32)],
            )
        })
        .collect();
    let mut suite = Suite::new("incremental");
    suite.throughput(updates.len() as u64);
    suite.bench_with_setup(
        "update_batch/1000",
        || IncrementalInspector::new(geom, 0, vec![a.clone(), b.clone()]),
        |mut inc| {
            inc.update_batch(&updates);
            inc
        },
    );
    suite.finish();
}

fn bench_cache() {
    let mut suite = Suite::new("memsim");
    suite.throughput(100_000);
    let mut cache = Cache::new(CacheConfig::i860xp());
    suite.bench("cache_stream/100k", || {
        let mut misses = 0u32;
        for i in 0..100_000u64 {
            if !cache.access(i * 8, AccessKind::Read).hit {
                misses += 1;
            }
        }
        misses
    });
    let mut m = MemModel::new(MemConfig::i860xp());
    suite.bench("memmodel_gather/100k", || {
        let mut x = 1u64;
        let mut cyc = 0u64;
        for _ in 0..100_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            cyc += m.read((x % 1_000_000) * 8);
        }
        cyc
    });
    suite.finish();
}

fn bench_geometry() {
    let geom = PhaseGeometry::new(32, 2, 1_000_000);
    let mut suite = Suite::new("geometry");
    suite.bench("phase_of_portion", || {
        let mut acc = 0usize;
        for e in (0..1_000_000usize).step_by(97) {
            acc += geom.phase_of_portion_on(7, geom.portion_of(e));
        }
        acc
    });
    suite.finish();
}

fn bench_native_pingpong() {
    let mut suite = Suite::new("native");
    suite.bench("pingpong_100", || {
        let mut prog: MachineProgram<u32, NativeCtx<u32>> = MachineProgram::new();
        prog.add_node(0);
        prog.add_node(0);
        prog.node_mut(0).add_fiber(FiberSpec::repeating(
            "ping",
            0,
            1,
            |s: &mut u32, cx: &mut NativeCtx<u32>| {
                *s += 1;
                if *s < 100 {
                    cx.sync(1, 0);
                }
            },
        ));
        prog.node_mut(1).add_fiber(FiberSpec::repeating(
            "pong",
            1,
            1,
            |s: &mut u32, cx: &mut NativeCtx<u32>| {
                *s += 1;
                cx.sync(0, 0);
            },
        ));
        run_native(prog).unwrap().stats.ops.fibers_fired
    });
    suite.finish();
}

/// The engine-layer payoff: prepare-once-execute-N vs N cold runs of the
/// same (spec, strategy). The prepared path reuses the inspector plans,
/// the remapped indirection, the EARTH program template, the pooled node
/// buffers, and — on the simulator — the measured steady-state phase
/// costs, so only the first execute pays for metering.
fn bench_prepare_reuse() {
    use earth_model::sim::SimConfig;
    use irred::{Distribution, PhasedEngine, ReductionEngine, StrategyConfig, Workspace};
    use kernels::MolDynProblem;
    use workloads::MolDyn;

    const RUNS: usize = 100;
    let problem = MolDynProblem::from_config(MolDyn::fcc(4, 0.75));
    let strat = StrategyConfig::new(8, 2, Distribution::Cyclic, 1);
    let engine = PhasedEngine::sim(SimConfig::default());

    let mut suite = Suite::new("prepare_reuse");
    suite.throughput(RUNS as u64);
    suite.bench(&format!("cold_run_{RUNS}"), || {
        let mut acc = 0u64;
        for _ in 0..RUNS {
            acc += engine.run(&problem.spec, &strat).unwrap().time_cycles;
        }
        acc
    });
    suite.bench_with_setup(
        &format!("prepared_run_{RUNS}"),
        || {
            (
                engine.prepare(&problem.spec, &strat).unwrap(),
                Workspace::new(),
            )
        },
        |(mut prepared, mut ws)| {
            let mut acc = 0u64;
            for _ in 0..RUNS {
                acc += engine.execute(&mut prepared, &mut ws).unwrap().time_cycles;
            }
            acc
        },
    );
    suite.finish();
}

fn main() {
    bench_inspector();
    bench_incremental();
    bench_cache();
    bench_geometry();
    bench_native_pingpong();
    bench_prepare_reuse();
}
