//! Reference-stream statistics over the portion space — the signal the
//! strategy auto-selector reads.
//!
//! The rotating-portions strategy's communication volume is independent
//! of the indirection contents, but its *load balance* and the
//! competing inspector/executor baseline's ghost traffic are not: both
//! are governed by how references spread over the `k·P` portions and by
//! how many distinct elements they touch. [`portion_stats`] folds a set
//! of indirection arrays into that signature once, at inspection
//! granularity, without building a plan.

use crate::geometry::PhaseGeometry;

/// Portion-space signature of one reference stream.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStats {
    /// References landing in each of the `k·P` portions (the portion
    /// histogram).
    pub portion_refs: Vec<u64>,
    /// Total references (= iterations × refs-per-iteration).
    pub total_refs: u64,
    /// Distinct elements referenced at least once.
    pub distinct_elements: usize,
    /// Largest portion count.
    pub max_portion_refs: u64,
    /// Mean over all `k·P` portions (including empty ones).
    pub mean_portion_refs: f64,
    /// Skew coefficient: `max / mean` over the portion histogram.
    /// `1.0` is perfectly balanced; an all-in-one-portion stream on
    /// `k·P` portions reaches `k·P`.
    pub skew: f64,
}

impl PlanStats {
    /// Portions receiving no references at all.
    pub fn empty_portions(&self) -> usize {
        self.portion_refs.iter().filter(|&&c| c == 0).count()
    }
}

/// Compute the portion histogram, distinct-element count, and skew
/// coefficient of `indirection` under `geometry`.
pub fn portion_stats(geometry: &PhaseGeometry, indirection: &[&[u32]]) -> PlanStats {
    let kp = geometry.num_phases();
    let mut portion_refs = vec![0u64; kp];
    let mut seen = vec![false; geometry.num_elements()];
    let mut distinct = 0usize;
    let mut total = 0u64;
    for arr in indirection {
        for &e in *arr {
            portion_refs[geometry.portion_of(e as usize)] += 1;
            total += 1;
            if !seen[e as usize] {
                seen[e as usize] = true;
                distinct += 1;
            }
        }
    }
    let max = portion_refs.iter().copied().max().unwrap_or(0);
    let mean = total as f64 / kp.max(1) as f64;
    PlanStats {
        portion_refs,
        total_refs: total,
        distinct_elements: distinct,
        max_portion_refs: max,
        mean_portion_refs: mean,
        skew: if mean > 0.0 { max as f64 / mean } else { 1.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_stream_has_unit_skew() {
        // 8 elements, 2 procs, k=2 → 4 portions of 2; one ref per element.
        let g = PhaseGeometry::try_new(2, 2, 8).unwrap();
        let ind: Vec<u32> = (0..8).collect();
        let s = portion_stats(&g, &[&ind]);
        assert_eq!(s.portion_refs, vec![2, 2, 2, 2]);
        assert_eq!(s.total_refs, 8);
        assert_eq!(s.distinct_elements, 8);
        assert_eq!(s.skew, 1.0);
        assert_eq!(s.empty_portions(), 0);
    }

    #[test]
    fn hot_portion_maximizes_skew() {
        let g = PhaseGeometry::try_new(2, 2, 8).unwrap();
        // Every reference lands on element 0 → portion 0.
        let ind = vec![0u32; 12];
        let s = portion_stats(&g, &[&ind]);
        assert_eq!(s.portion_refs, vec![12, 0, 0, 0]);
        assert_eq!(s.distinct_elements, 1);
        assert_eq!(s.skew, 4.0); // max 12 / mean 3 — the k·P ceiling
        assert_eq!(s.empty_portions(), 3);
    }

    #[test]
    fn multiple_ref_arrays_accumulate() {
        let g = PhaseGeometry::try_new(1, 2, 4).unwrap();
        let a = vec![0u32, 1];
        let b = vec![2u32, 3];
        let s = portion_stats(&g, &[&a, &b]);
        assert_eq!(s.total_refs, 4);
        assert_eq!(s.portion_refs, vec![2, 2]);
        assert_eq!(s.distinct_elements, 4);
    }

    #[test]
    fn empty_stream_is_neutral() {
        let g = PhaseGeometry::try_new(2, 1, 4).unwrap();
        let empty: Vec<u32> = vec![];
        let s = portion_stats(&g, &[&empty]);
        assert_eq!(s.total_refs, 0);
        assert_eq!(s.skew, 1.0);
    }
}
