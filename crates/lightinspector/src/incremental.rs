//! Incremental LightInspector for adaptive irregular reductions.
//!
//! The paper's motivation for avoiding partitioning is *adaptive*
//! problems, where indirection arrays change every few time steps and
//! re-running heavyweight preprocessing is prohibitive; its stated future
//! work is "an incremental version of the LIGHTINSPECTOR". This module
//! implements it: after a full [`inspect`](crate::inspect) once, each
//! changed iteration is re-planned in `O(m)` amortized time — removed
//! from its old phase, its buffer slots recycled through a free list, and
//! re-inserted per the standard assignment rule.
//!
//! The resulting plan is structurally valid at every point (checkable
//! with [`verify_plan`](crate::verify_plan)) and covers exactly the same
//! iterations as a from-scratch inspection of the updated indirection
//! arrays; only the order of iterations within phases may differ, which
//! is irrelevant to a reduction.

use std::collections::HashMap;

use crate::geometry::PhaseGeometry;
use crate::inspector::{inspect_observed, InspectorInput};
use crate::plan::{CopyOp, InspectorPlan};

/// A LightInspector plan that can be updated in place as the application
/// rewrites indirection entries.
#[derive(Debug, Clone)]
pub struct IncrementalInspector {
    plan: InspectorPlan,
    /// Current indirection arrays, `m × num_iters`.
    indirection: Vec<Vec<u32>>,
    /// Position of each iteration inside its phase's `iters` list.
    iter_pos: Vec<u32>,
    /// For each buffer slot (indexed by `slot - num_elements`): the
    /// (phase, index) of its copy op, `None` when the slot is free.
    copy_pos: Vec<Option<(u32, u32)>>,
    /// Recycled buffer slots.
    free_slots: Vec<u32>,
    /// Number of single-iteration updates applied since construction.
    updates_applied: u64,
}

impl IncrementalInspector {
    /// Run a full inspection and index it for incremental updates,
    /// propagating inspection errors (out-of-range elements, degenerate
    /// geometry) instead of panicking.
    pub fn try_new(
        geometry: PhaseGeometry,
        proc_id: usize,
        indirection: Vec<Vec<u32>>,
    ) -> Result<Self, crate::InspectError> {
        Self::try_new_observed(geometry, proc_id, indirection, &mut |_| {})
    }

    /// [`Self::try_new`] with the full inspection's stage-completion
    /// callback (see [`inspect_observed`](crate::inspect_observed)).
    pub fn try_new_observed(
        geometry: PhaseGeometry,
        proc_id: usize,
        indirection: Vec<Vec<u32>>,
        observe: &mut dyn FnMut(u32),
    ) -> Result<Self, crate::InspectError> {
        let refs: Vec<&[u32]> = indirection.iter().map(|v| v.as_slice()).collect();
        let plan = inspect_observed(
            InspectorInput {
                geometry,
                proc_id,
                indirection: &refs,
            },
            observe,
        )?;
        Ok(Self::index(plan, indirection))
    }

    /// Run a full inspection and index it for incremental updates.
    /// Panics on invalid input; see [`Self::try_new`] for the fallible
    /// form.
    pub fn new(geometry: PhaseGeometry, proc_id: usize, indirection: Vec<Vec<u32>>) -> Self {
        Self::try_new(geometry, proc_id, indirection)
            .expect("IncrementalInspector::new: invalid inspector input")
    }

    /// Adopt an externally produced plan (e.g. the compiler's direct
    /// flat emission, unflattened) instead of re-running inspection.
    /// The plan is [`verify_plan`](crate::verify_plan)-checked against
    /// `indirection` first, so a malformed plan is a typed error here
    /// rather than corruption later.
    pub fn from_plan(
        plan: InspectorPlan,
        indirection: Vec<Vec<u32>>,
    ) -> Result<Self, crate::PlanError> {
        let m = plan.phases.first().map_or(0, |p| p.refs.len());
        if indirection.len() != m {
            return Err(crate::PlanError::FlatShape {
                what: "indirection arity must match the plan's reference count",
            });
        }
        let num_iters = indirection.first().map_or(0, |a| a.len());
        if plan.iter_phase.len() != num_iters {
            return Err(crate::PlanError::FlatShape {
                what: "iter_phase length must match the local iteration count",
            });
        }
        let refs: Vec<&[u32]> = indirection.iter().map(|v| v.as_slice()).collect();
        crate::verify_plan(&plan, &refs)?;
        Ok(Self::index(plan, indirection))
    }

    /// Index a freshly inspected plan for O(m) incremental updates.
    fn index(plan: InspectorPlan, indirection: Vec<Vec<u32>>) -> Self {
        let geometry = plan.geometry;
        let mut iter_pos = vec![0u32; plan.iter_phase.len()];
        for ph in &plan.phases {
            for (pos, &it) in ph.iters.iter().enumerate() {
                iter_pos[it as usize] = pos as u32;
            }
        }
        let n = geometry.num_elements() as u32;
        let mut copy_pos = vec![None; plan.buffer_len];
        for (p, ph) in plan.phases.iter().enumerate() {
            for (ci, c) in ph.copies.iter().enumerate() {
                copy_pos[(c.src - n) as usize] = Some((p as u32, ci as u32));
            }
        }
        IncrementalInspector {
            plan,
            indirection,
            iter_pos,
            copy_pos,
            free_slots: Vec::new(),
            updates_applied: 0,
        }
    }

    /// The current (always valid) plan.
    pub fn plan(&self) -> &InspectorPlan {
        &self.plan
    }

    /// The current indirection arrays the plan reflects.
    pub fn indirection(&self) -> &[Vec<u32>] {
        &self.indirection
    }

    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Re-route local iteration `iter` to new reduction targets
    /// (`new_refs.len()` must equal the number of references `m`).
    pub fn update(&mut self, iter: usize, new_refs: &[u32]) {
        let m = self.indirection.len();
        assert_eq!(new_refs.len(), m, "wrong arity");
        self.remove(iter);
        for (r, &e) in new_refs.iter().enumerate() {
            self.indirection[r][iter] = e;
        }
        self.insert(iter);
        self.updates_applied += 1;
    }

    /// Apply a batch of updates `(iter, new_refs)`.
    pub fn update_batch(&mut self, updates: &[(usize, Vec<u32>)]) {
        for (iter, refs) in updates {
            self.update(*iter, refs);
        }
    }

    fn remove(&mut self, iter: usize) {
        let p = self.plan.iter_phase[iter] as usize;
        let pos = self.iter_pos[iter] as usize;
        let n = self.plan.geometry.num_elements() as u32;
        // Free buffer slots and their copy ops.
        for r in 0..self.indirection.len() {
            let target = self.plan.phases[p].refs[r][pos];
            if target >= n {
                self.free_slots.push(target);
                let (cp, ci) = self.copy_pos[(target - n) as usize]
                    .take()
                    .expect("slot has a copy");
                let copies = &mut self.plan.phases[cp as usize].copies;
                copies.swap_remove(ci as usize);
                if (ci as usize) < copies.len() {
                    // Re-index the copy op that moved into the hole.
                    let moved = copies[ci as usize];
                    self.copy_pos[(moved.src - n) as usize] = Some((cp, ci));
                }
            }
        }
        // Remove the iteration (swap-remove keeps phases compact).
        let ph = &mut self.plan.phases[p];
        ph.iters.swap_remove(pos);
        for refs_r in ph.refs.iter_mut() {
            refs_r.swap_remove(pos);
        }
        if pos < ph.iters.len() {
            self.iter_pos[ph.iters[pos] as usize] = pos as u32;
        }
    }

    fn insert(&mut self, iter: usize) {
        let g = self.plan.geometry;
        let m = self.indirection.len();
        let mut min_phase = usize::MAX;
        let mut phases_r = [0usize; 8];
        assert!(m <= 8, "more than 8 references not supported incrementally");
        for (r, ph_slot) in phases_r.iter_mut().enumerate().take(m) {
            let e = self.indirection[r][iter] as usize;
            let ph = g.phase_of_portion_on(self.plan.proc_id, g.portion_of(e));
            *ph_slot = ph;
            min_phase = min_phase.min(ph);
        }
        let n = g.num_elements() as u32;
        let p = min_phase;
        self.plan.iter_phase[iter] = p as u32;
        self.iter_pos[iter] = self.plan.phases[p].iters.len() as u32;
        self.plan.phases[p].iters.push(iter as u32);
        for (r, &ph_r) in phases_r.iter().enumerate().take(m) {
            let e = self.indirection[r][iter];
            if ph_r == p {
                self.plan.phases[p].refs[r].push(e);
            } else {
                let slot = self.free_slots.pop().unwrap_or_else(|| {
                    let s = n + self.plan.buffer_len as u32;
                    self.plan.buffer_len += 1;
                    self.copy_pos.push(None);
                    s
                });
                self.plan.phases[p].refs[r].push(slot);
                let cp = phases_r[r];
                let ci = self.plan.phases[cp].copies.len() as u32;
                self.plan.phases[cp]
                    .copies
                    .push(CopyOp { dest: e, src: slot });
                self.copy_pos[(slot - n) as usize] = Some((cp as u32, ci));
            }
        }
    }
}

/// Compute the minimal slot-update set that turns an old local pair list
/// into a new one, treating the lists as multisets: pairs present in
/// both keep their slots, freed slots are refilled with the new pairs.
///
/// This is the neighbour-list discipline adaptive codes use with a
/// fixed-capacity interaction list: after a rebuild the *positions* of
/// surviving pairs are irrelevant — only genuinely added/removed pairs
/// should reach [`IncrementalInspector::update`]. Lists must have equal
/// length (pad with an inactive sentinel pair, e.g. `(0, 0)`, to keep a
/// fixed capacity).
pub fn diff_pairs(old1: &[u32], old2: &[u32], new_pairs: &[(u32, u32)]) -> Vec<(usize, u32, u32)> {
    assert_eq!(old1.len(), old2.len());
    assert_eq!(old1.len(), new_pairs.len(), "fixed-capacity lists required");
    let mut want: HashMap<(u32, u32), i32> = HashMap::with_capacity(new_pairs.len());
    for &p in new_pairs {
        *want.entry(p).or_insert(0) += 1;
    }
    // Keep slots whose pair is still wanted.
    let mut free_slots: Vec<usize> = Vec::new();
    for (slot, (&a, &b)) in old1.iter().zip(old2).enumerate() {
        match want.get_mut(&(a, b)) {
            Some(c) if *c > 0 => *c -= 1,
            _ => free_slots.push(slot),
        }
    }
    // Fill freed slots with the leftover new pairs.
    let mut out = Vec::with_capacity(free_slots.len());
    let mut free = free_slots.into_iter();
    for (&p, &c) in want.iter() {
        for _ in 0..c {
            let slot = free.next().expect("equal multiset sizes");
            out.push((slot, p.0, p.1));
        }
    }
    debug_assert!(free.next().is_none());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::verify_plan;

    fn mesh(num_iters: usize, n: u32, seed: u64) -> (Vec<u32>, Vec<u32>) {
        // Simple deterministic pseudo-random mesh.
        let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let a: Vec<u32> = (0..num_iters).map(|_| (next() % n as u64) as u32).collect();
        let b: Vec<u32> = (0..num_iters).map(|_| (next() % n as u64) as u32).collect();
        (a, b)
    }

    fn refs_of(inc: &IncrementalInspector) -> Vec<&[u32]> {
        inc.indirection().iter().map(|v| v.as_slice()).collect()
    }

    #[test]
    fn fresh_inspector_is_valid() {
        let g = PhaseGeometry::new(4, 2, 64);
        let (a, b) = mesh(300, 64, 1);
        let inc = IncrementalInspector::new(g, 1, vec![a.clone(), b.clone()]);
        verify_plan(inc.plan(), &[&a, &b]).unwrap();
    }

    #[test]
    fn single_update_stays_valid() {
        let g = PhaseGeometry::new(4, 2, 64);
        let (a, b) = mesh(300, 64, 2);
        let mut inc = IncrementalInspector::new(g, 0, vec![a, b]);
        inc.update(5, &[63, 0]);
        let refs = refs_of(&inc);
        verify_plan(inc.plan(), &refs).unwrap();
        assert_eq!(inc.indirection()[0][5], 63);
        assert_eq!(inc.indirection()[1][5], 0);
        assert_eq!(inc.updates_applied(), 1);
    }

    #[test]
    fn many_updates_match_full_reinspection_coverage() {
        let g = PhaseGeometry::new(4, 2, 64);
        let (a, b) = mesh(500, 64, 3);
        let mut inc = IncrementalInspector::new(g, 2, vec![a, b]);
        // Apply a wave of updates.
        let mut x = 42u64;
        for step in 0..200usize {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let iter = (x >> 32) as usize % 500;
            let e1 = (x % 64) as u32;
            let e2 = ((x >> 8) % 64) as u32;
            inc.update(iter, &[e1, e2]);
            if step % 50 == 0 {
                let refs = refs_of(&inc);
                verify_plan(inc.plan(), &refs).unwrap();
            }
        }
        let refs = refs_of(&inc);
        verify_plan(inc.plan(), &refs).unwrap();

        // Full re-inspection of the final arrays must agree on the phase
        // of every iteration and the per-phase iteration multiset.
        let full = crate::inspect(InspectorInput {
            geometry: g,
            proc_id: 2,
            indirection: &refs,
        })
        .unwrap();
        assert_eq!(full.iter_phase, inc.plan().iter_phase);
        for p in 0..g.num_phases() {
            let mut a: Vec<u32> = inc.plan().phases[p].iters.clone();
            let mut b: Vec<u32> = full.phases[p].iters.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "phase {p}");
        }
    }

    #[test]
    fn buffer_slots_are_recycled() {
        let g = PhaseGeometry::new(2, 2, 8);
        // Iteration 0 = (0, 7): needs a buffer (phases 0 and 3).
        let a = vec![0u32, 2];
        let b = vec![7u32, 3];
        let mut inc = IncrementalInspector::new(g, 0, vec![a, b]);
        let before = inc.plan().buffer_len;
        assert_eq!(before, 1);
        // Re-route it to (0,1): no buffer needed; then to (0,6): buffer again.
        inc.update(0, &[0, 1]);
        inc.update(0, &[0, 6]);
        // Slot was recycled, not grown.
        assert_eq!(inc.plan().buffer_len, 1);
        let refs = refs_of(&inc);
        verify_plan(inc.plan(), &refs).unwrap();
    }

    #[test]
    fn update_batch_applies_all() {
        let g = PhaseGeometry::new(2, 2, 16);
        let (a, b) = mesh(50, 16, 9);
        let mut inc = IncrementalInspector::new(g, 1, vec![a, b]);
        inc.update_batch(&[(0, vec![1, 2]), (1, vec![3, 4]), (2, vec![5, 6])]);
        assert_eq!(inc.updates_applied(), 3);
        assert_eq!(inc.indirection()[0][2], 5);
        let refs = refs_of(&inc);
        verify_plan(inc.plan(), &refs).unwrap();
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn arity_mismatch_panics() {
        let g = PhaseGeometry::new(2, 2, 8);
        let mut inc = IncrementalInspector::new(g, 0, vec![vec![0], vec![1]]);
        inc.update(0, &[1]);
    }

    #[test]
    fn diff_pairs_identical_lists_is_empty() {
        let a = vec![1u32, 2, 3];
        let b = vec![4u32, 5, 6];
        let new: Vec<(u32, u32)> = a.iter().zip(&b).map(|(&x, &y)| (x, y)).collect();
        assert!(diff_pairs(&a, &b, &new).is_empty());
    }

    #[test]
    fn diff_pairs_ignores_permutation() {
        let a = vec![1u32, 2, 3];
        let b = vec![4u32, 5, 6];
        // Same pairs, shuffled order.
        let new = vec![(3u32, 6u32), (1, 4), (2, 5)];
        assert!(diff_pairs(&a, &b, &new).is_empty());
    }

    #[test]
    fn diff_pairs_finds_real_changes() {
        let a = vec![1u32, 2, 3];
        let b = vec![4u32, 5, 6];
        let new = vec![(2u32, 5u32), (9, 9), (1, 4)]; // (3,6) replaced by (9,9)
        let d = diff_pairs(&a, &b, &new);
        assert_eq!(d, vec![(2, 9, 9)]);
    }

    #[test]
    fn diff_pairs_handles_duplicates_as_multiset() {
        let a = vec![1u32, 1, 1];
        let b = vec![2u32, 2, 2];
        let new = vec![(1u32, 2u32), (1, 2), (7, 8)];
        let d = diff_pairs(&a, &b, &new);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].1, d[0].2), (7, 8));
    }

    #[test]
    fn diff_then_update_reproduces_full_inspection() {
        let g = PhaseGeometry::new(4, 2, 64);
        let (a, b) = mesh(200, 64, 5);
        let mut inc = IncrementalInspector::new(g, 1, vec![a.clone(), b.clone()]);
        // New list: a permutation of the old with 10 replaced pairs.
        let mut new: Vec<(u32, u32)> = a.iter().zip(&b).map(|(&x, &y)| (x, y)).collect();
        new.rotate_left(37);
        for (i, p) in new.iter_mut().enumerate().take(10) {
            *p = ((i * 3) as u32 % 64, (i * 7 + 1) as u32 % 64);
        }
        let d = diff_pairs(
            inc.indirection()[0].as_slice(),
            inc.indirection()[1].as_slice(),
            &new,
        );
        assert!(d.len() <= 10 + 3, "diff too large: {}", d.len());
        for (slot, x, y) in d {
            inc.update(slot, &[x, y]);
        }
        let refs: Vec<&[u32]> = inc.indirection().iter().map(|v| v.as_slice()).collect();
        verify_plan(inc.plan(), &refs).unwrap();
        // The plan now covers exactly the new multiset of pairs.
        let mut have: Vec<(u32, u32)> =
            refs[0].iter().zip(refs[1]).map(|(&x, &y)| (x, y)).collect();
        let mut wanted = new.clone();
        have.sort_unstable();
        wanted.sort_unstable();
        assert_eq!(have, wanted);
    }
}
