//! # lightinspector — communication-free runtime preprocessing for irregular reductions
//!
//! This crate implements the **LightInspector** of the paper's §3: the
//! runtime routine that prepares an irregular reduction loop
//!
//! ```text
//! for i in 0..num_edges {
//!     X[IA[i][0]] += f(...);
//!     X[IA[i][1]] += g(...);
//! }
//! ```
//!
//! for phased execution on `P` processors with parameter `k`:
//!
//! 1. **Phase assignment** — each local iteration is assigned to the
//!    earliest phase in which one of the reduction elements it updates is
//!    owned by this processor ([`PhaseGeometry`] provides the ownership
//!    arithmetic: the reduction array is cut into `k·P` portions and
//!    processor `q` owns portion `(k·q + p) mod (k·P)` during phase `p`).
//! 2. **Buffer management** — references owned in a *later* phase are
//!    redirected into a buffer extension appended to the reduction array
//!    ("the length of the array X is extended to create a remote buffer
//!    location").
//! 3. **Second-loop construction** — for each phase, a list of
//!    `X[dest] += X[buffer]` copy operations that folds contributions
//!    buffered by earlier phases into the portion once it becomes
//!    resident.
//!
//! Unlike the classic inspector/executor inspector, the LightInspector
//! runs **independently on every processor with no communication** — its
//! cost is a few linear passes over the local indirection arrays.
//!
//! The [`incremental`] module implements the incremental variant the
//! paper names as future work: when an adaptive application rewrites a
//! few indirection entries, only the affected iterations are re-planned.

pub mod geometry;
pub mod incremental;
pub mod inspector;
pub mod plan;
pub mod stats;

pub use geometry::{PhaseGeometry, PortionId};
pub use incremental::{diff_pairs, IncrementalInspector};
pub use inspector::{
    inspect, inspect_flat, inspect_observed, inspect_single, FlatInspection, InspectError,
    InspectorInput, STAGE_CLASSIFY, STAGE_PLACE, STAGE_VALIDATE,
};
pub use plan::{verify_plan, CopyOp, FlatPlan, InspectorPlan, PhasePlan, PlanError, SingleRefPlan};
pub use stats::{portion_stats, PlanStats};
