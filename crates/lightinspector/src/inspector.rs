//! The LightInspector algorithm (§3 of the paper).
//!
//! Three passes, all linear in the number of local iterations, with no
//! inter-processor communication:
//!
//! 1. For every local iteration, find the phases at which each referenced
//!    reduction element is resident here; the minimum is the iteration's
//!    phase. Count iterations and future references per phase.
//! 2. Place iterations into per-phase lists; rewrite each reference
//!    either to its global index (resident during the iteration's phase)
//!    or to a freshly allocated buffer slot.
//! 3. Emit the second-loop copy list: a buffered contribution written for
//!    element `e` during phase `min` is folded into `e` during the phase
//!    at which `e`'s portion is resident (`max`), strictly later.
//!
//! The algorithm handles any number `m ≥ 1` of distinct indirection
//! references ("trivially extended", §3); the paper's examples use
//! `m = 2` (edges/interactions touching two nodes/molecules).

use crate::geometry::PhaseGeometry;
use crate::plan::{CopyOp, FlatPlan, InspectorPlan, PhasePlan, SingleRefPlan};

/// Why an inspector input was rejected. Every variant is a caller bug
/// that would previously panic (debug) or silently mis-bucket references
/// through wrapped portion arithmetic (release) — UB-adjacent for the
/// downstream executor, which indexes arrays by the resulting phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InspectError {
    /// Geometry with zero processors.
    NoProcessors,
    /// Geometry with `k = 0`.
    ZeroK,
    /// Geometry over an empty reduction array — every portion would be
    /// zero-length and `portion_of` would divide by zero.
    EmptyElements,
    /// `proc_id` is not a processor of the geometry; ownership arithmetic
    /// would alias another processor's schedule.
    ProcOutOfRange { proc_id: usize, num_procs: usize },
    /// No indirection references at all (`m = 0`).
    NoReferences,
    /// Indirection array `r` has a different length than array 0.
    Ragged {
        r: usize,
        len: usize,
        expected: usize,
    },
    /// `indirection[r][iter]` names an element outside the reduction
    /// array.
    OutOfRange {
        r: usize,
        iter: usize,
        elem: u32,
        num_elements: usize,
    },
}

impl std::fmt::Display for InspectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InspectError::NoProcessors => write!(f, "geometry needs at least one processor"),
            InspectError::ZeroK => write!(f, "overlap parameter k must be at least 1"),
            InspectError::EmptyElements => write!(f, "empty reduction array"),
            InspectError::ProcOutOfRange { proc_id, num_procs } => {
                write!(f, "proc_id {proc_id} out of range for {num_procs} processor(s)")
            }
            InspectError::NoReferences => write!(f, "need at least one indirection reference"),
            InspectError::Ragged { r, len, expected } => write!(
                f,
                "ragged indirection arrays: array {r} has {len} entries, expected {expected}"
            ),
            InspectError::OutOfRange {
                r,
                iter,
                elem,
                num_elements,
            } => write!(
                f,
                "indirection[{r}][{iter}] = {elem} is outside the reduction array (n = {num_elements})"
            ),
        }
    }
}

impl std::error::Error for InspectError {}

/// Input to [`inspect`]: the geometry, this processor's id, and its local
/// slice of the indirection arrays.
#[derive(Debug, Clone, Copy)]
pub struct InspectorInput<'a> {
    pub geometry: PhaseGeometry,
    pub proc_id: usize,
    /// `indirection[r][i]` = global reduction-array element updated by
    /// the `r`-th reference of local iteration `i`. All `m` slices must
    /// have equal length (the local iteration count).
    pub indirection: &'a [&'a [u32]],
}

/// Validate the shared preconditions of [`inspect`] / [`inspect_single`].
fn validate(g: &PhaseGeometry, proc_id: usize, indirection: &[&[u32]]) -> Result<(), InspectError> {
    if proc_id >= g.num_procs() {
        return Err(InspectError::ProcOutOfRange {
            proc_id,
            num_procs: g.num_procs(),
        });
    }
    if indirection.is_empty() {
        return Err(InspectError::NoReferences);
    }
    let num_iters = indirection[0].len();
    for (r, arr) in indirection.iter().enumerate() {
        if arr.len() != num_iters {
            return Err(InspectError::Ragged {
                r,
                len: arr.len(),
                expected: num_iters,
            });
        }
        let n = g.num_elements();
        for (i, &e) in arr.iter().enumerate() {
            if e as usize >= n {
                return Err(InspectError::OutOfRange {
                    r,
                    iter: i,
                    elem: e,
                    num_elements: n,
                });
            }
        }
    }
    Ok(())
}

/// Pipeline stage ids reported through [`inspect_observed`]'s callback,
/// in completion order. These feed the tracing layer's
/// `InspectorStage` events; the crate itself stays dependency-free.
pub const STAGE_VALIDATE: u32 = 0;
/// Pass 1 done: every iteration classified to its earliest phase.
pub const STAGE_CLASSIFY: u32 = 1;
/// Pass 2 done: iterations placed, references rewritten, buffers sized.
pub const STAGE_PLACE: u32 = 2;

/// Run the LightInspector. Pure function of its inputs; no communication.
///
/// Rejects malformed input (out-of-range indices, ragged arrays, a
/// foreign `proc_id`) with a typed [`InspectError`] instead of panicking
/// or silently mis-bucketing through wrapped modular arithmetic.
pub fn inspect(input: InspectorInput<'_>) -> Result<InspectorPlan, InspectError> {
    inspect_observed(input, &mut |_| {})
}

/// [`inspect`] with a stage-completion callback (`STAGE_VALIDATE`,
/// `STAGE_CLASSIFY`, `STAGE_PLACE`), invoked in that order exactly once
/// each on success. Callers turn these into trace events.
pub fn inspect_observed(
    input: InspectorInput<'_>,
    observe: &mut dyn FnMut(u32),
) -> Result<InspectorPlan, InspectError> {
    let g = input.geometry;
    validate(&g, input.proc_id, input.indirection)?;
    observe(STAGE_VALIDATE);
    let m = input.indirection.len();
    let num_iters = input.indirection[0].len();
    let kp = g.num_phases();

    // Pass 1: phase of each iteration + per-phase counts.
    let mut iter_phase = vec![0u32; num_iters];
    let mut phase_counts = vec![0usize; kp];
    let mut copy_counts = vec![0usize; kp];
    let mut scratch = vec![0usize; m];
    for i in 0..num_iters {
        let mut min_phase = usize::MAX;
        for (r, ind) in input.indirection.iter().enumerate() {
            let e = ind[i] as usize;
            let ph = g.phase_of_portion_on(input.proc_id, g.portion_of(e));
            scratch[r] = ph;
            min_phase = min_phase.min(ph);
        }
        iter_phase[i] = min_phase as u32;
        phase_counts[min_phase] += 1;
        for &ph in &scratch {
            if ph > min_phase {
                copy_counts[ph] += 1;
            }
        }
    }

    observe(STAGE_CLASSIFY);

    // Pass 2: place iterations, rewrite references, allocate buffers.
    let mut phases: Vec<PhasePlan> = (0..kp)
        .map(|p| PhasePlan {
            iters: Vec::with_capacity(phase_counts[p]),
            refs: (0..m)
                .map(|_| Vec::with_capacity(phase_counts[p]))
                .collect(),
            copies: Vec::with_capacity(copy_counts[p]),
        })
        .collect();
    let n = g.num_elements() as u32;
    let mut next_slot = n;
    for i in 0..num_iters {
        let p = iter_phase[i] as usize;
        phases[p].iters.push(i as u32);
        for (r, ind) in input.indirection.iter().enumerate() {
            let e = ind[i];
            let ph = g.phase_of_portion_on(input.proc_id, g.portion_of(e as usize));
            if ph == p {
                phases[p].refs[r].push(e);
            } else {
                // Owned in a future phase: extend X with a buffer slot and
                // schedule the second-loop fold for phase `ph`.
                let slot = next_slot;
                next_slot += 1;
                phases[p].refs[r].push(slot);
                phases[ph].copies.push(CopyOp { dest: e, src: slot });
            }
        }
    }

    observe(STAGE_PLACE);

    Ok(InspectorPlan {
        geometry: g,
        proc_id: input.proc_id,
        buffer_len: (next_slot - n) as usize,
        phases,
        iter_phase,
    })
}

/// A complete inspection emitted directly in flat (CSR) form: the
/// [`FlatPlan`] the executors' fast path streams, plus the sidecar
/// arrays (iteration order, phase assignment, buffer size) the nested
/// [`InspectorPlan`] would otherwise carry. Produced by
/// [`inspect_flat`] with **no nested intermediate** — the compiler's
/// direct lowering path hands these straight to the phased executor.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatInspection {
    pub geometry: PhaseGeometry,
    pub proc_id: usize,
    /// Buffer slots appended to the reduction array.
    pub buffer_len: usize,
    /// Local iteration ids in phase-concatenated order (phase `p`
    /// occupies `flat.iter_ptr[p]..flat.iter_ptr[p+1]`) — the executors'
    /// `giters` flattening.
    pub iters: Vec<u32>,
    /// Phase of each local iteration, indexed by local iteration id.
    pub iter_phase: Vec<u32>,
    pub flat: FlatPlan,
}

impl FlatInspection {
    /// Reconstruct the nested [`InspectorPlan`]. Exact: for any input,
    /// `inspect_flat(x)?.to_plan() == inspect(x)?` and conversely
    /// `to_plan().flatten() == flat`.
    pub fn to_plan(&self) -> InspectorPlan {
        InspectorPlan::from_flat(
            self.geometry,
            self.proc_id,
            self.buffer_len,
            &self.iters,
            self.iter_phase.clone(),
            &self.flat,
        )
    }
}

/// Run the LightInspector emitting the flat (CSR) schedule directly —
/// no nested per-phase structures are ever built. Produces bit-identical
/// output to `inspect(input)?.flatten()`: iterations within a phase
/// appear in ascending local order, buffer slots are numbered in the
/// same global `(iteration, reference)` scan order, and each phase's
/// copy list preserves that order.
pub fn inspect_flat(input: InspectorInput<'_>) -> Result<FlatInspection, InspectError> {
    let g = input.geometry;
    validate(&g, input.proc_id, input.indirection)?;
    let m = input.indirection.len();
    let num_iters = input.indirection[0].len();
    let kp = g.num_phases();

    // Pass 1: phase of each iteration + per-phase iteration/copy counts
    // (identical to `inspect`'s first pass).
    let mut iter_phase = vec![0u32; num_iters];
    let mut phase_counts = vec![0usize; kp];
    let mut copy_counts = vec![0usize; kp];
    let mut scratch = vec![0usize; m];
    for i in 0..num_iters {
        let mut min_phase = usize::MAX;
        for (r, ind) in input.indirection.iter().enumerate() {
            let e = ind[i] as usize;
            let ph = g.phase_of_portion_on(input.proc_id, g.portion_of(e));
            scratch[r] = ph;
            min_phase = min_phase.min(ph);
        }
        iter_phase[i] = min_phase as u32;
        phase_counts[min_phase] += 1;
        for &ph in &scratch {
            if ph > min_phase {
                copy_counts[ph] += 1;
            }
        }
    }

    // CSR pointers are exactly the prefix sums of the counts.
    let mut iter_ptr = Vec::with_capacity(kp + 1);
    let mut copy_ptr = Vec::with_capacity(kp + 1);
    iter_ptr.push(0u32);
    copy_ptr.push(0u32);
    for p in 0..kp {
        iter_ptr.push(iter_ptr[p] + phase_counts[p] as u32);
        copy_ptr.push(copy_ptr[p] + copy_counts[p] as u32);
    }

    // Pass 2: place every iteration straight into its phase's CSR range.
    // Scanning iterations in ascending order and bumping a per-phase
    // cursor reproduces the within-phase order `inspect`'s push-based
    // placement yields; the single `next_slot` counter reproduces its
    // buffer numbering.
    let total_iters: usize = *iter_ptr.last().unwrap() as usize;
    let total_copies: usize = *copy_ptr.last().unwrap() as usize;
    let mut iters = vec![0u32; total_iters];
    let mut refs = vec![0u32; total_iters * m];
    let mut copies = vec![CopyOp { dest: 0, src: 0 }; total_copies];
    let mut iter_cursor: Vec<u32> = iter_ptr[..kp].to_vec();
    let mut copy_cursor: Vec<u32> = copy_ptr[..kp].to_vec();
    let n = g.num_elements() as u32;
    let mut next_slot = n;
    for i in 0..num_iters {
        let p = iter_phase[i] as usize;
        let j = iter_cursor[p] as usize;
        iter_cursor[p] += 1;
        iters[j] = i as u32;
        for (r, ind) in input.indirection.iter().enumerate() {
            let e = ind[i];
            let ph = g.phase_of_portion_on(input.proc_id, g.portion_of(e as usize));
            refs[j * m + r] = if ph == p {
                e
            } else {
                let slot = next_slot;
                next_slot += 1;
                let ci = copy_cursor[ph] as usize;
                copy_cursor[ph] += 1;
                copies[ci] = CopyOp { dest: e, src: slot };
                slot
            };
        }
    }
    debug_assert_eq!(iter_cursor, iter_ptr[1..]);
    debug_assert_eq!(copy_cursor, copy_ptr[1..]);

    let flat = FlatPlan::new(m, iter_ptr, refs, copy_ptr, copies)
        .expect("prefix-sum construction satisfies the CSR invariants");
    Ok(FlatInspection {
        geometry: g,
        proc_id: input.proc_id,
        buffer_len: (next_slot - n) as usize,
        iters,
        iter_phase,
        flat,
    })
}

/// The single-reference fast path (§3): when the reduction array is
/// updated through one distinct indirection reference per iteration,
/// every update can be made while the element is resident — iterations
/// are merely bucketed by phase, with no buffers and no second loop.
///
/// `mvm` uses this shape (the gathered vector rotates; the reduction
/// array `y` is never indirectly accessed).
pub fn inspect_single(
    geometry: PhaseGeometry,
    proc_id: usize,
    indirection: &[u32],
) -> Result<SingleRefPlan, InspectError> {
    validate(&geometry, proc_id, &[indirection])?;
    let kp = geometry.num_phases();
    let mut counts = vec![0usize; kp];
    for &e in indirection {
        counts[geometry.phase_of_portion_on(proc_id, geometry.portion_of(e as usize))] += 1;
    }
    let mut phases: Vec<Vec<u32>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for (i, &e) in indirection.iter().enumerate() {
        let p = geometry.phase_of_portion_on(proc_id, geometry.portion_of(e as usize));
        phases[p].push(i as u32);
    }
    Ok(SingleRefPlan {
        geometry,
        proc_id,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::verify_plan;

    /// The worked example in the spirit of the paper's Figure 3:
    /// 2 processors, k = 2, a mesh of 8 nodes and 20 edges. Processor 0
    /// owns edges 0–9. Portions are 2 nodes each; P0 owns portion p at
    /// phase p.
    fn fig3_p0_input() -> (PhaseGeometry, Vec<u32>, Vec<u32>) {
        let g = PhaseGeometry::new(2, 2, 8);
        // (node1, node2) per local edge of P0.
        let ind1 = vec![0, 2, 4, 6, 1, 3, 5, 7, 0, 5];
        let ind2 = vec![1, 3, 5, 7, 2, 4, 6, 4, 7, 2];
        (g, ind1, ind2)
    }

    #[test]
    fn fig3_phase_assignment() {
        let (g, ind1, ind2) = fig3_p0_input();
        let plan = inspect(InspectorInput {
            geometry: g,
            proc_id: 0,
            indirection: &[&ind1, &ind2],
        })
        .unwrap();
        // Edge 0 (0,1): both in portion 0 → phase 0, both resident.
        assert_eq!(plan.iter_phase[0], 0);
        // Edge 4 (1,2): portions 0 and 1 → phase 0, node 2 buffered.
        assert_eq!(plan.iter_phase[4], 0);
        // Edge 7 (7,4): portions 3 and 2 → phase 2 (min), node 7 buffered.
        assert_eq!(plan.iter_phase[7], 2);
        // Edge 3 (6,7): portion 3 → phase 3.
        assert_eq!(plan.iter_phase[3], 3);
        verify_plan(&plan, &[&ind1, &ind2]).unwrap();
    }

    #[test]
    fn fig3_buffer_layout_starts_at_num_nodes() {
        let (g, ind1, ind2) = fig3_p0_input();
        let plan = inspect(InspectorInput {
            geometry: g,
            proc_id: 0,
            indirection: &[&ind1, &ind2],
        })
        .unwrap();
        // Buffer slots are allocated from 8 (= num_nodes) upward, exactly
        // as in the paper ("the remote buffer starts at location 8").
        let mut min_slot = u32::MAX;
        for ph in &plan.phases {
            for refs_r in &ph.refs {
                for &t in refs_r {
                    if t >= 8 {
                        min_slot = min_slot.min(t);
                    }
                }
            }
        }
        assert_eq!(min_slot, 8);
        assert!(plan.buffer_len > 0);
    }

    #[test]
    fn fig3_second_loop_folds_buffered_contribs() {
        let (g, ind1, ind2) = fig3_p0_input();
        let plan = inspect(InspectorInput {
            geometry: g,
            proc_id: 0,
            indirection: &[&ind1, &ind2],
        })
        .unwrap();
        // Edge 7 = (7,4): assigned phase 2 (node 4 resident), node 7
        // buffered, folded at phase 3 when portion 3 arrives.
        let copy = plan.phases[3]
            .copies
            .iter()
            .find(|c| c.dest == 7)
            .expect("phase 3 folds node 7");
        assert!(copy.src >= 8);
    }

    #[test]
    fn both_residents_update_in_place() {
        let (g, ind1, ind2) = fig3_p0_input();
        let plan = inspect(InspectorInput {
            geometry: g,
            proc_id: 0,
            indirection: &[&ind1, &ind2],
        })
        .unwrap();
        // Edge 0 (0,1): both resident at phase 0 → remapped to themselves.
        let j = plan.phases[0].iters.iter().position(|&i| i == 0).unwrap();
        assert_eq!(plan.phases[0].refs[0][j], 0);
        assert_eq!(plan.phases[0].refs[1][j], 1);
    }

    #[test]
    fn processor1_sees_shifted_ownership() {
        let (g, ind1, ind2) = fig3_p0_input();
        // Reuse the same edge list as if it were P1's local edges.
        let plan = inspect(InspectorInput {
            geometry: g,
            proc_id: 1,
            indirection: &[&ind1, &ind2],
        })
        .unwrap();
        verify_plan(&plan, &[&ind1, &ind2]).unwrap();
        // Edge 0 (0,1): portion 0 is owned by P1 at phase 2.
        assert_eq!(plan.iter_phase[0], 2);
    }

    #[test]
    fn three_references_supported() {
        // m = 3 (e.g. triangle meshes updating three vertices).
        let g = PhaseGeometry::new(2, 2, 12);
        let a = vec![0, 3, 6, 9, 1];
        let b = vec![3, 6, 9, 0, 4];
        let c = vec![6, 9, 0, 3, 7];
        let plan = inspect(InspectorInput {
            geometry: g,
            proc_id: 0,
            indirection: &[&a, &b, &c],
        })
        .unwrap();
        verify_plan(&plan, &[&a, &b, &c]).unwrap();
        assert_eq!(plan.total_iters(), 5);
        // Each iteration has exactly 3 -1 = 2 buffered refs at most; total
        // copies ≤ 2 per iteration.
        assert!(plan.total_copies() <= 10);
    }

    #[test]
    fn single_ref_plan_partitions_iterations() {
        let g = PhaseGeometry::new(4, 2, 64);
        let ind: Vec<u32> = (0..200).map(|i| (i * 7) as u32 % 64).collect();
        let plan = inspect_single(g, 2, &ind).unwrap();
        assert_eq!(plan.total_iters(), 200);
        // Every iteration's element must be resident in its phase.
        for (p, iters) in plan.phases.iter().enumerate() {
            let owned = g.portion_owned_by(2, p);
            let range = g.portion_range(owned);
            for &i in iters {
                assert!(range.contains(&(ind[i as usize] as usize)));
            }
        }
    }

    #[test]
    fn no_copies_when_all_refs_coincide() {
        // Both endpoints always in the same portion → no buffering at all.
        let g = PhaseGeometry::new(2, 2, 8);
        let a = vec![0, 2, 4, 6];
        let b = vec![1, 3, 5, 7];
        let plan = inspect(InspectorInput {
            geometry: g,
            proc_id: 0,
            indirection: &[&a, &b],
        })
        .unwrap();
        assert_eq!(plan.buffer_len, 0);
        assert_eq!(plan.total_copies(), 0);
        verify_plan(&plan, &[&a, &b]).unwrap();
    }

    #[test]
    fn k1_plan_is_valid() {
        let g = PhaseGeometry::new(4, 1, 32);
        let a: Vec<u32> = (0..100).map(|i| (i * 13) as u32 % 32).collect();
        let b: Vec<u32> = (0..100).map(|i| (i * 29 + 5) as u32 % 32).collect();
        let plan = inspect(InspectorInput {
            geometry: g,
            proc_id: 3,
            indirection: &[&a, &b],
        })
        .unwrap();
        verify_plan(&plan, &[&a, &b]).unwrap();
    }

    #[test]
    fn empty_iteration_set() {
        let g = PhaseGeometry::new(2, 2, 8);
        let a: Vec<u32> = vec![];
        let b: Vec<u32> = vec![];
        let plan = inspect(InspectorInput {
            geometry: g,
            proc_id: 0,
            indirection: &[&a, &b],
        })
        .unwrap();
        assert_eq!(plan.total_iters(), 0);
        assert_eq!(plan.buffer_len, 0);
        verify_plan(&plan, &[&a, &b]).unwrap();
    }

    #[test]
    fn flat_emission_equals_flattened_nested_plan() {
        // Bit-equality of the one-pass CSR emission against
        // inspect().flatten(), across geometries and skews.
        let mut s = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for &(procs, k, n, iters, m) in &[
            (2usize, 2usize, 8usize, 20usize, 2usize),
            (4, 1, 32, 100, 2),
            (4, 2, 64, 257, 3),
            (3, 3, 17, 55, 1),
            (2, 2, 8, 0, 2),
        ] {
            let g = PhaseGeometry::new(procs, k, n);
            let ind: Vec<Vec<u32>> = (0..m)
                .map(|_| (0..iters).map(|_| (next() % n as u64) as u32).collect())
                .collect();
            let refs: Vec<&[u32]> = ind.iter().map(|v| v.as_slice()).collect();
            for proc in 0..procs {
                let input = InspectorInput {
                    geometry: g,
                    proc_id: proc,
                    indirection: &refs,
                };
                let nested = inspect(input).unwrap();
                let fi = inspect_flat(input).unwrap();
                assert_eq!(fi.flat, nested.flatten(), "P{procs} k{k} n{n} proc{proc}");
                assert_eq!(fi.iter_phase, nested.iter_phase);
                assert_eq!(fi.buffer_len, nested.buffer_len);
                let concat: Vec<u32> = nested
                    .phases
                    .iter()
                    .flat_map(|p| p.iters.iter().copied())
                    .collect();
                assert_eq!(fi.iters, concat);
                // And the unflattened form is the nested plan, exactly.
                assert_eq!(fi.to_plan(), nested);
                verify_plan(&fi.to_plan(), &refs).unwrap();
            }
        }
    }

    #[test]
    fn flat_emission_rejects_what_inspect_rejects() {
        let g = PhaseGeometry::new(2, 2, 8);
        let a: Vec<u32> = vec![0, 8, 1];
        let b: Vec<u32> = vec![1, 2, 3];
        let err = inspect_flat(InspectorInput {
            geometry: g,
            proc_id: 0,
            indirection: &[&a, &b],
        })
        .unwrap_err();
        assert!(matches!(err, InspectError::OutOfRange { elem: 8, .. }));
    }

    #[test]
    fn rejects_out_of_range_element() {
        let g = PhaseGeometry::new(2, 2, 8);
        let a: Vec<u32> = vec![0, 8, 1];
        let b: Vec<u32> = vec![1, 2, 3];
        let err = inspect(InspectorInput {
            geometry: g,
            proc_id: 0,
            indirection: &[&a, &b],
        })
        .unwrap_err();
        assert_eq!(
            err,
            InspectError::OutOfRange {
                r: 0,
                iter: 1,
                elem: 8,
                num_elements: 8
            }
        );
    }

    #[test]
    fn rejects_ragged_indirection() {
        let g = PhaseGeometry::new(2, 2, 8);
        let a: Vec<u32> = vec![0, 1, 2];
        let b: Vec<u32> = vec![1, 2];
        let err = inspect(InspectorInput {
            geometry: g,
            proc_id: 0,
            indirection: &[&a, &b],
        })
        .unwrap_err();
        assert_eq!(
            err,
            InspectError::Ragged {
                r: 1,
                len: 2,
                expected: 3
            }
        );
    }

    #[test]
    fn rejects_foreign_proc_id() {
        let g = PhaseGeometry::new(2, 2, 8);
        let a: Vec<u32> = vec![0];
        let err = inspect_single(g, 2, &a).unwrap_err();
        assert_eq!(
            err,
            InspectError::ProcOutOfRange {
                proc_id: 2,
                num_procs: 2
            }
        );
    }

    #[test]
    fn rejects_no_references() {
        let g = PhaseGeometry::new(2, 2, 8);
        let err = inspect(InspectorInput {
            geometry: g,
            proc_id: 0,
            indirection: &[],
        })
        .unwrap_err();
        assert_eq!(err, InspectError::NoReferences);
    }

    #[test]
    fn rejects_degenerate_geometry() {
        assert_eq!(
            PhaseGeometry::try_new(0, 2, 8).unwrap_err(),
            InspectError::NoProcessors
        );
        assert_eq!(
            PhaseGeometry::try_new(2, 0, 8).unwrap_err(),
            InspectError::ZeroK
        );
        assert_eq!(
            PhaseGeometry::try_new(2, 2, 0).unwrap_err(),
            InspectError::EmptyElements
        );
        assert!(PhaseGeometry::try_new(2, 2, 8).is_ok());
    }
}
