//! Ownership arithmetic for the rotating-portion execution strategy.
//!
//! The reduction array (length `n`) is divided into `k·P` contiguous
//! portions. Execution proceeds in rounds of `k·P` phases. During phase
//! `p`, processor `q` owns portion `(k·q + p) mod (k·P)` — so at any
//! phase exactly `P` of the portions are resident somewhere, each portion
//! visits every processor exactly once per round, and a portion is active
//! only at phases `p ≡ portion (mod k)`. Between consecutive visits a
//! portion is **in flight for `k` phases** from processor `q` to
//! processor `q−1 (mod P)`; `k > 1` is what gives the architecture room
//! to overlap that transfer with computation (§2.2).

/// Index of a portion of the reduction array, in `0..k*P`.
pub type PortionId = usize;

/// The `(P, k, n)` geometry and all derived ownership queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseGeometry {
    num_procs: usize,
    k: usize,
    num_elements: usize,
    portion_size: usize,
}

impl PhaseGeometry {
    /// Create a geometry for `num_procs` processors, overlap parameter
    /// `k`, and a reduction array of `num_elements`.
    ///
    /// The paper presents the strategy assuming `k·P` divides the sizes;
    /// like its actual implementation, this one is general: the portion
    /// size is rounded up and the final portion may be short (or even
    /// empty when `n < k·P`).
    pub fn new(num_procs: usize, k: usize, num_elements: usize) -> Self {
        Self::try_new(num_procs, k, num_elements)
            .unwrap_or_else(|e| panic!("invalid PhaseGeometry: {e}"))
    }

    /// Fallible constructor: returns a typed [`InspectError`] instead of
    /// panicking on a degenerate `(P, k, n)` triple.
    pub fn try_new(
        num_procs: usize,
        k: usize,
        num_elements: usize,
    ) -> Result<Self, crate::inspector::InspectError> {
        use crate::inspector::InspectError;
        if num_procs < 1 {
            return Err(InspectError::NoProcessors);
        }
        if k < 1 {
            return Err(InspectError::ZeroK);
        }
        if num_elements < 1 {
            return Err(InspectError::EmptyElements);
        }
        let kp = num_procs * k;
        let portion_size = num_elements.div_ceil(kp);
        Ok(PhaseGeometry {
            num_procs,
            k,
            num_elements,
            portion_size,
        })
    }

    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Number of portions = number of phases per round = `k·P`.
    pub fn num_phases(&self) -> usize {
        self.k * self.num_procs
    }

    /// Elements per portion (last portion may be shorter).
    pub fn portion_size(&self) -> usize {
        self.portion_size
    }

    /// Portion containing element `e`.
    #[inline]
    pub fn portion_of(&self, e: usize) -> PortionId {
        debug_assert!(e < self.num_elements);
        e / self.portion_size
    }

    /// Element range `[start, end)` of portion `i` (may be empty for the
    /// trailing portions when `n < k·P·portion_size`).
    pub fn portion_range(&self, i: PortionId) -> std::ops::Range<usize> {
        let s = (i * self.portion_size).min(self.num_elements);
        let e = ((i + 1) * self.portion_size).min(self.num_elements);
        s..e
    }

    /// Portion owned by `proc` during `phase` (phases within one round,
    /// `0..k·P`).
    #[inline]
    pub fn portion_owned_by(&self, proc: usize, phase: usize) -> PortionId {
        (self.k * proc + phase) % self.num_phases()
    }

    /// The unique phase (within a round) at which `proc` owns `portion`.
    #[inline]
    pub fn phase_of_portion_on(&self, proc: usize, portion: PortionId) -> usize {
        let kp = self.num_phases();
        (portion + kp - (self.k * proc) % kp) % kp
    }

    /// The processor owning `portion` during `phase`, if any. A portion
    /// is resident only at phases `p ≡ portion (mod k)`; in between it is
    /// in flight.
    pub fn owner_at(&self, portion: PortionId, phase: usize) -> Option<usize> {
        let kp = self.num_phases();
        let diff = (portion + kp - phase % kp) % kp;
        if !diff.is_multiple_of(self.k) {
            return None;
        }
        Some((diff / self.k) % self.num_procs)
    }

    /// First phase of a round at which `portion` is resident anywhere.
    pub fn first_visit_phase(&self, portion: PortionId) -> usize {
        portion % self.k
    }

    /// Last phase of a round at which `portion` is resident anywhere —
    /// after this phase all `P` processors have contributed, so the
    /// reduction value is final and node-level post-processing can run.
    pub fn last_visit_phase(&self, portion: PortionId) -> usize {
        self.num_phases() - self.k + portion % self.k
    }

    /// The processor a portion moves to after being owned by `proc`:
    /// its next visit (k phases later) is on the ring predecessor.
    pub fn next_owner(&self, proc: usize) -> usize {
        (proc + self.num_procs - 1) % self.num_procs
    }

    /// The processor a portion arrives from.
    pub fn prev_owner(&self, proc: usize) -> usize {
        (proc + 1) % self.num_procs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_geometry() {
        // Figure 3: P=2, k=2, 8 nodes → 4 portions of 2.
        let g = PhaseGeometry::new(2, 2, 8);
        assert_eq!(g.num_phases(), 4);
        assert_eq!(g.portion_size(), 2);
        assert_eq!(g.portion_range(0), 0..2);
        assert_eq!(g.portion_range(3), 6..8);
        // P0 owns portions 0,1,2,3 at phases 0,1,2,3.
        for p in 0..4 {
            assert_eq!(g.portion_owned_by(0, p), p);
            assert_eq!(g.phase_of_portion_on(0, p), p);
        }
        // P1 owns portion (2+p) mod 4 at phase p.
        assert_eq!(g.portion_owned_by(1, 0), 2);
        assert_eq!(g.portion_owned_by(1, 1), 3);
        assert_eq!(g.portion_owned_by(1, 2), 0);
        assert_eq!(g.portion_owned_by(1, 3), 1);
    }

    #[test]
    fn ownership_is_consistent() {
        for &(procs, k, n) in &[(2, 2, 8), (4, 2, 64), (3, 4, 100), (8, 1, 50), (5, 3, 7)] {
            let g = PhaseGeometry::new(procs, k, n);
            for phase in 0..g.num_phases() {
                for proc in 0..procs {
                    let portion = g.portion_owned_by(proc, phase);
                    assert_eq!(g.phase_of_portion_on(proc, portion), phase);
                    assert_eq!(g.owner_at(portion, phase), Some(proc));
                }
            }
        }
    }

    #[test]
    fn each_portion_visits_every_proc_once_per_round() {
        let g = PhaseGeometry::new(4, 2, 64);
        for portion in 0..g.num_phases() {
            let mut owners = Vec::new();
            for phase in 0..g.num_phases() {
                if let Some(q) = g.owner_at(portion, phase) {
                    owners.push(q);
                }
            }
            owners.sort_unstable();
            assert_eq!(owners, vec![0, 1, 2, 3], "portion {portion}");
        }
    }

    #[test]
    fn portion_active_every_kth_phase_only() {
        let g = PhaseGeometry::new(4, 2, 64);
        for portion in 0..g.num_phases() {
            for phase in 0..g.num_phases() {
                let active = g.owner_at(portion, phase).is_some();
                assert_eq!(active, phase % 2 == portion % 2);
            }
        }
    }

    #[test]
    fn k1_has_no_in_flight_gap() {
        // With k=1 a portion is owned by someone at *every* phase — no
        // slack for communication overlap.
        let g = PhaseGeometry::new(4, 1, 16);
        for portion in 0..4 {
            for phase in 0..4 {
                assert!(g.owner_at(portion, phase).is_some());
            }
        }
    }

    #[test]
    fn visit_phase_bounds() {
        let g = PhaseGeometry::new(4, 2, 64);
        for portion in 0..g.num_phases() {
            let f = g.first_visit_phase(portion);
            let l = g.last_visit_phase(portion);
            assert!(f < g.num_phases());
            assert!(l < g.num_phases());
            assert!(l >= f);
            assert!(g.owner_at(portion, f).is_some());
            assert!(g.owner_at(portion, l).is_some());
            // No visit after the last.
            for p in l + 1..g.num_phases() {
                assert!(g.owner_at(portion, p).is_none());
            }
        }
    }

    #[test]
    fn portions_tile_the_array() {
        for &(procs, k, n) in &[(2, 2, 8), (3, 2, 17), (4, 4, 5), (2, 1, 9)] {
            let g = PhaseGeometry::new(procs, k, n);
            let mut covered = 0;
            for i in 0..g.num_phases() {
                let r = g.portion_range(i);
                assert_eq!(r.start, covered.min(n));
                covered = r.end;
                for e in r {
                    assert_eq!(g.portion_of(e), i);
                }
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn ring_rotation_neighbors() {
        let g = PhaseGeometry::new(4, 2, 64);
        assert_eq!(g.next_owner(0), 3);
        assert_eq!(g.next_owner(3), 2);
        assert_eq!(g.prev_owner(3), 0);
        // portion owned by q at phase p is owned by next_owner(q) at p+k.
        for proc in 0..4 {
            for phase in 0..g.num_phases() - g.k() {
                let portion = g.portion_owned_by(proc, phase);
                assert_eq!(g.owner_at(portion, phase + g.k()), Some(g.next_owner(proc)));
            }
        }
    }

    #[test]
    fn tiny_array_with_empty_portions() {
        // n < k*P: trailing portions are empty but arithmetic still holds.
        let g = PhaseGeometry::new(4, 2, 5);
        assert_eq!(g.portion_size(), 1);
        assert_eq!(g.portion_range(4), 4..5);
        assert_eq!(g.portion_range(7), 5..5);
        assert!(g.portion_range(7).is_empty());
    }
}
