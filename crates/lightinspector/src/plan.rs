//! Output of the LightInspector and its validity checker.

use crate::geometry::PhaseGeometry;

/// One `X[dest] += X[src]; X[src] = 0` operation of a phase's second
/// loop: fold a buffered contribution into the now-resident portion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyOp {
    /// Global element index, owned by this processor during the copy's
    /// phase.
    pub dest: u32,
    /// Buffer index: `>= num_elements`, into the buffer extension.
    pub src: u32,
}

/// Per-phase executor input produced by the inspector.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhasePlan {
    /// Local iteration indices executed in this phase (the first loop).
    pub iters: Vec<u32>,
    /// `refs[r][j]` is where the `r`-th reduction reference of iteration
    /// `iters[j]` goes: either a global element index (`< num_elements`,
    /// resident this phase) or a buffer index (`>= num_elements`).
    pub refs: Vec<Vec<u32>>,
    /// The second loop: contributions buffered by earlier phases for
    /// elements that become resident now.
    pub copies: Vec<CopyOp>,
}

/// Complete local plan for one processor.
#[derive(Debug, Clone, PartialEq)]
pub struct InspectorPlan {
    pub geometry: PhaseGeometry,
    pub proc_id: usize,
    /// Number of buffer slots appended to the reduction array; the
    /// executor allocates `num_elements + buffer_len` elements.
    pub buffer_len: usize,
    /// One plan per phase, `k·P` of them.
    pub phases: Vec<PhasePlan>,
    /// Phase each local iteration was assigned to (indexed by local
    /// iteration number) — consumed by the incremental inspector.
    pub iter_phase: Vec<u32>,
}

impl InspectorPlan {
    /// Total iterations across all phases.
    pub fn total_iters(&self) -> usize {
        self.phases.iter().map(|p| p.iters.len()).sum()
    }

    /// Total buffered contributions (= total copy operations).
    pub fn total_copies(&self) -> usize {
        self.phases.iter().map(|p| p.copies.len()).sum()
    }

    /// Per-phase iteration counts — the load-balance signature the paper
    /// analyzes when comparing block and cyclic distributions (§5.4.2).
    pub fn phase_iter_counts(&self) -> Vec<usize> {
        self.phases.iter().map(|p| p.iters.len()).collect()
    }

    /// Flatten the nested per-phase structures into the CSR-style
    /// schedule the executors' fast path streams (see [`FlatPlan`]).
    pub fn flatten(&self) -> FlatPlan {
        let m = self.phases.first().map_or(0, |p| p.refs.len());
        let total_iters = self.total_iters();
        let mut iter_ptr = Vec::with_capacity(self.phases.len() + 1);
        let mut copy_ptr = Vec::with_capacity(self.phases.len() + 1);
        let mut refs = Vec::with_capacity(total_iters * m);
        let mut copies = Vec::with_capacity(self.total_copies());
        iter_ptr.push(0);
        copy_ptr.push(0);
        for ph in &self.phases {
            for j in 0..ph.iters.len() {
                for refs_r in &ph.refs {
                    refs.push(refs_r[j]);
                }
            }
            copies.extend_from_slice(&ph.copies);
            iter_ptr.push(refs.len() as u32 / m.max(1) as u32);
            copy_ptr.push(copies.len() as u32);
        }
        FlatPlan {
            m,
            iter_ptr,
            refs,
            copy_ptr,
            copies,
        }
    }
}

impl InspectorPlan {
    /// Reconstruct the nested per-phase structure from a flat schedule —
    /// the exact inverse of [`InspectorPlan::flatten`]. `iters` is the
    /// phase-concatenated local iteration order (phase `p` occupies
    /// `iter_ptr[p]..iter_ptr[p+1]`), `iter_phase` the per-iteration
    /// phase assignment. Used to adopt compiler-emitted flat plans into
    /// machinery that walks the nested form (metering, incremental
    /// updates).
    pub fn from_flat(
        geometry: PhaseGeometry,
        proc_id: usize,
        buffer_len: usize,
        iters: &[u32],
        iter_phase: Vec<u32>,
        flat: &FlatPlan,
    ) -> InspectorPlan {
        let m = flat.m();
        let kp = flat.num_phases();
        let mut phases = Vec::with_capacity(kp);
        for p in 0..kp {
            let lo = flat.iter_ptr[p] as usize;
            let hi = flat.iter_ptr[p + 1] as usize;
            let prefs = flat.phase_refs(p);
            let mut refs: Vec<Vec<u32>> = (0..m).map(|_| Vec::with_capacity(hi - lo)).collect();
            for j in 0..(hi - lo) {
                for (r, col) in refs.iter_mut().enumerate() {
                    col.push(prefs[j * m + r]);
                }
            }
            phases.push(PhasePlan {
                iters: iters[lo..hi].to_vec(),
                refs,
                copies: flat.phase_copies(p).to_vec(),
            });
        }
        InspectorPlan {
            geometry,
            proc_id,
            buffer_len,
            phases,
            iter_phase,
        }
    }
}

/// The inspector plan flattened into a CSR-style schedule: one
/// contiguous reference array (iteration-major, `m`-interleaved — the
/// order the executor's scatter consumes them in) and one contiguous
/// copy-op array, each indexed per phase through a pointer array. The
/// executors' unmetered fast path streams these arrays front to back,
/// touching no nested structure and no per-reference columns.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatPlan {
    /// References per iteration (`num_refs`).
    m: usize,
    /// `iter_ptr[p]..iter_ptr[p+1]` are phase `p`'s iterations (indices
    /// into the phase-concatenated iteration order, matching the
    /// executors' `giters` / `elems` flattening).
    pub iter_ptr: Vec<u32>,
    /// `refs[j*m + r]` is where the `r`-th reference of concatenated
    /// iteration `j` goes (element or buffer-extension index).
    pub refs: Vec<u32>,
    /// `copy_ptr[p]..copy_ptr[p+1]` are phase `p`'s copy ops.
    pub copy_ptr: Vec<u32>,
    /// All copy operations, concatenated in phase order.
    pub copies: Vec<CopyOp>,
}

impl FlatPlan {
    /// Assemble a flat plan from externally produced CSR arrays — the
    /// constructor the compiler's direct lowering path uses (it never
    /// builds the nested [`InspectorPlan`]). Shape invariants are
    /// checked; *semantic* validity against an indirection array is the
    /// job of [`verify_plan`] on the unflattened form.
    pub fn new(
        m: usize,
        iter_ptr: Vec<u32>,
        refs: Vec<u32>,
        copy_ptr: Vec<u32>,
        copies: Vec<CopyOp>,
    ) -> Result<FlatPlan, PlanError> {
        let shape = |what| Err(PlanError::FlatShape { what });
        if iter_ptr.len() < 2 || copy_ptr.len() != iter_ptr.len() {
            return shape("pointer arrays need one entry per phase plus one");
        }
        if iter_ptr[0] != 0 || copy_ptr[0] != 0 {
            return shape("pointer arrays must start at 0");
        }
        if iter_ptr.windows(2).any(|w| w[0] > w[1]) || copy_ptr.windows(2).any(|w| w[0] > w[1]) {
            return shape("pointer arrays must be monotone");
        }
        if refs.len() != *iter_ptr.last().unwrap() as usize * m {
            return shape("refs length must be total iterations times m");
        }
        if copies.len() != *copy_ptr.last().unwrap() as usize {
            return shape("copies length must match the last copy pointer");
        }
        Ok(FlatPlan {
            m,
            iter_ptr,
            refs,
            copy_ptr,
            copies,
        })
    }

    /// References per iteration (`num_refs`).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of phases the schedule covers.
    pub fn num_phases(&self) -> usize {
        self.iter_ptr.len() - 1
    }

    /// Phase `p`'s scatter targets, iteration-major `m`-interleaved.
    pub fn phase_refs(&self, p: usize) -> &[u32] {
        let lo = self.iter_ptr[p] as usize * self.m;
        let hi = self.iter_ptr[p + 1] as usize * self.m;
        &self.refs[lo..hi]
    }

    /// Phase `p`'s copy operations.
    pub fn phase_copies(&self, p: usize) -> &[CopyOp] {
        &self.copies[self.copy_ptr[p] as usize..self.copy_ptr[p + 1] as usize]
    }
}

/// Plan for the single-indirection-reference case (`mvm`): iterations are
/// only grouped by phase; no buffers and no second loop are needed
/// because every update is made while its element is resident (§3).
#[derive(Debug, Clone, PartialEq)]
pub struct SingleRefPlan {
    pub geometry: PhaseGeometry,
    pub proc_id: usize,
    /// `phases[p]` = local iterations executed during phase `p`.
    pub phases: Vec<Vec<u32>>,
}

impl SingleRefPlan {
    pub fn total_iters(&self) -> usize {
        self.phases.iter().map(|p| p.len()).sum()
    }

    pub fn phase_iter_counts(&self) -> Vec<usize> {
        self.phases.iter().map(|p| p.len()).collect()
    }
}

/// Violation found by [`verify_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// An iteration appears in no phase or more than one phase.
    IterationCoverage { iter: u32, times: usize },
    /// A resident reference points at an element not owned that phase.
    NotResident { phase: usize, elem: u32 },
    /// A buffer slot is written by more than one (phase, iter, ref).
    BufferAliased { slot: u32 },
    /// A buffer slot is copied zero or multiple times.
    CopyCount { slot: u32, times: usize },
    /// A copy's destination is not resident in its phase.
    CopyDestNotResident { phase: usize, dest: u32 },
    /// A copy runs at or before the phase that wrote the buffer.
    CopyBeforeWrite { slot: u32 },
    /// A remapped reference disagrees with the original indirection array.
    WrongTarget { iter: u32, r: usize },
    /// Phase count does not match the geometry.
    PhaseCount { got: usize, want: usize },
    /// A [`FlatPlan`] handed to [`FlatPlan::new`] has inconsistent CSR
    /// arrays.
    FlatShape { what: &'static str },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::IterationCoverage { iter, times } => write!(
                f,
                "iteration {iter} appears in {times} phases (must be exactly 1)"
            ),
            PlanError::NotResident { phase, elem } => write!(
                f,
                "resident reference to element {elem} not owned in phase {phase}"
            ),
            PlanError::BufferAliased { slot } => {
                write!(f, "buffer slot {slot} written by more than one reference")
            }
            PlanError::CopyCount { slot, times } => write!(
                f,
                "buffer slot {slot} copied {times} times (must be exactly 1)"
            ),
            PlanError::CopyDestNotResident { phase, dest } => write!(
                f,
                "copy destination element {dest} not resident in phase {phase}"
            ),
            PlanError::CopyBeforeWrite { slot } => write!(
                f,
                "buffer slot {slot} copied at or before the phase that writes it"
            ),
            PlanError::WrongTarget { iter, r } => write!(
                f,
                "remapped reference {r} of iteration {iter} disagrees with the indirection array"
            ),
            PlanError::PhaseCount { got, want } => {
                write!(f, "plan has {got} phases, geometry requires {want}")
            }
            PlanError::FlatShape { what } => {
                write!(f, "malformed flat plan: {what}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Check every structural invariant of a plan against the original
/// indirection arrays. Used by unit tests, property tests, and (in debug
/// builds) the executors.
///
/// Invariants:
/// 1. every local iteration appears in exactly one phase;
/// 2. every resident reference targets an element owned in that phase,
///    and equals the original indirection entry;
/// 3. every buffered reference targets a distinct buffer slot, the slot
///    is copied exactly once, in a strictly later phase, into the
///    original indirection entry, which is resident in the copy's phase.
pub fn verify_plan(plan: &InspectorPlan, indirection: &[&[u32]]) -> Result<(), PlanError> {
    let g = &plan.geometry;
    let n = g.num_elements() as u32;
    let kp = g.num_phases();
    if plan.phases.len() != kp {
        return Err(PlanError::PhaseCount {
            got: plan.phases.len(),
            want: kp,
        });
    }
    let num_iters = indirection.first().map_or(0, |a| a.len());

    // 1. coverage
    let mut seen = vec![0usize; num_iters];
    for ph in &plan.phases {
        for &it in &ph.iters {
            seen[it as usize] += 1;
        }
    }
    for (it, &times) in seen.iter().enumerate() {
        if times != 1 {
            return Err(PlanError::IterationCoverage {
                iter: it as u32,
                times,
            });
        }
    }

    // slot -> (write phase, original element)
    let mut slot_written: std::collections::HashMap<u32, (usize, u32)> =
        std::collections::HashMap::new();

    for (p, ph) in plan.phases.iter().enumerate() {
        let owned = g.portion_owned_by(plan.proc_id, p);
        let range = g.portion_range(owned);
        for (j, &it) in ph.iters.iter().enumerate() {
            for (r, refs_r) in ph.refs.iter().enumerate() {
                let target = refs_r[j];
                let orig = indirection[r][it as usize];
                if target < n {
                    if target != orig {
                        return Err(PlanError::WrongTarget { iter: it, r });
                    }
                    if !range.contains(&(target as usize)) {
                        return Err(PlanError::NotResident {
                            phase: p,
                            elem: target,
                        });
                    }
                } else {
                    if slot_written.insert(target, (p, orig)).is_some() {
                        return Err(PlanError::BufferAliased { slot: target });
                    }
                }
            }
        }
    }

    // 3. copies
    let mut copied: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for (p, ph) in plan.phases.iter().enumerate() {
        let owned = g.portion_owned_by(plan.proc_id, p);
        let range = g.portion_range(owned);
        for c in &ph.copies {
            *copied.entry(c.src).or_insert(0) += 1;
            if !range.contains(&(c.dest as usize)) {
                return Err(PlanError::CopyDestNotResident {
                    phase: p,
                    dest: c.dest,
                });
            }
            match slot_written.get(&c.src) {
                None => {
                    return Err(PlanError::CopyCount {
                        slot: c.src,
                        times: 0,
                    })
                }
                Some(&(wp, orig)) => {
                    if wp >= p {
                        return Err(PlanError::CopyBeforeWrite { slot: c.src });
                    }
                    if orig != c.dest {
                        return Err(PlanError::WrongTarget {
                            iter: 0,
                            r: usize::MAX,
                        });
                    }
                }
            }
        }
    }
    for (&slot, _) in slot_written.iter() {
        let times = copied.get(&slot).copied().unwrap_or(0);
        if times != 1 {
            return Err(PlanError::CopyCount { slot, times });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_interleaves_refs_and_concatenates_copies() {
        let geometry = PhaseGeometry::try_new(2, 1, 8).unwrap();
        let plan = InspectorPlan {
            geometry,
            proc_id: 0,
            buffer_len: 2,
            phases: vec![
                PhasePlan {
                    iters: vec![0, 1],
                    refs: vec![vec![0, 1], vec![8, 9]],
                    copies: vec![],
                },
                PhasePlan {
                    iters: vec![2],
                    refs: vec![vec![4], vec![5]],
                    copies: vec![CopyOp { dest: 4, src: 8 }, CopyOp { dest: 5, src: 9 }],
                },
            ],
            iter_phase: vec![0, 0, 1],
        };
        let flat = plan.flatten();
        // refs[r][j] becomes refs[j*m + r]: iteration-major.
        assert_eq!(flat.phase_refs(0), &[0, 8, 1, 9]);
        assert_eq!(flat.phase_refs(1), &[4, 5]);
        assert!(flat.phase_copies(0).is_empty());
        assert_eq!(flat.phase_copies(1), &plan.phases[1].copies[..]);

        // Unflatten is the exact inverse.
        let iters: Vec<u32> = plan.phases.iter().flat_map(|p| p.iters.clone()).collect();
        let back = InspectorPlan::from_flat(
            plan.geometry,
            plan.proc_id,
            plan.buffer_len,
            &iters,
            plan.iter_phase.clone(),
            &flat,
        );
        assert_eq!(back, plan);
    }

    #[test]
    fn flat_plan_constructor_validates_shape() {
        let ok = FlatPlan::new(
            2,
            vec![0, 2],
            vec![0, 8, 1, 9],
            vec![0, 1],
            vec![CopyOp { dest: 1, src: 8 }],
        )
        .unwrap();
        assert_eq!(ok.m(), 2);
        assert_eq!(ok.num_phases(), 1);

        // Wrong refs length for the pointer total.
        let err = FlatPlan::new(2, vec![0, 2], vec![0, 8, 1], vec![0, 0], vec![]).unwrap_err();
        assert!(matches!(err, PlanError::FlatShape { .. }));
        // Non-monotone pointers.
        let err = FlatPlan::new(1, vec![0, 2, 1], vec![0, 1], vec![0, 0, 0], vec![]).unwrap_err();
        assert!(matches!(err, PlanError::FlatShape { .. }));
        // Mismatched pointer lengths.
        let err = FlatPlan::new(1, vec![0, 1], vec![0], vec![0], vec![]).unwrap_err();
        assert!(matches!(err, PlanError::FlatShape { .. }));
    }
}
