//! Property-based tests for the LightInspector, on the in-tree
//! [`harness::prop`] harness.
//!
//! The central invariant: for *any* geometry and *any* indirection
//! contents, the plan produced by the inspector is structurally valid —
//! every iteration runs exactly once, every resident reference is
//! actually resident, and every buffered contribution is folded exactly
//! once, later, into the right element. `verify_plan` encodes those
//! checks; these tests drive it across the parameter space.
//!
//! Failing cases print a `PROP_SEED` replay line; see DESIGN.md.

use harness::prop::{check, Config, Gen};
use harness::{prop_assert, prop_assert_eq};
use lightinspector::{
    inspect, inspect_single, verify_plan, IncrementalInspector, InspectorInput, PhaseGeometry,
};

/// Geometry + matching random indirection arrays.
#[derive(Debug, Clone)]
struct Scenario {
    p: usize,
    k: usize,
    n: usize,
    a: Vec<u32>,
    b: Vec<u32>,
}

fn scenario(g: &mut Gen) -> Scenario {
    let p = g.usize_incl(1, 8);
    let k = g.usize_incl(1, 4);
    let n = g.usize_incl(1, 100);
    let iters = g.usize_incl(0, 300);
    let a = (0..iters).map(|_| g.u32_in(0..n as u32)).collect();
    let b = (0..iters).map(|_| g.u32_in(0..n as u32)).collect();
    Scenario { p, k, n, a, b }
}

#[test]
fn plan_is_always_valid() {
    check("plan_is_always_valid", Config::cases(256), scenario, |s| {
        let g = PhaseGeometry::new(s.p, s.k, s.n);
        for proc_id in 0..s.p {
            let plan = inspect(InspectorInput {
                geometry: g,
                proc_id,
                indirection: &[&s.a, &s.b],
            })
            .unwrap();
            prop_assert!(verify_plan(&plan, &[&s.a, &s.b]).is_ok());
            prop_assert_eq!(plan.total_iters(), s.a.len());
        }
        Ok(())
    });
}

#[test]
fn buffers_bounded_by_refs() {
    check(
        "buffers_bounded_by_refs",
        Config::cases(256),
        scenario,
        |s| {
            let g = PhaseGeometry::new(s.p, s.k, s.n);
            let plan = inspect(InspectorInput {
                geometry: g,
                proc_id: 0,
                indirection: &[&s.a, &s.b],
            })
            .unwrap();
            // At most one buffered reference per (iteration, ref) pair
            // beyond the resident one: m-1 = 1 per iteration here.
            prop_assert!(plan.buffer_len <= s.a.len());
            prop_assert_eq!(plan.buffer_len, plan.total_copies());
            Ok(())
        },
    );
}

#[test]
fn single_ref_groups_residents() {
    check(
        "single_ref_groups_residents",
        Config::cases(256),
        scenario,
        |s| {
            let g = PhaseGeometry::new(s.p, s.k, s.n);
            let plan = inspect_single(g, s.p - 1, &s.a).unwrap();
            prop_assert_eq!(plan.total_iters(), s.a.len());
            for (phase, iters) in plan.phases.iter().enumerate() {
                let owned = g.portion_owned_by(s.p - 1, phase);
                let range = g.portion_range(owned);
                for &i in iters {
                    prop_assert!(range.contains(&(s.a[i as usize] as usize)));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn incremental_matches_full() {
    check(
        "incremental_matches_full",
        Config::cases(256),
        |g| {
            let mut s = scenario(g);
            if s.a.is_empty() {
                // Updates need at least one iteration to target.
                s.a.push(g.u32_in(0..s.n as u32));
                s.b.push(g.u32_in(0..s.n as u32));
            }
            let updates = g.vec(0, 40, |g| {
                (g.usize_in(0..300), g.u32_in(0..100), g.u32_in(0..100))
            });
            (s, updates)
        },
        |(s, updates)| {
            let g = PhaseGeometry::new(s.p, s.k, s.n);
            let mut inc = IncrementalInspector::new(g, 0, vec![s.a.clone(), s.b.clone()]);
            for &(i, e1, e2) in updates {
                let iter = i % s.a.len();
                inc.update(iter, &[e1 % s.n as u32, e2 % s.n as u32]);
            }
            let refs: Vec<&[u32]> = inc.indirection().iter().map(|v| v.as_slice()).collect();
            prop_assert!(verify_plan(inc.plan(), &refs).is_ok());
            let full = inspect(InspectorInput {
                geometry: g,
                proc_id: 0,
                indirection: &refs,
            })
            .unwrap();
            prop_assert_eq!(&full.iter_phase, &inc.plan().iter_phase);
            Ok(())
        },
    );
}

#[test]
fn ownership_round_trips() {
    check(
        "ownership_round_trips",
        Config::cases(256),
        |g| {
            let p = g.usize_incl(1, 16);
            let k = g.usize_incl(1, 4);
            let n = g.usize_incl(1, 1000);
            let e = g.usize_in(0..n);
            (p, k, n, e)
        },
        |&(p, k, n, e)| {
            let g = PhaseGeometry::new(p, k, n);
            let portion = g.portion_of(e);
            for proc in 0..p {
                let phase = g.phase_of_portion_on(proc, portion);
                prop_assert_eq!(g.portion_owned_by(proc, phase), portion);
                prop_assert_eq!(g.owner_at(portion, phase), Some(proc));
            }
            Ok(())
        },
    );
}
