//! Property-based tests for the LightInspector.
//!
//! The central invariant: for *any* geometry and *any* indirection
//! contents, the plan produced by the inspector is structurally valid —
//! every iteration runs exactly once, every resident reference is
//! actually resident, and every buffered contribution is folded exactly
//! once, later, into the right element. `verify_plan` encodes those
//! checks; these tests drive it across the parameter space.

use lightinspector::{
    inspect, inspect_single, verify_plan, IncrementalInspector, InspectorInput, PhaseGeometry,
};
use proptest::prelude::*;

/// Strategy: geometry + matching random indirection arrays.
fn scenario() -> impl Strategy<Value = (usize, usize, usize, usize, Vec<u32>, Vec<u32>)> {
    (1usize..=8, 1usize..=4, 1usize..=100, 0usize..=300).prop_flat_map(|(p, k, n, iters)| {
        let e = 0u32..(n as u32);
        (
            Just(p),
            Just(k),
            Just(n),
            Just(iters),
            prop::collection::vec(e.clone(), iters),
            prop::collection::vec(e, iters),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn plan_is_always_valid((p, k, n, _iters, a, b) in scenario()) {
        let g = PhaseGeometry::new(p, k, n);
        for proc_id in 0..p {
            let plan = inspect(InspectorInput {
                geometry: g,
                proc_id,
                indirection: &[&a, &b],
            });
            prop_assert!(verify_plan(&plan, &[&a, &b]).is_ok());
            prop_assert_eq!(plan.total_iters(), a.len());
        }
    }

    #[test]
    fn buffers_bounded_by_refs((p, k, n, _iters, a, b) in scenario()) {
        let g = PhaseGeometry::new(p, k, n);
        let plan = inspect(InspectorInput { geometry: g, proc_id: 0, indirection: &[&a, &b] });
        // At most one buffered reference per (iteration, ref) pair beyond
        // the resident one: m-1 = 1 per iteration here.
        prop_assert!(plan.buffer_len <= a.len());
        prop_assert_eq!(plan.buffer_len, plan.total_copies());
    }

    #[test]
    fn single_ref_groups_residents((p, k, n, _iters, a, _b) in scenario()) {
        let g = PhaseGeometry::new(p, k, n);
        let plan = inspect_single(g, p - 1, &a);
        prop_assert_eq!(plan.total_iters(), a.len());
        for (phase, iters) in plan.phases.iter().enumerate() {
            let owned = g.portion_owned_by(p - 1, phase);
            let range = g.portion_range(owned);
            for &i in iters {
                prop_assert!(range.contains(&(a[i as usize] as usize)));
            }
        }
    }

    #[test]
    fn incremental_matches_full((p, k, n, _iters, a, b) in scenario(),
                                 updates in prop::collection::vec((0usize..300, 0u32..100, 0u32..100), 0..40)) {
        prop_assume!(!a.is_empty());
        let g = PhaseGeometry::new(p, k, n);
        let mut inc = IncrementalInspector::new(g, 0, vec![a.clone(), b.clone()]);
        for (i, e1, e2) in updates {
            let iter = i % a.len();
            inc.update(iter, &[e1 % n as u32, e2 % n as u32]);
        }
        let refs: Vec<&[u32]> = inc.indirection().iter().map(|v| v.as_slice()).collect();
        prop_assert!(verify_plan(inc.plan(), &refs).is_ok());
        let full = inspect(InspectorInput { geometry: g, proc_id: 0, indirection: &refs });
        prop_assert_eq!(&full.iter_phase, &inc.plan().iter_phase);
    }

    #[test]
    fn ownership_round_trips(p in 1usize..=16, k in 1usize..=4, n in 1usize..=1000, e in 0usize..1000) {
        prop_assume!(e < n);
        let g = PhaseGeometry::new(p, k, n);
        let portion = g.portion_of(e);
        for proc in 0..p {
            let phase = g.phase_of_portion_on(proc, portion);
            prop_assert_eq!(g.portion_owned_by(proc, phase), portion);
            prop_assert_eq!(g.owner_at(portion, phase), Some(proc));
        }
    }
}
