//! # kernels — the paper's three scientific kernels
//!
//! * [`mvm`] — sparse matrix–vector multiply extracted from NAS CG
//!   (§5.3): the reduction array `y` is *not* indirectly accessed; the
//!   gathered vector rotates ([`irred::GatherEngine`]).
//! * [`euler`] — a CFD unstructured-mesh edge loop (§5.4): two LHS
//!   indirection references into flux accumulators, a per-node state
//!   array updated each time step from the accumulated fluxes.
//! * [`moldyn`] — a molecular-dynamics force loop (§5.4): two LHS
//!   references into the 3-component force field; positions integrate
//!   from forces each time step and feed back into the next force
//!   computation.
//!
//! Each module provides a problem builder over the [`workloads`]
//! generators, the [`irred::EdgeKernel`] implementation, and a
//! sequential reference used by the tests and the benchmark harness.

pub mod euler;
pub mod family;
pub mod moldyn;
pub mod mvm;

pub use euler::{EulerKernel, EulerProblem};
pub use family::{FamilyKernel, FamilyProblem};
pub use moldyn::{MolDynKernel, MolDynProblem};
pub use mvm::MvmProblem;
