//! The `euler` kernel: an unstructured-mesh CFD edge loop.
//!
//! Derived from the shape of the paper's Figure 1 (its reference [5]):
//! the loop sweeps the mesh edges; each edge computes a flux from the
//! state of its two nodes and a per-edge coefficient, and accumulates it
//! into both nodes with opposite signs (conservation). After the sweep,
//! a node loop advances the state from the accumulated fluxes — the
//! "time-step loop" timed in §5.4 (100 iterations).
//!
//! Reduction group: two arrays (mass-like and energy-like flux
//! accumulators) accessed through the same two indirection sections —
//! one *reference group* in the compiler's sense (Definition 1), so a
//! single LightInspector serves the loop.

use std::ops::Range;
use std::sync::Arc;

use irred::{EdgeKernel, PhasedSpec};
use workloads::{Mesh, MeshPreset};

/// Time-step size of the explicit update.
const DT: f64 = 1e-3;

/// The edge-loop body.
#[derive(Debug)]
pub struct EulerKernel {
    /// Per-edge coefficients (face areas / metric terms).
    pub coeff: Arc<Vec<f64>>,
    /// Initial node state.
    pub q0: Arc<Vec<f64>>,
}

impl EdgeKernel for EulerKernel {
    fn num_refs(&self) -> usize {
        2
    }

    fn num_arrays(&self) -> usize {
        4 // mass, two momentum components, energy — one reference group
    }

    fn num_read_arrays(&self) -> usize {
        1 // the node state q
    }

    fn init_read(&self) -> Vec<f64> {
        // A single read array: the interleaved layout is the array itself.
        self.q0.as_ref().clone()
    }

    fn updates_read_state(&self) -> bool {
        true
    }

    fn contrib(&self, read: &[f64], iter: usize, elems: &[u32], out: &mut [f64]) {
        let (n1, n2) = (elems[0] as usize, elems[1] as usize);
        let w = self.coeff[iter];
        let (q1, q2) = (read[n1], read[n2]);
        let d = q1 - q2;
        let avg = 0.5 * (q1 + q2);
        let f_mass = w * d;
        let f_mx = w * d * avg;
        let f_my = 0.5 * w * (q1 * q1 - q2 * q2);
        let f_energy = f_mass * avg * avg;
        // Conservative: node 1 loses what node 2 gains.
        out[0] = -f_mass;
        out[1] = -f_mx;
        out[2] = -f_my;
        out[3] = -f_energy;
        out[4] = f_mass;
        out[5] = f_mx;
        out[6] = f_my;
        out[7] = f_energy;
    }

    fn flops_per_iter(&self) -> u64 {
        20
    }

    fn edge_reads_per_iter(&self) -> usize {
        1 // coeff
    }

    fn node_reads_per_elem(&self) -> usize {
        1 // q
    }

    fn post_sweep(&self, read: &mut [f64], range: Range<usize>, x: &[f64]) -> bool {
        for (i, v) in range.enumerate() {
            let f = &x[i * 4..i * 4 + 4];
            read[v] += DT * (f[0] + 0.5 * (f[1] + f[2]) + 0.25 * f[3]);
        }
        true
    }

    fn post_flops_per_elem(&self) -> u64 {
        6
    }
}

/// A complete euler problem: mesh + kernel + spec.
pub struct EulerProblem {
    pub mesh: Mesh,
    pub spec: PhasedSpec<EulerKernel>,
}

impl EulerProblem {
    /// Build one of the paper's datasets (3-D mesh in generator order;
    /// apply [`Mesh::shuffled`] before [`EulerProblem::from_mesh`] for
    /// the worst-case-numbering ablation).
    pub fn preset(p: MeshPreset, seed: u64) -> Self {
        Self::from_mesh(Mesh::preset(p, seed), seed)
    }

    pub fn from_mesh(mesh: Mesh, seed: u64) -> Self {
        let e = mesh.num_edges();
        let n = mesh.num_nodes;
        // Deterministic pseudo-random coefficients and initial state.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let coeff: Vec<f64> = (0..e).map(|_| 0.5 + next()).collect();
        let q0: Vec<f64> = (0..n).map(|_| 1.0 + 0.1 * next()).collect();
        let kernel = EulerKernel {
            coeff: Arc::new(coeff),
            q0: Arc::new(q0),
        };
        let spec = PhasedSpec {
            kernel: Arc::new(kernel),
            num_elements: n,
            indirection: Arc::new(vec![mesh.ia1.clone(), mesh.ia2.clone()]),
        };
        EulerProblem { mesh, spec }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_model::native::NativeConfig;
    use earth_model::sim::SimConfig;
    use irred::{
        approx_eq, seq_reduction, PhasedEngine, ReductionEngine, RunOutcome, StrategyConfig,
    };

    fn run_phased(p: &EulerProblem, strat: &StrategyConfig) -> RunOutcome {
        PhasedEngine::sim(SimConfig::default())
            .run(&p.spec, strat)
            .expect("valid euler spec")
    }
    use workloads::Distribution;

    fn small_problem() -> EulerProblem {
        EulerProblem::from_mesh(Mesh::generate(200, 900, 42), 42)
    }

    #[test]
    fn conservation_total_flux_is_zero() {
        // Sum of each reduction array over all nodes is zero after one
        // sweep (every edge adds ±f).
        let p = small_problem();
        let seq = seq_reduction(&p.spec, 1, SimConfig::default());
        for a in 0..4 {
            let total: f64 = seq.x[a].iter().sum();
            assert!(total.abs() < 1e-9, "array {a} drifted: {total}");
        }
    }

    #[test]
    fn state_evolves_over_sweeps() {
        let p = small_problem();
        let r1 = seq_reduction(&p.spec, 1, SimConfig::default());
        let r5 = seq_reduction(&p.spec, 5, SimConfig::default());
        assert_ne!(r1.read[0], r5.read[0], "q must advance in time");
        // but remain finite / stable for small dt
        assert!(r5.read[0].iter().all(|v| v.is_finite()));
    }

    #[test]
    fn phased_matches_sequential_2p() {
        let p = small_problem();
        let strat = StrategyConfig::new(2, 2, Distribution::Cyclic, 4);
        let seq = seq_reduction(&p.spec, 4, SimConfig::default());
        let res = run_phased(&p, &strat);
        for a in 0..4 {
            assert!(approx_eq(&res.values[a], &seq.x[a], 1e-8), "array {a}");
        }
        assert!(approx_eq(&res.read[0], &seq.read[0], 1e-8));
    }

    #[test]
    fn phased_matches_sequential_4p_block() {
        let p = small_problem();
        let strat = StrategyConfig::new(4, 2, Distribution::Block, 3);
        let seq = seq_reduction(&p.spec, 3, SimConfig::default());
        let res = run_phased(&p, &strat);
        assert!(approx_eq(&res.read[0], &seq.read[0], 1e-8));
    }

    #[test]
    fn phased_matches_sequential_k1() {
        let p = small_problem();
        let strat = StrategyConfig::new(3, 1, Distribution::Cyclic, 3);
        let seq = seq_reduction(&p.spec, 3, SimConfig::default());
        let res = run_phased(&p, &strat);
        assert!(approx_eq(&res.read[0], &seq.read[0], 1e-8));
    }

    #[test]
    fn native_matches_sequential() {
        let p = small_problem();
        let strat = StrategyConfig::new(2, 2, Distribution::Block, 3);
        let seq = seq_reduction(&p.spec, 3, SimConfig::default());
        let res = PhasedEngine::native(NativeConfig::default())
            .run(&p.spec, &strat)
            .unwrap();
        assert!(approx_eq(&res.read[0], &seq.read[0], 1e-8));
    }

    #[test]
    fn preset_sizes() {
        let p = EulerProblem::preset(MeshPreset::Euler2K, 1);
        assert_eq!(p.spec.num_elements, 2_800);
        assert_eq!(p.spec.num_iterations(), 17_377);
    }
}
