//! The `moldyn` kernel: a molecular-dynamics force loop.
//!
//! From the classic benchmark (the paper's reference [14], the
//! Tseng/Han code): the interaction list pairs molecules within the
//! cutoff; each pair computes a truncated Lennard-Jones-style force from
//! the two positions and accumulates ±f into the two molecules' force
//! vectors (three components — one reference group of three reduction
//! arrays). The per-time-step node loop integrates positions from the
//! forces, which feed the next sweep's force computation.
//!
//! This is the paper's read-state-heaviest kernel: positions are
//! replicated, refreshed after every sweep, and there is no per-edge
//! data at all.

use std::ops::Range;
use std::sync::Arc;

use irred::{EdgeKernel, PhasedSpec};
use workloads::{MolDyn, MolDynPreset};

const DT2: f64 = 1e-6; // dt² of the position update
const EPS: f64 = 1e-6; // softening against exact overlaps
/// σ² chosen so the LJ minimum (`r = 2^{1/6}·σ`) sits at the FCC
/// nearest-neighbour distance `a/√2 ≈ 0.707`: molecules oscillate gently
/// instead of blowing up, keeping 100-sweep runs finite.
const SIGMA2: f64 = 0.397;
/// Force-magnitude clamp — the standard truncation guard of benchmark
/// moldyn codes.
const FMAX: f64 = 1e3;

/// The force-loop body.
#[derive(Debug)]
pub struct MolDynKernel {
    pub pos0: Arc<Vec<[f64; 3]>>,
    pub box_side: f64,
}

impl MolDynKernel {
    #[inline]
    fn min_image(&self, mut d: f64) -> f64 {
        let l = self.box_side;
        if d > l / 2.0 {
            d -= l;
        } else if d < -l / 2.0 {
            d += l;
        }
        d
    }
}

impl EdgeKernel for MolDynKernel {
    fn num_refs(&self) -> usize {
        2
    }

    fn num_arrays(&self) -> usize {
        3 // fx, fy, fz
    }

    fn num_read_arrays(&self) -> usize {
        3 // x, y, z
    }

    fn init_read(&self) -> Vec<f64> {
        // Element-major interleaved (x,y,z per molecule) — exactly the
        // layout `pos0` already has.
        self.pos0.iter().flat_map(|p| p.iter().copied()).collect()
    }

    fn updates_read_state(&self) -> bool {
        true
    }

    fn contrib(&self, read: &[f64], _iter: usize, elems: &[u32], out: &mut [f64]) {
        // One 3-double struct per molecule: the two position loads touch
        // two cache lines, not six.
        let (i, j) = (elems[0] as usize * 3, elems[1] as usize * 3);
        let (pi, pj) = (&read[i..i + 3], &read[j..j + 3]);
        let d = [
            self.min_image(pj[0] - pi[0]),
            self.min_image(pj[1] - pi[1]),
            self.min_image(pj[2] - pi[2]),
        ];
        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + EPS;
        let u2 = SIGMA2 / r2;
        let u6 = u2 * u2 * u2;
        // Truncated LJ magnitude (repulsive minus attractive), clamped.
        let f = (24.0 * u6 * (2.0 * u6 - 1.0) / r2).clamp(-FMAX, FMAX);
        for a in 0..3 {
            out[a] = f * d[a]; // ref 0 (molecule i) pulled toward j
            out[3 + a] = -f * d[a]; // ref 1 (molecule j), opposite
        }
    }

    // Branchless batch body for the chunked flat loops: per iteration
    // the same float expressions in the same order as `contrib` (the
    // `min_image` branches depend only on data, not loop position), so
    // each slot group is bit-identical to a per-iteration call — the
    // contract `EdgeKernel::contrib_batch` demands. Writing straight
    // into the caller's chunk buffer lets the compiler keep the whole
    // pair computation in registers and vectorize across iterations.
    fn contrib_batch(&self, read: &[f64], giters: &[u32], elems: &[u32], out: &mut [f64]) {
        for j in 0..giters.len() {
            let (i, k) = (elems[j * 2] as usize * 3, elems[j * 2 + 1] as usize * 3);
            let (pi, pj) = (&read[i..i + 3], &read[k..k + 3]);
            let d = [
                self.min_image(pj[0] - pi[0]),
                self.min_image(pj[1] - pi[1]),
                self.min_image(pj[2] - pi[2]),
            ];
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + EPS;
            let u2 = SIGMA2 / r2;
            let u6 = u2 * u2 * u2;
            let f = (24.0 * u6 * (2.0 * u6 - 1.0) / r2).clamp(-FMAX, FMAX);
            let o = &mut out[j * 6..(j + 1) * 6];
            for a in 0..3 {
                o[a] = f * d[a];
                o[3 + a] = -f * d[a];
            }
        }
    }

    fn flops_per_iter(&self) -> u64 {
        40
    }

    fn edge_reads_per_iter(&self) -> usize {
        0
    }

    fn node_reads_per_elem(&self) -> usize {
        3
    }

    fn post_sweep(&self, read: &mut [f64], range: Range<usize>, x: &[f64]) -> bool {
        let l = self.box_side;
        for (i, v) in range.enumerate() {
            for a in 0..3 {
                read[v * 3 + a] = (read[v * 3 + a] + DT2 * x[i * 3 + a]).rem_euclid(l);
            }
        }
        true
    }

    fn post_flops_per_elem(&self) -> u64 {
        9
    }
}

/// A complete moldyn problem: configuration + kernel + spec.
pub struct MolDynProblem {
    pub config: MolDyn,
    pub spec: PhasedSpec<MolDynKernel>,
}

impl MolDynProblem {
    /// Build one of the paper's datasets. The 2K dataset keeps
    /// lattice-order numbering; the 10K dataset is randomly renumbered —
    /// the paper's 10K results (2-processor *slowdowns* of 0.56–0.82,
    /// "the level of performance degradation is dataset dependent",
    /// §5.4.2) are consistent with that dataset carrying much worse
    /// index locality than the 2K one.
    pub fn preset(p: MolDynPreset) -> Self {
        let config = match p {
            MolDynPreset::MolDyn2K => MolDyn::preset(p),
            MolDynPreset::MolDyn10K => MolDyn::preset(p).shuffled(42),
        };
        Self::from_config(config)
    }

    pub fn from_config(config: MolDyn) -> Self {
        let kernel = MolDynKernel {
            pos0: Arc::new(config.pos.clone()),
            box_side: config.box_side,
        };
        let spec = PhasedSpec {
            kernel: Arc::new(kernel),
            num_elements: config.num_molecules,
            indirection: Arc::new(vec![config.ia1.clone(), config.ia2.clone()]),
        };
        MolDynProblem { config, spec }
    }

    /// Rebuild the spec after the configuration's positions / interaction
    /// list changed (the adaptive scenario).
    pub fn refresh(&mut self) {
        let config = self.config.clone();
        *self = Self::from_config(config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_model::sim::SimConfig;
    use irred::{
        approx_eq, seq_reduction, PhasedEngine, ReductionEngine, RunOutcome, StrategyConfig,
    };

    fn run_phased(p: &MolDynProblem, strat: &StrategyConfig) -> RunOutcome {
        PhasedEngine::sim(SimConfig::default())
            .run(&p.spec, strat)
            .expect("valid moldyn spec")
    }
    use workloads::Distribution;

    fn small_problem() -> MolDynProblem {
        MolDynProblem::from_config(MolDyn::fcc(3, 0.75))
    }

    #[test]
    fn newtons_third_law_net_force_zero() {
        let p = small_problem();
        let seq = seq_reduction(&p.spec, 1, SimConfig::default());
        for a in 0..3 {
            let total: f64 = seq.x[a].iter().sum();
            assert!(total.abs() < 1e-9, "net force {a}: {total}");
        }
    }

    #[test]
    fn perfect_lattice_has_symmetric_forces() {
        // On an unperturbed FCC lattice with PBC, every molecule's force
        // must vanish by symmetry.
        let p = small_problem();
        let seq = seq_reduction(&p.spec, 1, SimConfig::default());
        for a in 0..3 {
            for (m, &f) in seq.x[a].iter().enumerate() {
                assert!(f.abs() < 1e-9, "molecule {m} axis {a}: {f}");
            }
        }
    }

    #[test]
    fn perturbed_lattice_develops_forces() {
        let mut config = MolDyn::fcc(3, 0.75);
        config.perturb(0.05, 7);
        config.rebuild_interactions();
        let p = MolDynProblem::from_config(config);
        let seq = seq_reduction(&p.spec, 1, SimConfig::default());
        let mag: f64 = seq.x.iter().flatten().map(|f| f.abs()).sum();
        assert!(mag > 1e-6, "perturbation should produce forces");
    }

    #[test]
    fn phased_matches_sequential() {
        let mut config = MolDyn::fcc(3, 0.75);
        config.perturb(0.03, 9);
        config.rebuild_interactions();
        let p = MolDynProblem::from_config(config);
        let strat = StrategyConfig::new(2, 2, Distribution::Cyclic, 3);
        let seq = seq_reduction(&p.spec, 3, SimConfig::default());
        let res = run_phased(&p, &strat);
        for a in 0..3 {
            assert!(approx_eq(&res.values[a], &seq.x[a], 1e-8), "force axis {a}");
            assert!(approx_eq(&res.read[a], &seq.read[a], 1e-8), "pos axis {a}");
        }
    }

    #[test]
    fn phased_matches_sequential_4p_k4() {
        let mut config = MolDyn::fcc(3, 0.75);
        config.perturb(0.02, 11);
        config.rebuild_interactions();
        let p = MolDynProblem::from_config(config);
        let strat = StrategyConfig::new(4, 4, Distribution::Block, 2);
        let seq = seq_reduction(&p.spec, 2, SimConfig::default());
        let res = run_phased(&p, &strat);
        for a in 0..3 {
            assert!(approx_eq(&res.read[a], &seq.read[a], 1e-8));
        }
    }

    #[test]
    fn contrib_batch_override_is_bit_identical_to_contrib() {
        let mut config = MolDyn::fcc(3, 0.75);
        config.perturb(0.04, 13);
        config.rebuild_interactions();
        let p = MolDynProblem::from_config(config);
        let kernel = &p.spec.kernel;
        let read = kernel.init_read();
        let n = p.spec.num_iterations().min(64);
        let giters: Vec<u32> = (0..n as u32).collect();
        let elems: Vec<u32> = (0..n)
            .flat_map(|i| [p.spec.indirection[0][i], p.spec.indirection[1][i]])
            .collect();
        let mut batch = vec![0.0f64; n * 6];
        kernel.contrib_batch(&read, &giters, &elems, &mut batch);
        for j in 0..n {
            let mut one = [0.0f64; 6];
            kernel.contrib(&read, j, &elems[j * 2..(j + 1) * 2], &mut one);
            for s in 0..6 {
                assert_eq!(
                    one[s].to_bits(),
                    batch[j * 6 + s].to_bits(),
                    "iter {j} slot {s}"
                );
            }
        }
    }

    #[test]
    fn preset_sizes() {
        let p = MolDynProblem::preset(MolDynPreset::MolDyn2K);
        assert_eq!(p.spec.num_elements, 2_916);
        assert_eq!(p.spec.num_iterations(), 26_244);
    }
}
