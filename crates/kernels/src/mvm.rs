//! The `mvm` kernel: sparse matrix–vector multiply from NAS CG (§5.3).
//!
//! The reduction array `y` is indexed by the loop's row variable — not
//! through indirection — so the LightInspector is not needed; the phased
//! strategy rotates portions of the *gathered* vector `x`
//! ([`irred::GatherEngine`]).

use std::sync::Arc;

use earth_model::sim::SimConfig;
use irred::{
    seq_gather_cycles, ExecutionConfig, GatherEngine, GatherSpec, ReductionEngine, RunOutcome,
    StrategyConfig,
};
use workloads::{CgClass, SparseMatrix};

/// A complete mvm problem: matrix + input vector.
pub struct MvmProblem {
    pub spec: GatherSpec,
}

impl MvmProblem {
    /// Build one of the paper's NAS classes.
    pub fn nas_class(class: CgClass, seed: u64) -> Self {
        Self::from_matrix(Arc::new(SparseMatrix::nas_class(class, seed)))
    }

    pub fn from_matrix(matrix: Arc<SparseMatrix>) -> Self {
        // NAS CG starts from the all-ones vector; a mild ramp keeps the
        // output non-degenerate for validation.
        let x: Vec<f64> = (0..matrix.ncols)
            .map(|i| 1.0 + (i % 7) as f64 * 0.125)
            .collect();
        MvmProblem {
            spec: GatherSpec {
                matrix,
                x: Arc::new(x),
            },
        }
    }

    /// Run the phased gather strategy on the simulator. The single
    /// value array of the [`RunOutcome`] is `y`. Accepts a bare
    /// [`SimConfig`] or a full [`ExecutionConfig`] (e.g. with tracing).
    pub fn run_sim(&self, strat: &StrategyConfig, cfg: impl Into<ExecutionConfig>) -> RunOutcome {
        GatherEngine::new(cfg)
            .run(&self.spec, strat)
            .expect("valid mvm spec")
    }

    /// Sequential reference: `(y, cycles)` for `sweeps` products.
    pub fn sequential(&self, sweeps: usize, cfg: SimConfig) -> (Vec<f64>, u64) {
        seq_gather_cycles(&self.spec.matrix, &self.spec.x, sweeps, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irred::approx_eq;
    use workloads::Distribution;

    fn small() -> MvmProblem {
        MvmProblem::from_matrix(Arc::new(SparseMatrix::random(256, 256, 4_000, 3)))
    }

    #[test]
    fn phased_matches_sequential() {
        let p = small();
        let (want, _) = p.sequential(1, SimConfig::default());
        for (procs, k) in [(2, 2), (4, 1), (8, 2)] {
            let strat = StrategyConfig::new(procs, k, Distribution::Block, 2);
            let r = p.run_sim(&strat, SimConfig::default());
            assert!(
                approx_eq(&r.values[0], &want, 1e-10),
                "mismatch at P={procs}, k={k}"
            );
        }
    }

    #[test]
    fn speedup_grows_with_processors() {
        let p = MvmProblem::from_matrix(Arc::new(SparseMatrix::random(4_096, 4_096, 80_000, 5)));
        let (_, seq) = p.sequential(2, SimConfig::default());
        let t2 = p
            .run_sim(
                &StrategyConfig::new(2, 2, Distribution::Block, 2),
                SimConfig::default(),
            )
            .time_cycles;
        let t8 = p
            .run_sim(
                &StrategyConfig::new(8, 2, Distribution::Block, 2),
                SimConfig::default(),
            )
            .time_cycles;
        assert!(t8 < t2, "8 procs {t8} vs 2 procs {t2}");
        assert!(seq as f64 / t2 as f64 > 1.2, "2-proc speedup too low");
    }
}
