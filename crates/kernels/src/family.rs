//! Lowering of the skewed workload families ([`workloads::FamilySpec`])
//! onto the engine interfaces.
//!
//! One [`EdgeKernel`] serves all three families: the contribution of
//! iteration `i` through reference `r` to array `a` is
//! `coeffs[r][a] · w[i]` — a pure function of the iteration index, with
//! integer-exact values, so every engine (and layout, and backend) must
//! match the straight-line oracle bit for bit. The family distinction
//! lives entirely in the indirection structure the generators produce.
//!
//! [`FamilyProblem::gather_formulation`] additionally re-expresses one
//! reduction array as a sparse matrix–vector product
//! (`A[e, i] = coeffs[r][a]` for each reference, `x = weights`), so the
//! [`irred::GatherEngine`] can run the same reduction and be held to the
//! same oracle.

use std::sync::Arc;

use irred::{EdgeKernel, GatherSpec, PhasedSpec};
use workloads::{FamilySpec, SparseMatrix};

/// The shared loop body of the skewed families.
#[derive(Debug)]
pub struct FamilyKernel {
    weights: Arc<Vec<f64>>,
    /// `coeffs[r * num_arrays + a]`, flattened.
    coeffs: Vec<f64>,
    m: usize,
    arrays: usize,
}

impl EdgeKernel for FamilyKernel {
    fn num_refs(&self) -> usize {
        self.m
    }

    fn num_arrays(&self) -> usize {
        self.arrays
    }

    fn contrib(&self, _read: &[f64], iter: usize, _elems: &[u32], out: &mut [f64]) {
        let w = self.weights[iter];
        for (o, &c) in out.iter_mut().zip(&self.coeffs) {
            *o = c * w;
        }
    }

    fn flops_per_iter(&self) -> u64 {
        (self.m * self.arrays) as u64
    }

    fn edge_reads_per_iter(&self) -> usize {
        1 // the weight stream
    }
}

/// A family lowered to the phased interfaces, keeping the generator
/// output alongside for the oracle and the statistics surface.
pub struct FamilyProblem {
    pub family: FamilySpec,
    pub spec: PhasedSpec<FamilyKernel>,
}

impl FamilyProblem {
    pub fn from_family(family: FamilySpec) -> Self {
        let arrays = family.num_arrays();
        let kernel = FamilyKernel {
            weights: Arc::new(family.weights.clone()),
            coeffs: family
                .coeffs
                .iter()
                .flat_map(|row| row.iter().copied())
                .collect(),
            m: family.num_refs(),
            arrays,
        };
        let spec = PhasedSpec {
            kernel: Arc::new(kernel),
            num_elements: family.num_elements,
            indirection: Arc::new(family.indirection.clone()),
        };
        FamilyProblem { family, spec }
    }

    /// Express reduction array `a` as `y = A·w`: one nonzero
    /// `A[ind[r][i], i] = coeffs[r][a]` per reference, the weight vector
    /// as `x`. Rows whose element is never referenced are legitimately
    /// empty (their reduction value is 0).
    pub fn gather_formulation(&self, a: usize) -> GatherSpec {
        let f = &self.family;
        assert!(a < f.num_arrays(), "array index out of range");
        let iters = f.num_iterations();
        // Bucket nonzeros by row (counting sort — the indirection is
        // unsorted by element).
        let mut row_counts = vec![0u64; f.num_elements + 1];
        for ind_r in &f.indirection {
            for &e in ind_r {
                row_counts[e as usize + 1] += 1;
            }
        }
        let mut row_ptr = row_counts;
        for r in 0..f.num_elements {
            row_ptr[r + 1] += row_ptr[r];
        }
        let nnz = row_ptr[f.num_elements] as usize;
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut cursor = row_ptr.clone();
        for (r, ind_r) in f.indirection.iter().enumerate() {
            let c = f.coeffs[r][a];
            for (i, &e) in ind_r.iter().enumerate() {
                let slot = cursor[e as usize] as usize;
                cursor[e as usize] += 1;
                col_idx[slot] = i as u32;
                values[slot] = c;
            }
        }
        GatherSpec {
            matrix: Arc::new(SparseMatrix {
                nrows: f.num_elements,
                ncols: iters,
                row_ptr,
                col_idx,
                values,
            }),
            x: Arc::new(f.weights.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_model::sim::SimConfig;
    use irred::{seq_reduction, Distribution, GatherEngine, ReductionEngine, StrategyConfig};
    use workloads::{oracle_reduce, HotKeyScatter, PicDeck, PowerLawGraph};

    fn families() -> Vec<FamilySpec> {
        vec![
            PowerLawGraph::generate(60, 400, 1.5, 3)
                .unwrap()
                .to_family(3),
            HotKeyScatter::generate(40, 600, 3, 0.9, 2, 5)
                .unwrap()
                .to_family(5),
            PicDeck::generate(32, 300, 1, 0.4, 7).unwrap().initial(),
        ]
    }

    #[test]
    fn sequential_engine_matches_oracle_bitwise() {
        for f in families() {
            let want = oracle_reduce(&f);
            let p = FamilyProblem::from_family(f);
            let seq = seq_reduction(&p.spec, 1, SimConfig::default());
            assert_eq!(seq.x, want, "{}", p.family.name);
        }
    }

    #[test]
    fn gather_formulation_matches_oracle_bitwise() {
        let strat = StrategyConfig::new(3, 2, Distribution::Block, 1);
        for f in families() {
            let want = oracle_reduce(&f);
            let p = FamilyProblem::from_family(f);
            for (a, want_a) in want.iter().enumerate().take(p.family.num_arrays()) {
                let g = p.gather_formulation(a);
                let out = GatherEngine::sim(SimConfig::default())
                    .run(&g, &strat)
                    .expect("valid gather formulation");
                assert_eq!(&out.values[0], want_a, "{} array {a}", p.family.name);
            }
        }
    }
}
