//! Deterministic fault injection against the EARTH backends.
//!
//! The invariant (ISSUE: robustness): under **any** injected fault plan a
//! run either completes **bit-identical** to the fault-free run or
//! returns a structured [`RunError`] within the watchdog deadline — no
//! hangs, no silent corruption.
//!
//! The programs used here move only integer-valued `f64`s, so sums are
//! exact under any delivery order: bit-identical results are a meaningful
//! check even when faults reorder or delay messages.
//!
//! Failing cases print a `PROP_SEED` replay line; see DESIGN.md §8.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use earth_model::native::NativeCtx;
use earth_model::sim::{run_sim, SimConfig, SimCtx};
use earth_model::{
    run_native, run_native_with, FaultConfig, FiberCtx, FiberSpec, MachineProgram, NativeConfig,
    RunError, StallReason, Value,
};
use harness::prop::{check, Config, Gen};
use harness::{prop_assert, prop_assert_eq};

/// Ring token-passing: hop `h` delivers the integer value `vals[h]` to
/// node `h % nodes`, which adds it to its state and forwards `vals[h+1]`.
/// Every mailbox key is used exactly once, so the program is a pure
/// dataflow graph: its result is independent of timing.
#[derive(Debug, Clone)]
struct RingCase {
    nodes: usize,
    rounds: usize,
    vals: Vec<u32>,
}

fn gen_ring(g: &mut Gen) -> RingCase {
    let nodes = g.usize_incl(2, 5);
    let rounds = g.usize_incl(1, 4);
    let hops = nodes * rounds;
    let vals = (0..hops).map(|_| g.u32_in(0..1_000)).collect();
    RingCase {
        nodes,
        rounds,
        vals,
    }
}

fn build_ring<C: FiberCtx<f64> + 'static>(case: &RingCase) -> MachineProgram<f64, C> {
    let n = case.nodes;
    let hops = n * case.rounds;
    let mut prog: MachineProgram<f64, C> = MachineProgram::new();
    for _ in 0..n {
        prog.add_node(0.0f64);
    }
    for r in 0..case.rounds {
        for i in 0..n {
            let h = r * n + i;
            let this_val = case.vals[h] as f64;
            let next_val = case.vals.get(h + 1).copied().unwrap_or(0) as f64;
            let count = if h == 0 { 0 } else { 1 };
            prog.node_mut(i).add_fiber(FiberSpec::new(
                "hop",
                count,
                move |s: &mut f64, cx: &mut C| {
                    let v = if h == 0 {
                        this_val
                    } else {
                        cx.recv(h as u64).expect("token present").expect_scalar()
                    };
                    *s += v;
                    if h + 1 < hops {
                        let dest = (h + 1) % n;
                        let slot = ((h + 1) / n) as u32;
                        cx.data_sync(dest, (h + 1) as u64, Value::Scalar(next_val), slot);
                    }
                },
            ));
        }
    }
    prog
}

fn ring_expected(case: &RingCase) -> Vec<f64> {
    let mut states = vec![0.0f64; case.nodes];
    for (h, &v) in case.vals.iter().enumerate() {
        states[h % case.nodes] += v as f64;
    }
    states
}

/// Fan-in: `p` producers each `data_sync` one integer value to a
/// consumer whose sync count is `p`; the consumer drains the mailbox.
#[derive(Debug, Clone)]
struct FanCase {
    producers: usize,
    vals: Vec<u32>,
}

fn gen_fan(g: &mut Gen) -> FanCase {
    let producers = g.usize_incl(2, 6);
    let vals = (0..producers).map(|_| g.u32_in(0..1_000)).collect();
    FanCase { producers, vals }
}

fn build_fan<C: FiberCtx<f64> + 'static>(case: &FanCase) -> MachineProgram<f64, C> {
    let p = case.producers;
    let mut prog: MachineProgram<f64, C> = MachineProgram::new();
    for _ in 0..=p {
        prog.add_node(0.0f64);
    }
    for (q, &v) in case.vals.iter().enumerate() {
        let val = v as f64;
        prog.node_mut(q).add_fiber(FiberSpec::ready(
            "produce",
            move |_s: &mut f64, cx: &mut C| {
                cx.data_sync(p, 7, Value::Scalar(val), 0);
            },
        ));
    }
    prog.node_mut(p).add_fiber(FiberSpec::new(
        "consume",
        p as u32,
        move |s: &mut f64, cx: &mut C| {
            while let Some(v) = cx.recv(7) {
                *s += v.expect_scalar();
            }
        },
    ));
    prog
}

fn fan_expected(case: &FanCase) -> f64 {
    case.vals.iter().map(|&v| v as f64).sum()
}

/// Native cfg used throughout: a short watchdog (the programs finish in
/// microseconds) and starvation reported as a typed error, so a dropped
/// message can never masquerade as a short-but-Ok run.
fn strict_cfg(faults: Option<FaultConfig>) -> NativeConfig {
    NativeConfig {
        watchdog: Duration::from_secs(5),
        faults,
        starved_is_error: true,
        host_threads: None,
        deadline: None,
    }
}

// --- lossless plans: faults are bit-transparent -------------------------

#[test]
fn lossless_faults_are_bit_transparent_native() {
    let injected = AtomicU64::new(0);
    check(
        "lossless_faults_are_bit_transparent_native",
        Config::cases_quick(64),
        |g| (gen_ring(g), g.u64_any()),
        |(case, seed)| {
            let baseline = run_native(build_ring::<NativeCtx<f64>>(case)).unwrap();
            prop_assert_eq!(&baseline.states, &ring_expected(case));
            let faulty = run_native_with(
                build_ring::<NativeCtx<f64>>(case),
                strict_cfg(Some(FaultConfig::lossless(*seed))),
            )
            .unwrap();
            // Bit-identical, not approximately equal.
            prop_assert_eq!(&faulty.states, &baseline.states);
            prop_assert_eq!(
                faulty.stats.ops.fibers_fired,
                baseline.stats.ops.fibers_fired
            );
            prop_assert_eq!(faulty.stats.faults.dropped, 0);
            injected.fetch_add(faulty.stats.faults.total(), Ordering::Relaxed);
            Ok(())
        },
    );
    // The sweep as a whole must actually have exercised the fault paths.
    assert!(
        injected.load(Ordering::Relaxed) > 0,
        "no faults injected across 64 cases"
    );
}

#[test]
fn lossless_faults_are_bit_transparent_fan_in() {
    check(
        "lossless_faults_are_bit_transparent_fan_in",
        Config::cases_quick(64),
        |g| (gen_fan(g), g.u64_any()),
        |(case, seed)| {
            let r = run_native_with(
                build_fan::<NativeCtx<f64>>(case),
                strict_cfg(Some(FaultConfig::lossless(*seed))),
            )
            .unwrap();
            prop_assert_eq!(r.states[case.producers], fan_expected(case));
            Ok(())
        },
    );
}

// --- lossy/chaos plans: bit-identical or typed error, never a hang ------

#[test]
fn chaos_faults_complete_or_fail_typed_native() {
    let failures = AtomicU64::new(0);
    check(
        "chaos_faults_complete_or_fail_typed_native",
        Config::cases_quick(96),
        |g| {
            let case = gen_ring(g);
            let seed = g.u64_any();
            // Random rates across the whole taxonomy, drop included.
            let cfg = FaultConfig {
                drop_prob: g.f64_in(0.0..0.3),
                panic_prob: g.f64_in(0.0..0.1),
                stall_prob: g.f64_in(0.0..0.1),
                ..FaultConfig::lossless(seed)
            };
            (case, cfg)
        },
        |(case, fcfg)| {
            let expected = ring_expected(case);
            let started = Instant::now();
            let out = run_native_with(build_ring::<NativeCtx<f64>>(case), strict_cfg(Some(*fcfg)));
            let elapsed = started.elapsed();
            prop_assert!(
                elapsed < Duration::from_secs(20),
                "run exceeded the watchdog envelope: {elapsed:?}"
            );
            match out {
                Ok(r) => prop_assert_eq!(&r.states, &expected),
                Err(RunError::NodePanicked { message, fiber, .. }) => {
                    prop_assert!(!message.is_empty());
                    prop_assert!(!fiber.is_empty());
                    failures.fetch_add(1, Ordering::Relaxed);
                }
                Err(RunError::Stalled { reason, .. }) => {
                    // Dropped messages starve downstream fibers; a stall
                    // injection cannot block forever (bounded sleep), so
                    // NoProgress would indicate a runtime bug here.
                    prop_assert_eq!(reason, StallReason::Starved);
                    failures.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(())
        },
    );
    assert!(
        failures.load(Ordering::Relaxed) > 0,
        "chaos sweep never produced a typed failure — rates too low to test recovery"
    );
}

// --- simulator: deterministic replay ------------------------------------

#[test]
fn sim_fault_replay_is_deterministic() {
    check(
        "sim_fault_replay_is_deterministic",
        Config::cases_quick(64),
        |g| (gen_ring(g), g.u64_any()),
        |(case, seed)| {
            let run = || {
                let cfg = SimConfig {
                    faults: Some(FaultConfig::lossless(*seed)),
                    ..SimConfig::default()
                };
                run_sim(build_ring::<SimCtx<f64>>(case), cfg)
            };
            let a = run();
            let b = run();
            // Same seed → same injected faults → same cycle count.
            prop_assert_eq!(a.time_cycles, b.time_cycles);
            prop_assert_eq!(a.stats.faults, b.stats.faults);
            prop_assert_eq!(&a.states, &b.states);
            // And lossless plans never perturb the values.
            prop_assert_eq!(&a.states, &ring_expected(case));
            Ok(())
        },
    );
}

#[test]
fn sim_different_seeds_usually_differ() {
    // Not a per-case guarantee (a tiny program may draw no faults), but
    // across the sweep two distinct seeds must disagree somewhere.
    let mut distinct = false;
    let case = RingCase {
        nodes: 4,
        rounds: 4,
        vals: (0..16).collect(),
    };
    let base = {
        let cfg = SimConfig {
            faults: Some(FaultConfig::lossless(1)),
            ..SimConfig::default()
        };
        run_sim(build_ring::<SimCtx<f64>>(&case), cfg)
    };
    for seed in 2..20u64 {
        let cfg = SimConfig {
            faults: Some(FaultConfig::lossless(seed)),
            ..SimConfig::default()
        };
        let r = run_sim(build_ring::<SimCtx<f64>>(&case), cfg);
        assert_eq!(
            r.states, base.states,
            "lossless faults must stay transparent"
        );
        if r.time_cycles != base.time_cycles || r.stats.faults != base.stats.faults {
            distinct = true;
        }
    }
    assert!(distinct, "19 seeds all injected identical fault schedules");
}

#[test]
fn sim_drop_faults_starve_not_corrupt() {
    // Drop every message: the ring stops at the first transfer. The sim
    // reports the starvation through unfired_fibers; values of fibers
    // that did run are untouched.
    let case = RingCase {
        nodes: 3,
        rounds: 2,
        vals: (0..6).collect(),
    };
    let cfg = SimConfig {
        faults: Some(FaultConfig {
            drop_prob: 1.0,
            ..FaultConfig::none(9)
        }),
        ..SimConfig::default()
    };
    let r = run_sim(build_ring::<SimCtx<f64>>(&case), cfg);
    assert!(r.stats.unfired_fibers > 0);
    assert!(r.stats.faults.dropped > 0);
    assert_eq!(r.states[0], case.vals[0] as f64);
}

// --- panics: enriched structured reports --------------------------------

#[test]
fn real_panic_reports_node_slot_fiber_and_message() {
    let mut prog: MachineProgram<u32, NativeCtx<u32>> = MachineProgram::new();
    prog.add_node(0);
    prog.add_node(0);
    prog.node_mut(0).add_fiber(FiberSpec::ready(
        "starter",
        |_s, cx: &mut NativeCtx<u32>| {
            cx.sync(1, 0);
        },
    ));
    prog.node_mut(1).add_fiber(FiberSpec::new(
        "exploder",
        1,
        |_s, _cx: &mut NativeCtx<u32>| {
            panic!("boom at iteration 17");
        },
    ));
    match run_native(prog) {
        Err(RunError::NodePanicked {
            node,
            slot,
            fiber,
            message,
        }) => {
            assert_eq!(node, 1);
            assert_eq!(slot, 0);
            assert_eq!(fiber, "exploder");
            assert!(message.contains("boom at iteration 17"), "got: {message}");
        }
        other => panic!("expected NodePanicked, got {other:?}"),
    }
}

#[test]
fn panic_error_display_is_informative() {
    let e = RunError::NodePanicked {
        node: 3,
        slot: 5,
        fiber: "phase",
        message: "index out of bounds".into(),
    };
    let s = e.to_string();
    assert!(s.contains("node 3"), "{s}");
    assert!(s.contains("phase"), "{s}");
    assert!(s.contains("slot 5"), "{s}");
    assert!(s.contains("index out of bounds"), "{s}");
}

#[test]
fn injected_panics_are_reported_as_node_panics() {
    // panic_prob = 1 on a program with at least one fiber: the very
    // first fiber trips the injected panic.
    let case = RingCase {
        nodes: 2,
        rounds: 2,
        vals: vec![1, 2, 3, 4],
    };
    let cfg = strict_cfg(Some(FaultConfig {
        panic_prob: 1.0,
        ..FaultConfig::none(4)
    }));
    match run_native_with(build_ring::<NativeCtx<f64>>(&case), cfg) {
        Err(RunError::NodePanicked { message, .. }) => {
            assert!(message.contains("injected"), "got: {message}");
        }
        other => panic!("expected injected NodePanicked, got {other:?}"),
    }
}

// --- watchdog: deadlocks and wedged bodies become typed stalls ----------

#[test]
fn watchdog_reports_deadlocked_program_within_deadline() {
    // Two fibers waiting on syncs nobody will ever send: a deliberate
    // deadlock. Must come back as Stalled with a full dump, quickly, in
    // both debug and release builds.
    let mut prog: MachineProgram<u32, NativeCtx<u32>> = MachineProgram::new();
    prog.add_node(0);
    prog.add_node(0);
    prog.node_mut(0)
        .add_fiber(FiberSpec::new("waits-forever", 2, |_s, _cx| {}));
    prog.node_mut(1)
        .add_fiber(FiberSpec::new("also-waits", 1, |_s, _cx| {}));
    let cfg = NativeConfig {
        watchdog: Duration::from_millis(400),
        faults: None,
        starved_is_error: true,
        host_threads: None,
        deadline: None,
    };
    let started = Instant::now();
    match run_native_with(prog, cfg) {
        Err(RunError::Stalled { reason, dump, .. }) => {
            assert_eq!(reason, StallReason::Starved);
            assert_eq!(dump.pending_slots(), 2);
            let fibers: Vec<&str> = dump
                .nodes
                .iter()
                .flat_map(|n| n.pending.iter().map(|p| p.fiber))
                .collect();
            assert!(fibers.contains(&"waits-forever"), "{fibers:?}");
            assert!(fibers.contains(&"also-waits"), "{fibers:?}");
            // The Display form names every pending slot.
            let text = dump.to_string();
            assert!(text.contains("waits-forever"), "{text}");
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadlock detection took {:?}",
        started.elapsed()
    );
}

#[test]
fn watchdog_trips_on_wedged_fiber_body() {
    // A body that blocks longer than the watchdog: no sync progress is
    // made, so the supervisor must give up and return NoProgress rather
    // than waiting for the sleep to end.
    let mut prog: MachineProgram<u32, NativeCtx<u32>> = MachineProgram::new();
    prog.add_node(0);
    prog.add_node(0);
    prog.node_mut(0).add_fiber(FiberSpec::ready(
        "wedged",
        |_s, _cx: &mut NativeCtx<u32>| {
            std::thread::sleep(Duration::from_secs(8));
        },
    ));
    prog.node_mut(1)
        .add_fiber(FiberSpec::new("downstream", 1, |s, _cx| *s = 1));
    let cfg = NativeConfig {
        watchdog: Duration::from_millis(300),
        faults: None,
        starved_is_error: true,
        host_threads: None,
        deadline: None,
    };
    let started = Instant::now();
    match run_native_with(prog, cfg) {
        Err(RunError::Stalled {
            reason,
            waited,
            outstanding,
            ..
        }) => {
            assert_eq!(reason, StallReason::NoProgress);
            assert!(waited >= Duration::from_millis(300));
            assert!(outstanding > 0, "work was still pending");
        }
        other => panic!("expected Stalled(NoProgress), got {other:?}"),
    }
    // Well inside the 8 s the wedged body would need: the supervisor
    // abandoned the thread instead of joining it.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "watchdog took {:?}",
        started.elapsed()
    );
}
