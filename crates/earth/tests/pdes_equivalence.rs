//! Serial ≡ parallel equivalence suite for the conservative time-window
//! sim core (`earth_model::pdes`).
//!
//! The parallel core's contract is *byte*-determinism: for a fixed seed,
//! `SimConfig::host_threads` must not change a single observable bit —
//! simulated cycle counts, final states, the full [`RunStats`] (per-node
//! busy cycles, cache counters, fault counters), or the rendered trace
//! CSV. That contract is what lets the single-shard serial loop survive
//! as the oracle for every parallel run, so this suite checks it three
//! ways:
//!
//! 1. through the full engine stack on the paper's three workload
//!    families (moldyn force loop, euler edge loop, power-law scatter),
//!    with and without a lossless fault plan;
//! 2. on randomly generated raw fiber dataflow programs under lossless
//!    *and* chaos fault plans — under chaos, drops can starve fibers,
//!    and serial and parallel runs must starve *identically*;
//! 3. for liveness: a wedged shard must surface as a typed
//!    [`SimError::Stalled`], never a hang.
//!
//! On the in-tree [`harness::prop`] harness, so `PROP_BASE_SEED` selects
//! the case stream (the `ci.sh sim` lane pins three seeds and adds a
//! randomized pass).

use std::sync::Arc;
use std::time::Duration;

use earth_model::sim::{run_sim_checked, SimConfig, SimCtx};
use earth_model::{
    mailbox_key, FaultConfig, FiberCtx, FiberSpec, MachineProgram, RingSink, SimError,
};
use harness::prop::{check, Config, Gen};
use harness::prop_assert_eq;
use irred::{
    Distribution, EdgeKernel, ExecutionConfig, PhasedEngine, PhasedSpec, ReductionEngine,
    RunOutcome, StrategyConfig,
};
use kernels::{EulerProblem, FamilyProblem, MolDynProblem};
use workloads::{Mesh, MolDyn, PowerLawGraph};

/// Thread counts every equivalence point is checked at. 1 is the serial
/// oracle; 2 and 4 exercise uneven shard splits and cross-shard lanes.
const THREADS: [usize; 3] = [1, 2, 4];

// ---------------------------------------------------------------------
// 1. Engine-level: the three workload families through PhasedEngine.
// ---------------------------------------------------------------------

/// Run one prepared spec at the given thread count, traced.
fn run_phased<K: EdgeKernel>(
    spec: &PhasedSpec<K>,
    strat: &StrategyConfig,
    faults: Option<FaultConfig>,
    threads: usize,
) -> RunOutcome {
    let sim = SimConfig::default().with_host_threads(threads);
    let mut cfg = ExecutionConfig::sim(sim).traced();
    if let Some(f) = faults {
        cfg = cfg.with_faults(f);
    }
    PhasedEngine::new(cfg).run(spec, strat).expect("sim run")
}

/// Serial vs parallel at every thread count: values, cycles, the whole
/// stats block, and the trace CSV, byte for byte.
fn assert_phased_equiv<K: EdgeKernel>(
    name: &str,
    spec: &PhasedSpec<K>,
    strat: &StrategyConfig,
    faults: Option<FaultConfig>,
) -> Result<(), String> {
    let serial = run_phased(spec, strat, faults, 1);
    let serial_csv = trace::events_to_csv(&serial.trace);
    for t in THREADS {
        let par = run_phased(spec, strat, faults, t);
        prop_assert_eq!(&par.values, &serial.values, "{name}: values @ t={t}");
        prop_assert_eq!(
            par.time_cycles,
            serial.time_cycles,
            "{name}: cycles @ t={t}"
        );
        prop_assert_eq!(&par.stats, &serial.stats, "{name}: stats @ t={t}");
        prop_assert_eq!(
            trace::events_to_csv(&par.trace),
            serial_csv.clone(),
            "{name}: trace CSV @ t={t}"
        );
    }
    Ok(())
}

#[derive(Debug, Clone)]
struct FamilyCase {
    procs: usize,
    k: usize,
    dist: Distribution,
    sweeps: usize,
    seed: u64,
    lossless: bool,
}

fn gen_family_case(g: &mut Gen) -> FamilyCase {
    FamilyCase {
        procs: g.usize_incl(2, 8),
        k: g.usize_incl(1, 3),
        dist: if g.prob(0.5) {
            Distribution::Cyclic
        } else {
            Distribution::Block
        },
        sweeps: g.usize_incl(1, 2),
        seed: g.u64_any(),
        lossless: g.prob(0.5),
    }
}

impl FamilyCase {
    fn strat(&self) -> StrategyConfig {
        StrategyConfig::new(self.procs, self.k, self.dist, self.sweeps)
    }
    fn faults(&self) -> Option<FaultConfig> {
        self.lossless.then(|| FaultConfig::lossless(self.seed))
    }
}

#[test]
fn moldyn_serial_equals_parallel() {
    check(
        "moldyn_serial_equals_parallel",
        Config::cases_quick(12),
        gen_family_case,
        |c| {
            let p = MolDynProblem::from_config(MolDyn::fcc(2, 1.1));
            assert_phased_equiv("moldyn", &p.spec, &c.strat(), c.faults())
        },
    );
}

#[test]
fn euler_serial_equals_parallel() {
    check(
        "euler_serial_equals_parallel",
        Config::cases_quick(12),
        gen_family_case,
        |c| {
            let p = EulerProblem::from_mesh(Mesh::generate(120, 480, c.seed | 1), c.seed | 1);
            assert_phased_equiv("euler", &p.spec, &c.strat(), c.faults())
        },
    );
}

#[test]
fn powerlaw_serial_equals_parallel() {
    check(
        "powerlaw_serial_equals_parallel",
        Config::cases_quick(12),
        gen_family_case,
        |c| {
            let g = PowerLawGraph::generate(96, 384, 1.5, c.seed | 1)
                .map_err(|e| format!("generate: {e}"))?;
            let p = FamilyProblem::from_family(g.to_family(c.seed | 1));
            assert_phased_equiv("powerlaw", &p.spec, &c.strat(), c.faults())
        },
    );
}

// ---------------------------------------------------------------------
// 2. Raw programs: random dataflow DAGs under lossless and chaos plans.
// ---------------------------------------------------------------------

type State = i64;

/// Layered random dataflow DAG (same shape as the native-vs-sim suite):
/// each fiber sums its inputs, adds its id, forwards to consumers.
#[derive(Debug, Clone)]
struct Dag {
    procs: usize,
    layers: Vec<Vec<usize>>,
    edges: Vec<Vec<(usize, usize)>>,
}

fn gen_dag(g: &mut Gen) -> Dag {
    let procs = g.usize_incl(2, 7);
    let nlayers = g.usize_incl(2, 4);
    let layers: Vec<Vec<usize>> = (0..nlayers)
        .map(|_| g.vec(1, 5, |g| g.usize_in(0..procs)))
        .collect();
    let mut edges = Vec::new();
    for li in 0..layers.len() - 1 {
        let (src_n, dst_n) = (layers[li].len(), layers[li + 1].len());
        let mut es: Vec<(usize, usize)> =
            g.vec(0, 8, |g| (g.usize_in(0..src_n), g.usize_in(0..dst_n)));
        es.extend((0..dst_n).map(|d| (d % src_n, d)));
        edges.push(es);
    }
    Dag {
        procs,
        layers,
        edges,
    }
}

fn build_dag(d: &Dag) -> MachineProgram<State, SimCtx<State>> {
    let mut prog: MachineProgram<State, SimCtx<State>> = MachineProgram::new();
    for _ in 0..d.procs {
        prog.add_node(0);
    }
    let mut slot_of: Vec<Vec<u32>> = Vec::new();
    let mut next_slot = vec![0u32; d.procs];
    for nodes in &d.layers {
        let mut slots = Vec::new();
        for &n in nodes {
            slots.push(next_slot[n]);
            next_slot[n] += 1;
        }
        slot_of.push(slots);
    }
    let mut indeg: Vec<Vec<u32>> = d.layers.iter().map(|l| vec![0u32; l.len()]).collect();
    for (li, es) in d.edges.iter().enumerate() {
        for &(_, dst) in es {
            indeg[li + 1][dst] += 1;
        }
    }
    for (li, nodes) in d.layers.iter().enumerate() {
        for (fi, &n) in nodes.iter().enumerate() {
            let my_id = (li * 1000 + fi) as i64;
            let key = mailbox_key(li as u32, fi as u32);
            let consumers: Vec<(usize, u32, u64)> = d
                .edges
                .get(li)
                .map(|es| {
                    es.iter()
                        .filter(|&&(src, _)| src == fi)
                        .map(|&(_, dst)| {
                            (
                                d.layers[li + 1][dst],
                                slot_of[li + 1][dst],
                                mailbox_key(li as u32 + 1, dst as u32),
                            )
                        })
                        .collect()
                })
                .unwrap_or_default();
            prog.node_mut(n).add_fiber(FiberSpec::new(
                "layer",
                indeg[li][fi],
                move |s: &mut State, cx: &mut SimCtx<State>| {
                    let mut acc = my_id;
                    while let Some(v) = cx.recv(key) {
                        acc += v.expect_int();
                    }
                    *s += acc;
                    for &(dn, dslot, dkey) in &consumers {
                        cx.data_sync(dn, dkey, earth_model::Value::Int(acc), dslot);
                    }
                },
            ));
        }
    }
    prog
}

/// Run a DAG at `threads` and return every observable: the report plus
/// the rendered trace CSV.
fn run_dag(d: &Dag, faults: Option<FaultConfig>, threads: usize) -> (String, Vec<State>, u64) {
    let cfg = SimConfig {
        faults,
        ..SimConfig::default()
    }
    .with_host_threads(threads);
    let sink = Arc::new(RingSink::new(d.procs, 1 << 12));
    let report = run_sim_checked(build_dag(d), cfg, sink).expect("no watchdog configured");
    let csv = trace::events_to_csv(&report.trace);
    // Fold the full stats block into the CSV comparison blob so one
    // assert covers cycles, per-node counters, and fault counters.
    let blob = format!("{csv}\n{:?}\n{:?}", report.stats, report.time_cycles);
    (blob, report.states, report.time_cycles)
}

#[test]
fn random_dags_lossless_plans_agree() {
    check(
        "random_dags_lossless_plans_agree",
        Config::cases_quick(48),
        |g| (gen_dag(g), g.u64_any()),
        |(d, seed)| {
            let faults = Some(FaultConfig::lossless(*seed));
            let (blob1, states1, _) = run_dag(d, faults, 1);
            for t in [2, 4] {
                let (blob, states, _) = run_dag(d, faults, t);
                prop_assert_eq!(&states, &states1, "states @ t={t}");
                prop_assert_eq!(blob.clone(), blob1.clone(), "observables @ t={t}");
            }
            Ok(())
        },
    );
}

/// Chaos plans drop and duplicate messages, so fibers can starve — the
/// run still terminates, and serial and parallel must starve the *same*
/// fibers at the *same* cycle counts.
#[test]
fn random_dags_chaos_starves_identically() {
    check(
        "random_dags_chaos_starves_identically",
        Config::cases_quick(48),
        |g| (gen_dag(g), g.u64_any()),
        |(d, seed)| {
            let faults = Some(FaultConfig::chaos(*seed));
            let (blob1, states1, cycles1) = run_dag(d, faults, 1);
            for t in [2, 4] {
                let (blob, states, cycles) = run_dag(d, faults, t);
                prop_assert_eq!(cycles, cycles1, "cycles @ t={t}");
                prop_assert_eq!(&states, &states1, "states @ t={t}");
                prop_assert_eq!(blob.clone(), blob1.clone(), "observables @ t={t}");
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// 3. Liveness: a wedged shard is a typed error, not a hang.
// ---------------------------------------------------------------------

#[test]
fn wedged_shard_surfaces_as_stalled() {
    let mut prog: MachineProgram<u8, SimCtx<u8>> = MachineProgram::new();
    for _ in 0..4 {
        prog.add_node(0);
    }
    // Node 3's fiber wedges the host thread long enough for the
    // watchdog to observe zero progress across a full interval.
    prog.node_mut(3)
        .add_fiber(FiberSpec::ready("wedge", |_, _| {
            std::thread::sleep(Duration::from_millis(1200));
        }));
    for n in 0..3 {
        prog.node_mut(n)
            .add_fiber(FiberSpec::ready("ok", |s: &mut u8, _| *s += 1));
    }
    let cfg = SimConfig::default()
        .with_host_threads(4)
        .with_host_watchdog(Duration::from_millis(100));
    let err = run_sim_checked(prog, cfg, Arc::new(earth_model::NullSink))
        .expect_err("watchdog must fire");
    match err {
        SimError::Stalled { shards, watchdog } => {
            assert_eq!(shards, 4);
            assert_eq!(watchdog, Duration::from_millis(100));
        }
    }
}
