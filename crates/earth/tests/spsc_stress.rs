//! Seeded-chaos stress test for the native backend's SPSC lanes.
//!
//! A producer thread pushes a strictly increasing sequence while the
//! consumer drains concurrently; both sides run a seeded jitter
//! schedule (bursts, yields, busy spins) so the interleaving varies
//! per case the way a `FaultPlan` delay/reorder schedule varies
//! message timing. Whatever the interleaving, the queue must deliver
//! every value exactly once, in push order — no lost deposits, no
//! duplicated ones — and report empty at quiescence.

use std::sync::Arc;

use earth_model::spsc::SpscQueue;
use harness::prop::{check, Config, Gen};
use harness::prop_assert;
use harness::rng::Rng64;

#[derive(Debug, Clone)]
struct Chaos {
    total: u32,
    max_burst: u32,
    producer_yield: f64,
    consumer_yield: f64,
    seed: u64,
}

fn gen_chaos(g: &mut Gen) -> Chaos {
    Chaos {
        total: g.u32_in(500..8_000),
        max_burst: g.u32_in(1..64),
        producer_yield: g.f64_in(0.0..0.4),
        consumer_yield: g.f64_in(0.0..0.4),
        seed: g.u64_any(),
    }
}

fn run_chaos(c: &Chaos) -> Result<(), String> {
    let q: Arc<SpscQueue<u32>> = Arc::new(SpscQueue::new());
    let producer = {
        let q = Arc::clone(&q);
        let c = c.clone();
        std::thread::spawn(move || {
            let mut rng = Rng64::seed_from_u64(c.seed);
            let mut next = 0u32;
            while next < c.total {
                let burst = 1 + rng.bounded_u64(c.max_burst as u64) as u32;
                for _ in 0..burst {
                    if next == c.total {
                        break;
                    }
                    q.push(next);
                    next += 1;
                }
                if rng.gen_bool(c.producer_yield) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        })
    };

    let mut rng = Rng64::seed_from_u64(c.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut expect = 0u32;
    let mut idle = 0u64;
    while expect < c.total {
        match q.pop() {
            Some(v) => {
                idle = 0;
                // In-order and exactly-once: any drop shows up as a
                // skip, any duplicate as a repeat.
                prop_assert!(v == expect, "got {v}, expected {expect} ({c:?})");
                expect += 1;
            }
            None => {
                idle += 1;
                prop_assert!(idle < 500_000_000, "consumer starved at {expect} ({c:?})");
                if rng.gen_bool(c.consumer_yield) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
    producer
        .join()
        .map_err(|_| "producer panicked".to_string())?;
    prop_assert!(q.pop().is_none(), "value beyond the sequence ({c:?})");
    prop_assert!(q.is_empty(), "non-empty at quiescence ({c:?})");
    Ok(())
}

#[test]
fn spsc_no_lost_or_duplicated_deposits() {
    check(
        "spsc_no_lost_or_duplicated_deposits",
        Config::cases(24),
        gen_chaos,
        run_chaos,
    );
}
