//! Property test: random fiber dataflow graphs produce identical results
//! on the native and simulated backends. On the in-tree
//! [`harness::prop`] harness.
//!
//! Programs are layered DAGs: `L` layers of fibers spread over `P`
//! nodes; each fiber accumulates the values it received, adds its own
//! id, and forwards partial sums to its consumers in the next layer.
//! Both backends must deliver every message and fire every fiber, so the
//! final per-node sums agree exactly (integer arithmetic).

use earth_model::native::{run_native, NativeCtx};
use earth_model::sim::{run_sim, SimConfig, SimCtx};
use earth_model::{mailbox_key, FiberCtx, FiberSpec, MachineProgram};
use harness::prop::{check, Config, Gen};
use harness::prop_assert_eq;

/// Node state: accumulated integer per node.
type State = i64;

/// Build the same program for any backend context.
fn build<C: FiberCtx<State> + 'static>(
    layers: &[Vec<usize>],         // layer -> node of each fiber
    edges: &[Vec<(usize, usize)>], // layer -> (src fiber idx, dst fiber idx in next layer)
    procs: usize,
) -> MachineProgram<State, C> {
    let mut prog: MachineProgram<State, C> = MachineProgram::new();
    for _ in 0..procs {
        prog.add_node(0);
    }
    // Fiber slot ids: assign per node in construction order.
    let mut slot_of: Vec<Vec<u32>> = Vec::new(); // layer -> fiber -> slot
    let mut next_slot = vec![0u32; procs];
    for nodes in layers {
        let mut slots = Vec::new();
        for &n in nodes {
            slots.push(next_slot[n]);
            next_slot[n] += 1;
        }
        slot_of.push(slots);
    }
    // In-degrees.
    let mut indeg: Vec<Vec<u32>> = layers.iter().map(|l| vec![0u32; l.len()]).collect();
    for (li, es) in edges.iter().enumerate() {
        for &(_, dst) in es {
            indeg[li + 1][dst] += 1;
        }
    }

    for (li, nodes) in layers.iter().enumerate() {
        for (fi, &n) in nodes.iter().enumerate() {
            let my_id = (li * 1000 + fi) as i64;
            let key = mailbox_key(li as u32, fi as u32);
            let consumers: Vec<(usize, u32, u64)> = edges
                .get(li)
                .map(|es| {
                    es.iter()
                        .filter(|&&(src, _)| src == fi)
                        .map(|&(_, dst)| {
                            (
                                layers[li + 1][dst],
                                slot_of[li + 1][dst],
                                mailbox_key(li as u32 + 1, dst as u32),
                            )
                        })
                        .collect()
                })
                .unwrap_or_default();
            let count = indeg[li][fi];
            prog.node_mut(n).add_fiber(FiberSpec::new(
                "layer",
                count,
                move |s: &mut State, cx: &mut C| {
                    let mut acc = my_id;
                    while let Some(v) = cx.recv(key) {
                        acc += v.expect_int();
                    }
                    *s += acc;
                    for &(dn, dslot, dkey) in &consumers {
                        cx.data_sync(dn, dkey, earth_model::Value::Int(acc), dslot);
                    }
                },
            ));
        }
    }
    prog
}

/// Random layered DAG: `procs`, fiber layers, edges between consecutive
/// layers (every next-layer fiber gets at least one producer so nothing
/// starves).
#[derive(Debug, Clone)]
struct Scenario {
    procs: usize,
    layers: Vec<Vec<usize>>,
    edges: Vec<Vec<(usize, usize)>>,
}

fn scenario(g: &mut Gen) -> Scenario {
    let procs = g.usize_incl(2, 5);
    let nlayers = g.usize_incl(1, 4);
    let layers: Vec<Vec<usize>> = (0..nlayers)
        .map(|_| g.vec(1, 4, |g| g.usize_in(0..procs)))
        .collect();
    let mut edges = Vec::new();
    for li in 0..layers.len().saturating_sub(1) {
        let (src_n, dst_n) = (layers[li].len(), layers[li + 1].len());
        let mut es: Vec<(usize, usize)> =
            g.vec(0, 6, |g| (g.usize_in(0..src_n), g.usize_in(0..dst_n)));
        es.extend((0..dst_n).map(|d| (d % src_n, d)));
        edges.push(es);
    }
    Scenario {
        procs,
        layers,
        edges,
    }
}

#[test]
fn native_and_sim_agree() {
    check("native_and_sim_agree", Config::cases(64), scenario, |s| {
        let sim = run_sim(
            build::<SimCtx<State>>(&s.layers, &s.edges, s.procs),
            SimConfig::default(),
        );
        let nat = run_native(build::<NativeCtx<State>>(&s.layers, &s.edges, s.procs)).unwrap();
        prop_assert_eq!(&sim.states, &nat.states);
        prop_assert_eq!(sim.stats.ops.fibers_fired, nat.stats.ops.fibers_fired);
        prop_assert_eq!(sim.stats.ops.messages, nat.stats.ops.messages);
        prop_assert_eq!(sim.stats.unfired_fibers, 0u64);
        prop_assert_eq!(nat.stats.unfired_fibers, 0u64);
        Ok(())
    });
}

#[test]
fn sim_is_reproducible() {
    check("sim_is_reproducible", Config::cases(64), scenario, |s| {
        let a = run_sim(
            build::<SimCtx<State>>(&s.layers, &s.edges, s.procs),
            SimConfig::default(),
        );
        let b = run_sim(
            build::<SimCtx<State>>(&s.layers, &s.edges, s.procs),
            SimConfig::default(),
        );
        prop_assert_eq!(a.time_cycles, b.time_cycles);
        prop_assert_eq!(a.states, b.states);
        Ok(())
    });
}
