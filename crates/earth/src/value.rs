//! Message payloads for split-phase EARTH operations.

/// A value moved between nodes by `data_sync` / block-move operations.
///
/// EARTH moves raw words and blocks; we type the common payloads the
/// reproduced programs need. Sizes reported by [`Value::bytes`] drive the
/// simulated network's bandwidth charges.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A single floating-point word (`DATA_SYNC` of one double).
    Scalar(f64),
    /// A single integer word.
    Int(i64),
    /// A block of doubles (`BLKMOV`) — e.g. a rotating reduction portion.
    F64s(Box<[f64]>),
    /// A block of 32-bit indices.
    U32s(Box<[u32]>),
    /// A pure synchronization token carrying no data.
    Unit,
}

impl Value {
    /// Payload size in bytes (what the interconnect must carry).
    pub fn bytes(&self) -> u64 {
        match self {
            Value::Scalar(_) | Value::Int(_) => 8,
            Value::F64s(v) => 8 * v.len() as u64,
            Value::U32s(v) => 4 * v.len() as u64,
            Value::Unit => 0,
        }
    }

    /// Borrow as a slice of doubles; panics when the variant differs.
    pub fn expect_f64s(&self) -> &[f64] {
        match self {
            Value::F64s(v) => v,
            other => panic!("expected F64s payload, got {other:?}"),
        }
    }

    /// Consume into a boxed slice of doubles; panics when the variant differs.
    pub fn into_f64s(self) -> Box<[f64]> {
        match self {
            Value::F64s(v) => v,
            other => panic!("expected F64s payload, got {other:?}"),
        }
    }

    /// Extract a scalar; panics when the variant differs.
    pub fn expect_scalar(&self) -> f64 {
        match self {
            Value::Scalar(v) => *v,
            other => panic!("expected Scalar payload, got {other:?}"),
        }
    }

    /// Extract an integer; panics when the variant differs.
    pub fn expect_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int payload, got {other:?}"),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Scalar(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::F64s(v.into_boxed_slice())
    }
}

impl From<Vec<u32>> for Value {
    fn from(v: Vec<u32>) -> Self {
        Value::U32s(v.into_boxed_slice())
    }
}

/// Compose a mailbox key from a tag and a sequence number.
///
/// Programs address messages by `u64` keys; using a tag in the high bits
/// and a sequence number (phase, timestep, …) in the low bits keeps
/// independent message streams from colliding.
#[inline]
pub const fn mailbox_key(tag: u32, seq: u32) -> u64 {
    ((tag as u64) << 32) | seq as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Scalar(1.0).bytes(), 8);
        assert_eq!(Value::Int(3).bytes(), 8);
        assert_eq!(Value::from(vec![0.0f64; 10]).bytes(), 80);
        assert_eq!(Value::from(vec![0u32; 10]).bytes(), 40);
        assert_eq!(Value::Unit.bytes(), 0);
    }

    #[test]
    fn accessors_roundtrip() {
        assert_eq!(Value::Scalar(2.5).expect_scalar(), 2.5);
        assert_eq!(Value::Int(-3).expect_int(), -3);
        let v = Value::from(vec![1.0, 2.0]);
        assert_eq!(v.expect_f64s(), &[1.0, 2.0]);
        assert_eq!(&*v.into_f64s(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "expected F64s")]
    fn wrong_variant_panics() {
        Value::Unit.expect_f64s();
    }

    #[test]
    fn mailbox_keys_distinct() {
        assert_ne!(mailbox_key(1, 0), mailbox_key(0, 1));
        assert_ne!(mailbox_key(1, 2), mailbox_key(2, 1));
        assert_eq!(mailbox_key(3, 4), (3u64 << 32) | 4);
    }
}
