//! Message payloads for split-phase EARTH operations.

/// A value moved between nodes by `data_sync` / block-move operations.
///
/// EARTH moves raw words and blocks; we type the common payloads the
/// reproduced programs need. Sizes reported by [`Value::bytes`] drive the
/// simulated network's bandwidth charges.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A single floating-point word (`DATA_SYNC` of one double).
    Scalar(f64),
    /// A single integer word.
    Int(i64),
    /// A block of doubles (`BLKMOV`) — e.g. a rotating reduction portion.
    F64s(Box<[f64]>),
    /// A block of doubles shared between several in-flight messages
    /// (e.g. one broadcast segment fanned out to `P − 1` destinations):
    /// cloning the `Value` clones the `Arc`, not the data. The network
    /// still charges the full payload size per message — sharing is a
    /// sender-side memory optimization, not a modeled hardware feature.
    F64sShared(std::sync::Arc<[f64]>),
    /// A block of 32-bit indices.
    U32s(Box<[u32]>),
    /// A pure synchronization token carrying no data.
    Unit,
}

impl Value {
    /// Payload size in bytes (what the interconnect must carry).
    pub fn bytes(&self) -> u64 {
        match self {
            Value::Scalar(_) | Value::Int(_) => 8,
            Value::F64s(v) => 8 * v.len() as u64,
            Value::F64sShared(v) => 8 * v.len() as u64,
            Value::U32s(v) => 4 * v.len() as u64,
            Value::Unit => 0,
        }
    }

    /// Borrow as a slice of doubles; panics when the variant differs.
    pub fn expect_f64s(&self) -> &[f64] {
        match self {
            Value::F64s(v) => v,
            Value::F64sShared(v) => v,
            other => panic!("expected F64s payload, got {other:?}"),
        }
    }

    /// Consume into a boxed slice of doubles; panics when the variant
    /// differs. A shared payload is copied out (the rare path — hot
    /// consumers borrow via [`Self::expect_f64s`] instead).
    pub fn into_f64s(self) -> Box<[f64]> {
        match self {
            Value::F64s(v) => v,
            Value::F64sShared(v) => v.to_vec().into_boxed_slice(),
            other => panic!("expected F64s payload, got {other:?}"),
        }
    }

    /// Extract a scalar; panics when the variant differs.
    pub fn expect_scalar(&self) -> f64 {
        match self {
            Value::Scalar(v) => *v,
            other => panic!("expected Scalar payload, got {other:?}"),
        }
    }

    /// Extract an integer; panics when the variant differs.
    pub fn expect_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int payload, got {other:?}"),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Scalar(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::F64s(v.into_boxed_slice())
    }
}

impl From<Vec<u32>> for Value {
    fn from(v: Vec<u32>) -> Self {
        Value::U32s(v.into_boxed_slice())
    }
}

/// Compose a mailbox key from a tag and a sequence number.
///
/// Programs address messages by `u64` keys; using a tag in the high bits
/// and a sequence number (phase, timestep, …) in the low bits keeps
/// independent message streams from colliding.
#[inline]
pub const fn mailbox_key(tag: u32, seq: u32) -> u64 {
    ((tag as u64) << 32) | seq as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Scalar(1.0).bytes(), 8);
        assert_eq!(Value::Int(3).bytes(), 8);
        assert_eq!(Value::from(vec![0.0f64; 10]).bytes(), 80);
        assert_eq!(Value::from(vec![0u32; 10]).bytes(), 40);
        assert_eq!(Value::Unit.bytes(), 0);
    }

    #[test]
    fn accessors_roundtrip() {
        assert_eq!(Value::Scalar(2.5).expect_scalar(), 2.5);
        assert_eq!(Value::Int(-3).expect_int(), -3);
        let v = Value::from(vec![1.0, 2.0]);
        assert_eq!(v.expect_f64s(), &[1.0, 2.0]);
        assert_eq!(&*v.into_f64s(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "expected F64s")]
    fn wrong_variant_panics() {
        Value::Unit.expect_f64s();
    }

    #[test]
    fn shared_blocks_behave_like_owned() {
        let seg: std::sync::Arc<[f64]> = vec![1.0, 2.0, 3.0].into();
        let v = Value::F64sShared(std::sync::Arc::clone(&seg));
        assert_eq!(v.bytes(), 24);
        assert_eq!(v.expect_f64s(), &[1.0, 2.0, 3.0]);
        // Cloning the value shares the block instead of copying it.
        let c = v.clone();
        assert_eq!(std::sync::Arc::strong_count(&seg), 3);
        assert_eq!(&*c.into_f64s(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn mailbox_keys_distinct() {
        assert_ne!(mailbox_key(1, 0), mailbox_key(0, 1));
        assert_ne!(mailbox_key(1, 2), mailbox_key(2, 1));
        assert_eq!(mailbox_key(3, 4), (3u64 << 32) | 4);
    }
}
