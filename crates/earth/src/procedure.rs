//! The two-level thread hierarchy: threaded procedures over fibers.
//!
//! EARTH programs are "divided into a two-level thread hierarchy of
//! fibers and threaded procedures" (§5.2). A *threaded procedure* is a
//! code template instantiated with a frame; its fibers share the frame
//! and synchronize through its slots. The base crate models one implicit
//! procedure per node (state `S` is its frame); this module provides the
//! explicit form: [`ProcedureTemplate`]s that can be **invoked** onto any
//! node at run time, each instance getting its own frame slot inside the
//! node state.
//!
//! Frames live in a [`FrameStore<F>`] embedded in the node state; the
//! caller decides how to embed it (usually a field). Instances are
//! created either at build time ([`instantiate`]) or from a running
//! fiber ([`invoke`], the paper's `INVOKE` operation).

use crate::program::{FiberCtx, FiberSpec, MachineProgram, SlotId};

/// Storage for procedure frames inside a node state.
#[derive(Debug, Default)]
pub struct FrameStore<F> {
    frames: Vec<F>,
}

impl<F> FrameStore<F> {
    pub fn new() -> Self {
        FrameStore { frames: Vec::new() }
    }

    /// Allocate a frame; returns its id.
    pub fn alloc(&mut self, frame: F) -> usize {
        self.frames.push(frame);
        self.frames.len() - 1
    }

    pub fn get(&self, id: usize) -> &F {
        &self.frames[id]
    }

    pub fn get_mut(&mut self, id: usize) -> &mut F {
        &mut self.frames[id]
    }

    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// One fiber of a procedure template.
pub struct TemplateFiber<S, C> {
    /// Sync count relative to the instance (how many intra/inter-instance
    /// syncs gate it).
    pub sync_count: u32,
    /// Body, receiving the node state, the frame id of this instance, and
    /// the context.
    #[allow(clippy::type_complexity)]
    pub body: Box<dyn Fn(&mut S, usize, &mut C) + Send + Sync>,
}

/// A procedure: a reusable set of fibers instantiated against a frame.
pub struct ProcedureTemplate<S, C> {
    pub name: &'static str,
    pub fibers: Vec<TemplateFiber<S, C>>,
}

impl<S, C> ProcedureTemplate<S, C> {
    pub fn new(name: &'static str) -> Self {
        ProcedureTemplate {
            name,
            fibers: Vec::new(),
        }
    }

    /// Add a fiber to the template. The body receives `(state, frame_id,
    /// ctx)`.
    pub fn fiber(
        mut self,
        sync_count: u32,
        body: impl Fn(&mut S, usize, &mut C) + Send + Sync + 'static,
    ) -> Self {
        self.fibers.push(TemplateFiber {
            sync_count,
            body: Box::new(body),
        });
        self
    }
}

/// Handle to an instantiated procedure: where its fibers live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcedureInstance {
    pub node: usize,
    pub frame: usize,
    /// Slot id of the instance's first fiber; fiber `i` of the template
    /// is at `first_slot + i`.
    pub first_slot: SlotId,
}

impl ProcedureInstance {
    /// Slot of the template's `i`-th fiber in this instance.
    pub fn slot(&self, i: usize) -> SlotId {
        self.first_slot + i as SlotId
    }
}

/// Instantiate a template at build time on `node` of `prog`, using
/// `frame_id` (allocate it in the node state's [`FrameStore`] first).
///
/// The template is shared; bodies are wrapped per instance.
pub fn instantiate<S, C>(
    prog: &mut MachineProgram<S, C>,
    node: usize,
    template: &std::sync::Arc<ProcedureTemplate<S, C>>,
    frame_id: usize,
) -> ProcedureInstance
where
    S: 'static,
    C: 'static,
{
    let first_slot = prog.node_mut(node).num_fibers() as SlotId;
    for i in 0..template.fibers.len() {
        let t = std::sync::Arc::clone(template);
        let count = t.fibers[i].sync_count;
        prog.node_mut(node).add_fiber(FiberSpec::new(
            template.name,
            count,
            move |s: &mut S, cx: &mut C| (t.fibers[i].body)(s, frame_id, cx),
        ));
    }
    ProcedureInstance {
        node,
        frame: frame_id,
        first_slot,
    }
}

/// `INVOKE`: instantiate a template on `node` from a *running fiber*.
/// The frame must have been allocated (or be allocatable by the target's
/// fibers themselves); the target node needs
/// [`reserve_dynamic`](crate::program::NodeBuilder::reserve_dynamic)
/// capacity for `template.fibers.len()` fibers.
pub fn invoke<S, C>(
    ctx: &mut C,
    node: usize,
    template: &std::sync::Arc<ProcedureTemplate<S, C>>,
    frame_id: usize,
) -> ProcedureInstance
where
    S: 'static,
    C: FiberCtx<S> + 'static,
{
    let mut first_slot = None;
    for i in 0..template.fibers.len() {
        let t = std::sync::Arc::clone(template);
        let count = t.fibers[i].sync_count;
        let slot = ctx.spawn(
            node,
            FiberSpec::new(template.name, count, move |s: &mut S, cx: &mut C| {
                (t.fibers[i].body)(s, frame_id, cx)
            }),
        );
        first_slot.get_or_insert(slot);
    }
    ProcedureInstance {
        node,
        frame: frame_id,
        first_slot: first_slot.expect("templates have at least one fiber"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::{run_native, NativeCtx};
    use crate::sim::{run_sim, SimConfig, SimCtx};
    use std::sync::Arc;

    /// Node state: frames of partial sums plus a result cell.
    #[derive(Default)]
    struct NS {
        frames: FrameStore<i64>,
        result: i64,
    }

    /// A two-fiber procedure: fiber 0 doubles the frame and syncs fiber 1;
    /// fiber 1 adds the frame into the node result.
    fn template<C: FiberCtx<NS> + 'static>() -> Arc<ProcedureTemplate<NS, C>> {
        Arc::new(
            ProcedureTemplate::new("double-add")
                .fiber(0, |s: &mut NS, f, cx: &mut C| {
                    *s.frames.get_mut(f) *= 2;
                    let me = cx.node_id();
                    // Enable our sibling (next slot on the same node). The
                    // instance handle isn't visible here, so the test uses
                    // the convention first_slot + 1 via frame id == slot
                    // base (set up by the caller below).
                    cx.sync(me, (2 * f + 1) as SlotId);
                })
                .fiber(1, |s: &mut NS, f, _cx: &mut C| {
                    s.result += *s.frames.get(f);
                }),
        )
    }

    #[test]
    fn static_instances_run_independently_sim() {
        let mut prog: MachineProgram<NS, SimCtx<NS>> = MachineProgram::new();
        let n = prog.add_node(NS::default());
        let t = template::<SimCtx<NS>>();
        // Two instances with frames 0 and 1 (fiber slots 0..2 and 2..4 —
        // matching the 2*f+1 convention in the template).
        prog.node_mut(n).state.frames.alloc(5);
        prog.node_mut(n).state.frames.alloc(7);
        let i0 = instantiate(&mut prog, n, &t, 0);
        let i1 = instantiate(&mut prog, n, &t, 1);
        assert_eq!(i0.slot(1), 1);
        assert_eq!(i1.slot(0), 2);
        let r = run_sim(prog, SimConfig::default());
        assert_eq!(r.states[0].result, 10 + 14);
    }

    #[test]
    fn static_instances_run_independently_native() {
        let mut prog: MachineProgram<NS, NativeCtx<NS>> = MachineProgram::new();
        let n = prog.add_node(NS::default());
        let t = template::<NativeCtx<NS>>();
        prog.node_mut(n).state.frames.alloc(3);
        instantiate(&mut prog, n, &t, 0);
        let r = run_native(prog).unwrap();
        assert_eq!(r.states[0].result, 6);
    }

    #[test]
    fn invoke_spawns_remote_instance() {
        // Node 0 invokes the procedure on node 1 at run time.
        let mut prog: MachineProgram<NS, SimCtx<NS>> = MachineProgram::new();
        prog.add_node(NS::default());
        let n1 = prog.add_node(NS::default());
        // Pre-allocate the remote frame (frame 0 → slots 0,1 by convention).
        prog.node_mut(n1).state.frames.alloc(21);
        prog.node_mut(n1).reserve_dynamic(2);
        let t = template::<SimCtx<NS>>();
        prog.node_mut(0).add_fiber(FiberSpec::ready(
            "invoker",
            move |_s, cx: &mut SimCtx<NS>| {
                invoke(cx, 1, &t, 0);
            },
        ));
        let r = run_sim(prog, SimConfig::default());
        assert_eq!(r.states[1].result, 42);
    }

    #[test]
    fn frame_store_basics() {
        let mut fs: FrameStore<String> = FrameStore::new();
        assert!(fs.is_empty());
        let a = fs.alloc("x".into());
        let b = fs.alloc("y".into());
        assert_eq!((a, b), (0, 1));
        assert_eq!(fs.len(), 2);
        fs.get_mut(0).push('!');
        assert_eq!(fs.get(0), "x!");
    }
}
