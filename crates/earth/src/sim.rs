//! Discrete-event simulation backend.
//!
//! This is the reproduction's stand-in for the cycle-accurate MANNA
//! simulator the paper used (§5.2). Each node has an **EU** that executes
//! one fiber at a time (non-preemptive, charged `fiber_switch_cycles`
//! plus whatever the body charges through the [`FiberCtx`] accounting
//! methods) and an **SU** that handles synchronization and communication
//! concurrently with the EU — the "manna-dual" mode of the paper, where
//! one i860XP serves as EU and the second as SU. Remote operations pay a
//! fixed network latency plus a bandwidth term, and each node's outgoing
//! link serializes its transfers.
//!
//! The simulation executes the *real* computation (fiber bodies run and
//! produce correct values) while time is advanced from the cost model,
//! so results can be validated against sequential references in the same
//! run that produces timing.
//!
//! The event loop itself lives in [`crate::pdes`]: a single `Shard`
//! implementation that runs either serially (`host_threads = 1`, the
//! default — exactly the historical single-heap loop) or as a
//! conservative time-window parallel DES across host worker threads
//! ([`SimConfig::host_threads`] > 1), byte-deterministic either way.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use memsim::{MemConfig, MemModel};
use trace::{NullSink, TraceEvent, TraceKind, TraceSink};

use crate::faults::FaultConfig;
use crate::program::{FiberCtx, FiberSpec, MachineProgram, SlotId};
use crate::stats::RunStats;
use crate::value::Value;

pub use crate::pdes::SimError;

/// Cost parameters of the simulated machine.
///
/// Defaults approximate a MANNA node: 50 MHz i860XP, 16 KiB 4-way data
/// cache, crossbar network with ~16 µs end-to-end message latency and
/// ~50 MB/s per-link bandwidth. `EXPERIMENTS.md` documents the
/// calibration against the paper's sequential timings.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    pub mem: MemConfig,
    /// EU cycles to schedule and enter a fiber, including the phase
    /// prologue of generated code (portion bookkeeping, loop setup) —
    /// this is what makes many tiny phases (large `k·P`) more expensive
    /// than few large ones, the paper's "threading overhead" (§5.3).
    pub fiber_switch_cycles: u64,
    /// SU cycles to process one arriving sync/message.
    pub su_op_cycles: u64,
    /// Fixed network cycles for any remote operation.
    pub net_latency_cycles: u64,
    /// Payload bytes the link moves per cycle.
    pub bytes_per_cycle: u64,
    /// Cycles per floating-point operation.
    pub flop_cycles: u64,
    /// Clock rate used to convert cycles to seconds in reports.
    pub clock_hz: u64,
    /// Extra cycles per iteration of inspector-generated phased loops,
    /// over the plain sequential loop: the buffer-management and frame
    /// bookkeeping the EARTH-C compiler emits (calibrated against the
    /// paper's 2-processor euler/moldyn overheads — see EXPERIMENTS.md).
    pub phased_iter_overhead_cycles: u64,
    /// Extra cycles per second-loop copy operation, same source.
    pub phased_copy_overhead_cycles: u64,
    /// Optional deterministic fault plan (see [`crate::faults`]). The
    /// simulator injects the *message* faults — delay (extra latency
    /// cycles), reorder (one extra network hop), duplicate (two arrival
    /// events sharing one operation id, deduplicated at the SU), drop
    /// (the arrival event is never scheduled). Fiber panic/stall rates
    /// are native-backend concepts and are ignored here.
    pub faults: Option<FaultConfig>,
    /// Host worker threads for the event loop. `1` (the default) is the
    /// serial reference loop; `> 1` shards the simulated nodes across
    /// host threads under the conservative time-window protocol
    /// ([`crate::pdes`]), with **identical** simulated cycles, stats,
    /// and trace stream for any value. Simulated time never depends on
    /// this knob — only host wall-clock does. Clamped to the node
    /// count; programs with dynamic fiber capacity run serially.
    pub host_threads: usize,
    /// Watchdog deadline for the parallel event loop: if no shard
    /// handles any event for this long, the run aborts with
    /// [`SimError::Stalled`] instead of hanging on a wedged fiber body.
    /// Must comfortably exceed the longest honest fiber body. `None`
    /// (the default) disables the watchdog; the serial loop ignores it.
    pub host_watchdog: Option<Duration>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mem: MemConfig::i860xp(),
            fiber_switch_cycles: 300,
            su_op_cycles: 20,
            net_latency_cycles: 800,
            bytes_per_cycle: 1,
            flop_cycles: 2,
            clock_hz: 50_000_000,
            phased_iter_overhead_cycles: 50,
            phased_copy_overhead_cycles: 16,
            faults: None,
            host_threads: 1,
            host_watchdog: None,
        }
    }
}

impl SimConfig {
    /// Convert a cycle count to seconds at this machine's clock.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }

    /// Run the event loop on `threads` host worker threads (see
    /// [`SimConfig::host_threads`]).
    pub fn with_host_threads(mut self, threads: usize) -> Self {
        self.host_threads = threads;
        self
    }

    /// Arm the parallel event loop's stall watchdog (see
    /// [`SimConfig::host_watchdog`]).
    pub fn with_host_watchdog(mut self, deadline: Duration) -> Self {
        self.host_watchdog = Some(deadline);
        self
    }
}

/// Result of [`run_sim`].
#[derive(Debug)]
pub struct SimReport<S> {
    pub states: Vec<S>,
    /// Makespan in simulated cycles.
    pub time_cycles: u64,
    /// Makespan in simulated seconds.
    pub seconds: f64,
    pub stats: RunStats,
    /// The structured events drained from the run's [`TraceSink`]
    /// (empty when [`run_sim`]'s implicit [`NullSink`] was used).
    pub trace: Vec<TraceEvent>,
}

/// Render a trace as an ASCII Gantt chart, one row per node: `#` where
/// the EU is busy, `.` where it idles — a quick visual check of how well
/// communication hides behind computation. Busy stretches come from the
/// [`TraceKind::FiberRetire`] events (each carries its execution time).
pub fn render_gantt(trace: &[TraceEvent], num_nodes: usize, total: u64, width: usize) -> String {
    let mut rows = vec![vec![false; width]; num_nodes];
    let scale = |t: u64| ((t as u128 * width as u128) / total.max(1) as u128) as usize;
    for ev in trace {
        let TraceKind::FiberRetire { exec, .. } = ev.kind else {
            continue;
        };
        let node = ev.node as usize;
        if node >= num_nodes {
            continue;
        }
        let (a, b) = (
            scale(ev.ts.saturating_sub(exec)),
            scale(ev.ts).min(width.saturating_sub(1)),
        );
        for cell in &mut rows[node][a..=b.min(width - 1)] {
            *cell = true;
        }
    }
    let mut out = String::new();
    for (n, row) in rows.iter().enumerate() {
        out.push_str(&format!("node {n:>3} |"));
        for &busy in row {
            out.push(if busy { '#' } else { '.' });
        }
        out.push('|');
        out.push('\n');
    }
    out
}

/// The [`FiberCtx`] implementation for the simulator.
///
/// Owned pieces of the executing node (mailbox, memory model) are swapped
/// in for the duration of one fiber execution so the context type carries
/// no lifetimes. The mailbox is a `BTreeMap` so every per-node state walk
/// is in sorted key order — no iteration-order nondeterminism can leak
/// into results, whichever core runs the node.
pub struct SimCtx<S> {
    pub(crate) node: usize,
    pub(crate) num_nodes: usize,
    pub(crate) now: u64,
    pub(crate) charged: u64,
    pub(crate) flop_cycles: u64,
    pub(crate) mailbox: BTreeMap<u64, VecDeque<Value>>,
    pub(crate) mem: MemModel,
    pub(crate) next_dyn: Vec<u32>,
    /// Per node: `static_len + dynamic capacity`, shared by every fiber
    /// run of the whole simulation (precomputed once in `pdes`).
    pub(crate) dyn_cap: Arc<[u32]>,
    pub(crate) ops: Vec<SimOp<S>>,
    pub(crate) tracing: bool,
    /// Structured events the fiber body emitted, with the cycles charged
    /// at emission time — stamped `fire_time + offset` when the fiber
    /// retires, so timestamps stay deterministic.
    pub(crate) tbuf: Vec<(u64, TraceKind)>,
}

pub(crate) enum SimOp<S> {
    Sync {
        node: usize,
        slot: SlotId,
    },
    Data {
        node: usize,
        key: u64,
        value: Value,
        slot: SlotId,
    },
    Spawn {
        node: usize,
        idx: SlotId,
        spec: FiberSpec<S, SimCtx<S>>,
    },
    Get {
        node: usize,
        extract: Box<dyn FnOnce(&S) -> Value + Send>,
        key: u64,
        slot: SlotId,
    },
}

impl<S> FiberCtx<S> for SimCtx<S> {
    fn node_id(&self) -> usize {
        self.node
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn sync(&mut self, node: usize, slot: SlotId) {
        self.ops.push(SimOp::Sync { node, slot });
    }

    fn data_sync(&mut self, node: usize, key: u64, value: Value, slot: SlotId) {
        self.ops.push(SimOp::Data {
            node,
            key,
            value,
            slot,
        });
    }

    fn recv(&mut self, key: u64) -> Option<Value> {
        let q = self.mailbox.get_mut(&key)?;
        let v = q.pop_front();
        if q.is_empty() {
            self.mailbox.remove(&key);
        }
        v
    }

    fn spawn(&mut self, node: usize, spec: FiberSpec<S, Self>) -> SlotId {
        let idx = self.next_dyn[node];
        assert!(
            idx < self.dyn_cap[node],
            "node {node} exceeded its dynamic fiber capacity: call reserve_dynamic"
        );
        self.next_dyn[node] += 1;
        self.ops.push(SimOp::Spawn { node, idx, spec });
        idx
    }

    fn get_sync(
        &mut self,
        node: usize,
        extract: Box<dyn FnOnce(&S) -> Value + Send>,
        key: u64,
        slot: SlotId,
    ) {
        self.ops.push(SimOp::Get {
            node,
            extract,
            key,
            slot,
        });
    }

    #[inline]
    fn charge(&mut self, cycles: u64) {
        self.charged += cycles;
    }

    #[inline]
    fn flops(&mut self, n: u64) {
        self.charged += n * self.flop_cycles;
    }

    #[inline]
    fn load(&mut self, addr: u64) {
        self.charged += self.mem.read(addr);
    }

    #[inline]
    fn store(&mut self, addr: u64) {
        self.charged += self.mem.write(addr);
    }

    #[inline]
    fn warm(&mut self, addr: u64) {
        self.mem.touch(addr);
    }

    fn charged(&self) -> u64 {
        self.charged
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn is_sim(&self) -> bool {
        true
    }

    #[inline]
    fn trace_enabled(&self) -> bool {
        self.tracing
    }

    #[inline]
    fn trace(&mut self, kind: TraceKind) {
        if self.tracing {
            self.tbuf.push((self.charged, kind));
        }
    }
}

/// Execute `prog` on the simulated machine. Deterministic: identical
/// programs produce identical reports — including across
/// [`SimConfig::host_threads`] values. Untraced: every potential event
/// costs one predictable branch.
///
/// Panics on [`SimError::Stalled`] (only reachable with a
/// `host_watchdog`); use [`run_sim_checked`] to handle stalls as values.
pub fn run_sim<S: Send>(prog: MachineProgram<S, SimCtx<S>>, cfg: SimConfig) -> SimReport<S> {
    run_sim_traced(prog, cfg, Arc::new(NullSink))
}

/// [`run_sim`] with a [`TraceSink`]: structured events (fiber
/// fire/retire, syncs, messages with byte counts, fault injections, and
/// whatever the fiber bodies emit through [`FiberCtx::trace`]) are
/// recorded cycle-stamped as the simulation runs, then drained into
/// [`SimReport::trace`]. Because recording never consults a clock and
/// every event is tagged with the simulated node that caused it, the
/// drained stream is byte-identical across runs of the same program —
/// serial or sharded.
pub fn run_sim_traced<S: Send>(
    prog: MachineProgram<S, SimCtx<S>>,
    cfg: SimConfig,
    sink: Arc<dyn TraceSink>,
) -> SimReport<S> {
    match crate::pdes::execute(prog, cfg, sink) {
        Ok(report) => report,
        Err(e) => panic!("simulation failed: {e}"),
    }
}

/// [`run_sim_traced`] returning stall failures as typed values instead
/// of panicking: a wedged shard under an armed
/// [`SimConfig::host_watchdog`] yields [`SimError::Stalled`].
pub fn run_sim_checked<S: Send>(
    prog: MachineProgram<S, SimCtx<S>>,
    cfg: SimConfig,
    sink: Arc<dyn TraceSink>,
) -> Result<SimReport<S>, SimError> {
    crate::pdes::execute(prog, cfg, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FiberSpec;
    use crate::value::mailbox_key;

    type Prog<S> = MachineProgram<S, SimCtx<S>>;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn single_fiber_time_is_switch_plus_charge() {
        let mut prog: Prog<()> = MachineProgram::new();
        prog.add_node(());
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("work", |_s, cx: &mut SimCtx<()>| {
                cx.charge(1000);
            }));
        let r = run_sim(prog, cfg());
        assert_eq!(r.time_cycles, cfg().fiber_switch_cycles + 1000);
        assert_eq!(r.stats.per_node[0].busy_cycles, r.time_cycles);
    }

    #[test]
    fn remote_sync_pays_latency() {
        let mut prog: Prog<u64> = MachineProgram::new();
        prog.add_node(0);
        prog.add_node(0);
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("a", |_s, cx: &mut SimCtx<u64>| {
                cx.sync(1, 0)
            }));
        prog.node_mut(1).add_fiber(FiberSpec::new(
            "b",
            1,
            |s: &mut u64, cx: &mut SimCtx<u64>| {
                *s = cx.now();
            },
        ));
        let r = run_sim(prog, cfg());
        let c = cfg();
        // Fiber a ends at switch; sync arrives +latency +su.
        assert_eq!(
            r.states[1],
            c.fiber_switch_cycles + c.net_latency_cycles + c.su_op_cycles
        );
    }

    #[test]
    fn local_sync_skips_network() {
        let mut prog: Prog<u64> = MachineProgram::new();
        prog.add_node(0);
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("a", |_s, cx: &mut SimCtx<u64>| {
                cx.sync(0, 1)
            }));
        prog.node_mut(0).add_fiber(FiberSpec::new(
            "b",
            1,
            |s: &mut u64, cx: &mut SimCtx<u64>| {
                *s = cx.now();
            },
        ));
        let r = run_sim(prog, cfg());
        let c = cfg();
        assert_eq!(r.states[0], c.fiber_switch_cycles + c.su_op_cycles);
    }

    #[test]
    fn bandwidth_charged_for_blocks() {
        // Sending 8000 bytes at 1 B/cycle must take ≥ 8000 cycles longer
        // than a pure sync.
        let mut prog: Prog<u64> = MachineProgram::new();
        prog.add_node(0);
        prog.add_node(0);
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("send", |_s, cx: &mut SimCtx<u64>| {
                cx.data_sync(1, 5, Value::from(vec![0.0f64; 1000]), 0);
            }));
        prog.node_mut(1).add_fiber(FiberSpec::new(
            "recv",
            1,
            |s: &mut u64, cx: &mut SimCtx<u64>| {
                *s = cx.now();
            },
        ));
        let r = run_sim(prog, cfg());
        let c = cfg();
        assert_eq!(
            r.states[1],
            c.fiber_switch_cycles + 8000 + c.net_latency_cycles + c.su_op_cycles
        );
        assert_eq!(r.stats.ops.bytes, 8000);
    }

    #[test]
    fn out_link_serializes_consecutive_sends() {
        // One fiber sends two 8000-byte blocks to two nodes; the second
        // transfer starts only after the first leaves the link.
        let mut prog: Prog<u64> = MachineProgram::new();
        for _ in 0..3 {
            prog.add_node(0);
        }
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("send2", |_s, cx: &mut SimCtx<u64>| {
                cx.data_sync(1, 5, Value::from(vec![0.0f64; 1000]), 0);
                cx.data_sync(2, 5, Value::from(vec![0.0f64; 1000]), 0);
            }));
        for n in 1..3 {
            prog.node_mut(n).add_fiber(FiberSpec::new(
                "recv",
                1,
                |s: &mut u64, cx: &mut SimCtx<u64>| {
                    *s = cx.now();
                },
            ));
        }
        let r = run_sim(prog, cfg());
        let c = cfg();
        let first = c.fiber_switch_cycles + 8000 + c.net_latency_cycles + c.su_op_cycles;
        assert_eq!(r.states[1], first);
        assert_eq!(r.states[2], first + 8000);
    }

    #[test]
    fn communication_overlaps_computation() {
        // Node 0: fiber A sends a large block to node 1, then fiber B
        // computes for 20_000 cycles. Node 1's receive time must be less
        // than A+B serialized — the EU keeps computing while the message
        // is in flight.
        let mut prog: Prog<u64> = MachineProgram::new();
        prog.add_node(0);
        prog.add_node(0);
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("send", |_s, cx: &mut SimCtx<u64>| {
                cx.data_sync(1, 1, Value::from(vec![0.0f64; 1000]), 0);
                cx.sync(0, 1); // enable compute fiber
            }));
        prog.node_mut(0).add_fiber(FiberSpec::new(
            "compute",
            1,
            |s: &mut u64, cx: &mut SimCtx<u64>| {
                cx.charge(20_000);
                *s = cx.now() + 20_000 + cx.charged();
            },
        ));
        prog.node_mut(1).add_fiber(FiberSpec::new(
            "recv",
            1,
            |s: &mut u64, cx: &mut SimCtx<u64>| {
                *s = cx.now();
            },
        ));
        let r = run_sim(prog, cfg());
        // Total makespan: node 0 busy till ~20_000+; message arrived ~8400.
        // Overlap means makespan < sum of both.
        assert!(r.states[1] < 10_000, "receive at {}", r.states[1]);
        assert!(r.time_cycles < 30_000, "makespan {}", r.time_cycles);
    }

    #[test]
    fn eu_serializes_fibers_on_one_node() {
        let mut prog: Prog<Vec<u64>> = MachineProgram::new();
        prog.add_node(Vec::new());
        for _ in 0..3 {
            prog.node_mut(0).add_fiber(FiberSpec::ready(
                "f",
                |s: &mut Vec<u64>, cx: &mut SimCtx<Vec<u64>>| {
                    cx.charge(100);
                    s.push(cx.now());
                },
            ));
        }
        let r = run_sim(prog, cfg());
        let c = cfg();
        let step = c.fiber_switch_cycles + 100;
        assert_eq!(r.states[0], vec![0, step, 2 * step]);
    }

    #[test]
    fn memory_metering_affects_time() {
        // A strided loop over a large footprint must cost more than the
        // same number of accesses to one line.
        let run = |stride: u64| {
            let mut prog: Prog<()> = MachineProgram::new();
            prog.add_node(());
            prog.node_mut(0)
                .add_fiber(FiberSpec::ready("loop", move |_s, cx: &mut SimCtx<()>| {
                    for i in 0..10_000u64 {
                        cx.load(i * stride);
                    }
                }));
            run_sim(prog, cfg()).time_cycles
        };
        let dense = run(0);
        let sparse = run(64);
        assert!(sparse > 3 * dense, "sparse {sparse} vs dense {dense}");
    }

    #[test]
    fn deterministic_replay() {
        let build = || {
            let mut prog: Prog<u64> = MachineProgram::new();
            for _ in 0..4 {
                prog.add_node(0);
            }
            for n in 0..4usize {
                prog.node_mut(n).add_fiber(FiberSpec::ready(
                    "scatter",
                    move |_s, cx: &mut SimCtx<u64>| {
                        for d in 0..4usize {
                            if d != n {
                                cx.data_sync(d, 7, Value::Scalar(n as f64), 1);
                            }
                        }
                    },
                ));
                prog.node_mut(n).add_fiber(FiberSpec::new(
                    "gather",
                    3,
                    |s: &mut u64, cx: &mut SimCtx<u64>| {
                        while let Some(v) = cx.recv(7) {
                            *s += v.expect_scalar() as u64;
                        }
                    },
                ));
            }
            prog
        };
        let r1 = run_sim(build(), cfg());
        let r2 = run_sim(build(), cfg());
        assert_eq!(r1.time_cycles, r2.time_cycles);
        assert_eq!(r1.states, r2.states);
        // Each node sums the other three ids.
        assert_eq!(r1.states[0], 1 + 2 + 3);
        assert_eq!(r1.states[3], 1 + 2);
    }

    #[test]
    fn repeating_fiber_pipeline() {
        // A self-sustaining 3-firing loop on one node.
        let mut prog: Prog<u32> = MachineProgram::new();
        prog.add_node(0);
        prog.node_mut(0).add_fiber(FiberSpec::repeating(
            "loop",
            0,
            1,
            |s: &mut u32, cx: &mut SimCtx<u32>| {
                *s += 1;
                if *s < 3 {
                    cx.sync(0, 0);
                }
            },
        ));
        let r = run_sim(prog, cfg());
        assert_eq!(r.states[0], 3);
        assert_eq!(r.stats.ops.fibers_fired, 3);
    }

    #[test]
    fn dynamic_spawn_in_sim() {
        let mut prog: Prog<i64> = MachineProgram::new();
        prog.add_node(0);
        prog.add_node(0);
        prog.node_mut(1).reserve_dynamic(2);
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("invoker", |_s, cx: &mut SimCtx<i64>| {
                cx.spawn(1, FiberSpec::ready("w1", |s: &mut i64, _| *s += 40));
                cx.spawn(1, FiberSpec::ready("w2", |s: &mut i64, _| *s += 2));
            }));
        let r = run_sim(prog, cfg());
        assert_eq!(r.states[1], 42);
        assert_eq!(r.stats.ops.spawns, 2);
    }

    #[test]
    fn mailbox_fifo_order_per_key() {
        let mut prog: Prog<Vec<i64>> = MachineProgram::new();
        prog.add_node(Vec::new());
        prog.add_node(Vec::new());
        prog.node_mut(0).add_fiber(FiberSpec::ready(
            "send3",
            |_s, cx: &mut SimCtx<Vec<i64>>| {
                for i in 0..3 {
                    cx.data_sync(1, mailbox_key(2, 0), Value::Int(i), 0);
                }
            },
        ));
        prog.node_mut(1).add_fiber(FiberSpec::new(
            "recv3",
            3,
            |s: &mut Vec<i64>, cx: &mut SimCtx<Vec<i64>>| {
                while let Some(v) = cx.recv(mailbox_key(2, 0)) {
                    s.push(v.expect_int());
                }
            },
        ));
        let r = run_sim(prog, cfg());
        assert_eq!(r.states[1], vec![0, 1, 2]);
    }

    fn traced_pair() -> Prog<()> {
        let mut prog: Prog<()> = MachineProgram::new();
        prog.add_node(());
        prog.add_node(());
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("a", |_s, cx: &mut SimCtx<()>| {
                cx.charge(500);
                cx.trace(TraceKind::PhaseEnter { sweep: 0, phase: 0 });
                cx.sync(1, 0);
            }));
        prog.node_mut(1)
            .add_fiber(FiberSpec::new("b", 1, |_s, cx: &mut SimCtx<()>| {
                cx.charge(700)
            }));
        prog
    }

    #[test]
    fn trace_records_typed_events() {
        let c = cfg();
        let sink = Arc::new(trace::RingSink::new(2, 1024));
        let r = run_sim_traced(traced_pair(), c, sink);
        let fires: Vec<_> = r
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::FiberFire { .. }))
            .collect();
        assert_eq!(fires.len(), 2);
        let retire_a = r
            .trace
            .iter()
            .find(|e| e.node == 0 && matches!(e.kind, TraceKind::FiberRetire { .. }))
            .unwrap();
        let TraceKind::FiberRetire { exec, .. } = retire_a.kind else {
            unreachable!()
        };
        assert_eq!(exec, c.fiber_switch_cycles + 500);
        // The body-emitted event is stamped inside a's span.
        let phase = r
            .trace
            .iter()
            .find(|e| matches!(e.kind, TraceKind::PhaseEnter { .. }))
            .unwrap();
        assert!(phase.ts <= retire_a.ts);
        // Sync issue and message-free run: one Sync, no MsgSend.
        assert!(r
            .trace
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Sync { to_node: 1, .. })));
        let g = render_gantt(&r.trace, 2, r.time_cycles, 40);
        assert_eq!(g.lines().count(), 2);
        assert!(g.contains('#') && g.contains('.'));
    }

    #[test]
    fn trace_off_by_default() {
        let r = run_sim(traced_pair(), cfg());
        assert!(r.trace.is_empty());
    }

    #[test]
    fn traced_run_matches_untraced_run() {
        let plain = run_sim(traced_pair(), cfg());
        let sink = Arc::new(trace::RingSink::new(2, 1024));
        let traced = run_sim_traced(traced_pair(), cfg(), sink);
        assert_eq!(plain.time_cycles, traced.time_cycles);
        assert_eq!(plain.stats.ops, traced.stats.ops);
    }

    #[test]
    fn trace_stream_is_deterministic() {
        let run = || {
            let sink = Arc::new(trace::RingSink::new(2, 1024));
            run_sim_traced(traced_pair(), cfg(), sink).trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn get_sync_round_trip() {
        // Node 0 reads node 1's state without node 1 running any fiber.
        let mut prog: Prog<f64> = MachineProgram::new();
        prog.add_node(0.0);
        prog.add_node(123.5);
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("ask", |_s, cx: &mut SimCtx<f64>| {
                cx.get_sync(1, Box::new(|s: &f64| Value::Scalar(*s)), 77, 1);
            }));
        prog.node_mut(0).add_fiber(FiberSpec::new(
            "use",
            1,
            |s: &mut f64, cx: &mut SimCtx<f64>| {
                *s = cx.recv(77).unwrap().expect_scalar() * 2.0;
            },
        ));
        let r = run_sim(prog, cfg());
        assert_eq!(r.states[0], 247.0);
        // Remote target never fired a fiber.
        assert_eq!(r.stats.per_node[1].fibers_fired, 0);
    }

    #[test]
    fn get_sync_pays_round_trip_latency() {
        let mut prog: Prog<u64> = MachineProgram::new();
        prog.add_node(0);
        prog.add_node(9);
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("ask", |_s, cx: &mut SimCtx<u64>| {
                cx.get_sync(1, Box::new(|s: &u64| Value::Int(*s as i64)), 5, 1);
            }));
        prog.node_mut(0).add_fiber(FiberSpec::new(
            "use",
            1,
            |s: &mut u64, cx: &mut SimCtx<u64>| {
                *s = cx.now();
            },
        ));
        let r = run_sim(prog, cfg());
        let c = cfg();
        // switch + (latency + su) out + 8 bytes + (latency + su) back.
        let expect = c.fiber_switch_cycles
            + (c.net_latency_cycles + c.su_op_cycles) * 2
            + 8 / c.bytes_per_cycle.max(1);
        assert_eq!(r.states[0], expect);
    }

    #[test]
    fn unfired_reported_in_sim() {
        let mut prog: Prog<()> = MachineProgram::new();
        prog.add_node(());
        prog.node_mut(0).add_fiber(FiberSpec::ready("a", |_, _| {}));
        prog.node_mut(0)
            .add_fiber(FiberSpec::new("never", 9, |_, _| {}));
        let r = run_sim(prog, cfg());
        assert_eq!(r.stats.unfired_fibers, 1);
    }
}
