//! Conservative time-window parallel discrete-event core.
//!
//! This module owns the event loop behind [`run_sim`](crate::sim::run_sim):
//! both the serial reference path and the sharded parallel path share one
//! `Shard` implementation, so "serial" is literally "one shard with no
//! lanes" — there is no second copy of the event-handling code to drift.
//!
//! ## Why a conservative window works here
//!
//! Every cross-node interaction in the simulated machine rides a message,
//! and every message pays at least `net_latency_cycles + su_op_cycles`
//! between the moment its sending fiber retires (time `t`) and the moment
//! it arrives at the remote SU. Fault injection only *adds* latency
//! (delay, reorder) or removes the message (drop); duplication reuses the
//! sibling's arrival time. So with lookahead
//! `L = net_latency_cycles + su_op_cycles`, an event handled at time `t`
//! can only create *cross-shard* work at `t + L` or later.
//!
//! The parallel driver exploits that bound with a two-barrier round:
//!
//! 1. drain incoming SPSC lanes into the local heap, publish the local
//!    heap's minimum timestamp, **barrier A**;
//! 2. every shard computes the same global minimum `m` and horizon
//!    `H = m + L`; each processes *all* local events with `time < H`
//!    (including ones it generates for itself inside the window), then
//!    **barrier B** (which orders this round's cross-shard sends before
//!    the next round's drains).
//!
//! Any event a shard emits inside the window `[m, H)` arrives at a remote
//! shard at `≥ m + L = H`, i.e. strictly after the window every shard is
//! currently processing — so no shard ever receives an event earlier than
//! its local clock, and each node's handler sequence is identical to the
//! serial core's. Exit is when the global minimum is `u64::MAX` (all
//! heaps empty): a send still in flight always has a cause event in its
//! *sender's* heap (the sender's own `EuIdle` at an earlier time), so the
//! all-empty state cannot be observed while work remains.
//!
//! ## Determinism
//!
//! The serial loop used to break timestamp ties with a single global
//! emission counter, which no shard can reproduce. Both cores now order
//! events by the content-derived key `(time, source node, per-source
//! emission seq)` — each node's emissions are numbered by that node
//! alone, so the key is identical no matter which host thread runs the
//! node. Combined with the per-node trace rings (whose drain is a stable
//! sort by timestamp in node order) this makes simulated cycles,
//! `RunStats`, *and* the drained trace stream byte-identical across
//! `host_threads` values. DESIGN.md §17 carries the full argument.
//!
//! ## Dynamic spawns
//!
//! `FiberCtx::spawn` allocates dynamic fiber slots from a *global*
//! cursor, an inherently sequential resource. Programs that reserve
//! dynamic capacity therefore run on the serial path regardless of
//! `host_threads` (none of the reduction engines spawn dynamically; the
//! gate exists for the procedure-call layer and tests).
//!
//! ## Watchdog
//!
//! A wedged shard (a fiber body that never returns) would park every
//! other shard at a barrier forever. When
//! [`SimConfig::host_watchdog`](crate::sim::SimConfig::host_watchdog) is
//! set, barrier waits time out, check a global progress counter, and
//! poison the barrier if no shard handled any event within the deadline —
//! every healthy shard then returns [`SimError::Stalled`] instead of
//! hanging. The run unwinds once the offending fiber yields; a body that
//! *never* yields can no more be reaped here than on the native backend
//! (the CI harness's hard timeout is the backstop of last resort).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use memsim::MemModel;
use trace::{FaultKind, TraceEvent, TraceKind, TraceSink};

use crate::faults::{FaultPlan, MessageFault};
use crate::program::{FiberSpec, MachineProgram, SlotId};
use crate::sim::{SimConfig, SimCtx, SimOp, SimReport};
use crate::spsc::SpscQueue;
use crate::stats::{NodeStats, OpCounts, RunStats};
use crate::value::Value;

/// Typed failure of a checked simulator run (see
/// [`run_sim_checked`](crate::sim::run_sim_checked)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// No shard handled any event within the watchdog deadline — some
    /// fiber body is wedged (or the deadline is shorter than the longest
    /// legitimate fiber body; the watchdog must out-wait honest work).
    Stalled {
        /// Host shards that were running when progress stopped.
        shards: usize,
        /// The configured deadline that expired.
        watchdog: Duration,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stalled { shards, watchdog } => write!(
                f,
                "simulation stalled: no progress across {shards} shards within {watchdog:?}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Map a decided message fate to the trace vocabulary (`Deliver` is not
/// a fault and must not be passed here).
fn fault_kind(fate: MessageFault) -> FaultKind {
    match fate {
        MessageFault::Delay { .. } => FaultKind::MsgDelay,
        MessageFault::Reorder => FaultKind::MsgReorder,
        MessageFault::Duplicate => FaultKind::MsgDuplicate,
        MessageFault::Drop | MessageFault::Deliver => FaultKind::MsgDrop,
    }
}

/// Content-derived event ordering key: `(time, source node, per-source
/// emission seq)`. Identical on every host schedule, unlike the old
/// global emission counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKey {
    time: u64,
    src: u32,
    seq: u64,
}

pub(crate) enum Ev<S> {
    /// `op` is a dedup-filter operation id, present only in faulted runs.
    SyncArrive {
        node: usize,
        slot: SlotId,
        op: Option<u64>,
    },
    DataArrive {
        node: usize,
        from: usize,
        key: u64,
        value: Value,
        slot: SlotId,
        op: Option<u64>,
    },
    SpawnArrive {
        node: usize,
        idx: SlotId,
        spec: FiberSpec<S, SimCtx<S>>,
    },
    /// A GET_SYNC request reached the remote SU: evaluate and reply.
    GetArrive {
        node: usize,
        extract: Box<dyn FnOnce(&S) -> Value + Send>,
        reply_to: usize,
        key: u64,
        slot: SlotId,
    },
    EuIdle {
        node: usize,
    },
}

impl<S> Ev<S> {
    /// The node whose SU handles this event — the routing key.
    fn dst(&self) -> usize {
        match self {
            Ev::SyncArrive { node, .. }
            | Ev::DataArrive { node, .. }
            | Ev::SpawnArrive { node, .. }
            | Ev::GetArrive { node, .. }
            | Ev::EuIdle { node } => *node,
        }
    }
}

pub(crate) struct HeapEv<S> {
    key: EventKey,
    ev: Ev<S>,
}

impl<S> PartialEq for HeapEv<S> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<S> Eq for HeapEv<S> {}
impl<S> PartialOrd for HeapEv<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for HeapEv<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

struct SimNode<S> {
    state: S,
    bodies: Vec<Option<FiberSpec<S, SimCtx<S>>>>,
    counts: Vec<i64>,
    resets: Vec<i64>,
    static_len: u32,
    dyn_cap_total: u32,
    mailbox: BTreeMap<u64, VecDeque<Value>>,
    mem: MemModel,
    ready: VecDeque<SlotId>,
    /// Slots whose count reached zero before their spawn registered.
    pending_ready: Vec<SlotId>,
    eu_busy: bool,
    out_link_free: u64,
    stats: NodeStats,
    fired_per_fiber: Vec<u64>,
}

/// Run-wide immutable state shared by every shard.
struct Core {
    cfg: SimConfig,
    num_nodes: usize,
    /// Per node: `static_len + dyn_cap_total`, precomputed once (the old
    /// serial loop rebuilt this vector on every fiber fire).
    dyn_cap: Arc<[u32]>,
    sink: Arc<dyn TraceSink>,
    tracing: bool,
    faults: Option<FaultPlan>,
}

/// Where a shard's emissions go.
enum Route<'a, S> {
    /// Single-shard (serial) run: every destination is local.
    Local,
    /// Sharded run: `lanes[p * shards + q]` is the SPSC lane from
    /// producer shard `p` to consumer shard `q`.
    Lanes {
        owner: &'a [u32],
        lanes: &'a [SpscQueue<HeapEv<S>>],
        me: usize,
        shards: usize,
    },
}

/// One host thread's slice of the machine: a contiguous node range, its
/// event heap, and per-source emission counters.
struct Shard<'a, S> {
    core: &'a Core,
    base: usize,
    nodes: Vec<SimNode<S>>,
    heap: BinaryHeap<Reverse<HeapEv<S>>>,
    emit_seq: Vec<u64>,
    next_dyn: Vec<u32>,
    ops: OpCounts,
    now: u64,
    route: Route<'a, S>,
}

/// What a shard hands back to the driver after its loop exits.
struct ShardResult<S> {
    nodes: Vec<SimNode<S>>,
    ops: OpCounts,
    now: u64,
}

impl<'a, S> Shard<'a, S> {
    fn new(
        core: &'a Core,
        base: usize,
        nodes: Vec<SimNode<S>>,
        next_dyn: Vec<u32>,
        route: Route<'a, S>,
    ) -> Self {
        let emit_seq = vec![0u64; nodes.len()];
        Shard {
            core,
            base,
            nodes,
            heap: BinaryHeap::new(),
            emit_seq,
            next_dyn,
            ops: OpCounts::default(),
            now: 0,
            route,
        }
    }

    #[inline]
    fn record(&self, ts: u64, node: usize, kind: TraceKind) {
        if self.core.tracing {
            self.core
                .sink
                .record(TraceEvent::new(ts, node as u32, kind));
        }
    }

    /// Emit an event from `src` (a node this shard owns). The per-source
    /// emission counter is advanced identically on every host schedule,
    /// so the resulting [`EventKey`] is schedule-independent.
    fn push(&mut self, src: usize, time: u64, ev: Ev<S>) {
        let sli = src - self.base;
        let seq = self.emit_seq[sli];
        self.emit_seq[sli] += 1;
        let hev = HeapEv {
            key: EventKey {
                time,
                src: src as u32,
                seq,
            },
            ev,
        };
        match &self.route {
            Route::Local => self.heap.push(Reverse(hev)),
            Route::Lanes {
                owner,
                lanes,
                me,
                shards,
            } => {
                let dst = owner[hev.ev.dst()] as usize;
                if dst == *me {
                    self.heap.push(Reverse(hev));
                } else {
                    lanes[*me * *shards + dst].push(hev);
                }
            }
        }
    }

    /// Decide a message's fate and allocate its dedup-filter id (faulted
    /// runs only — fault-free runs skip both).
    fn message_fate(&self, src: usize, dst: usize, slot: SlotId) -> (MessageFault, Option<u64>) {
        match &self.core.faults {
            None => (MessageFault::Deliver, None),
            Some(p) => (p.message_fault(src, dst, slot), Some(p.next_op_id())),
        }
    }

    /// Extra arrival latency implied by a fault. Reorder is modeled as
    /// one extra network hop: enough to land behind every same-batch
    /// sibling without losing the message.
    fn fault_delay_cycles(&self, fate: MessageFault) -> u64 {
        match fate {
            MessageFault::Delay { micros } => micros * (self.core.cfg.clock_hz / 1_000_000).max(1),
            MessageFault::Reorder => self.core.cfg.net_latency_cycles + self.core.cfg.su_op_cycles,
            _ => 0,
        }
    }

    /// True when an arriving operation is a duplicate the SU's dedup
    /// filter must swallow.
    fn suppressed(&self, op: Option<u64>) -> bool {
        match (&self.core.faults, op) {
            (Some(p), Some(id)) => !p.first_delivery(id),
            _ => false,
        }
    }

    /// Decrement a slot; enqueue its fiber when it hits zero.
    fn dec(&mut self, node: usize, slot: SlotId, t: u64) {
        let n = &mut self.nodes[node - self.base];
        let c = &mut n.counts[slot as usize];
        *c -= 1;
        if *c == 0 {
            let reset = n.resets[slot as usize];
            if reset > 0 {
                *c += reset;
            }
            if n.bodies.get(slot as usize).is_none_or(|b| b.is_none()) {
                n.pending_ready.push(slot);
            } else {
                n.ready.push_back(slot);
                self.try_start(node, t);
            }
        }
    }

    fn try_start(&mut self, node: usize, t: u64) {
        let n = &self.nodes[node - self.base];
        if n.eu_busy || n.ready.is_empty() {
            return;
        }
        let slot = self.nodes[node - self.base].ready.pop_front().unwrap();
        self.run_fiber(node, slot, t);
    }

    fn run_fiber(&mut self, node: usize, slot: SlotId, t: u64) {
        let cfg = self.core.cfg;
        let n = &mut self.nodes[node - self.base];
        n.eu_busy = true;
        let mut spec = n.bodies[slot as usize]
            .take()
            .expect("ready fiber has a body");
        let mut ctx = SimCtx {
            node,
            num_nodes: self.core.num_nodes,
            now: t,
            charged: 0,
            flop_cycles: cfg.flop_cycles,
            mailbox: std::mem::take(&mut n.mailbox),
            mem: std::mem::replace(&mut n.mem, MemModel::new(cfg.mem)),
            next_dyn: std::mem::take(&mut self.next_dyn),
            dyn_cap: Arc::clone(&self.core.dyn_cap),
            ops: Vec::new(),
            tracing: self.core.tracing,
            tbuf: Vec::new(),
        };
        (spec.body)(&mut n.state, &mut ctx);
        n.bodies[slot as usize] = Some(spec);
        n.fired_per_fiber[slot as usize] += 1;
        n.mailbox = ctx.mailbox;
        n.mem = ctx.mem;
        self.next_dyn = ctx.next_dyn;
        let exec = cfg.fiber_switch_cycles + ctx.charged;
        let end = t + exec;
        let n = &mut self.nodes[node - self.base];
        n.stats.busy_cycles += exec;
        n.stats.fibers_fired += 1;
        self.ops.fibers_fired += 1;
        if self.core.tracing {
            self.record(t, node, TraceKind::FiberFire { slot });
            for (off, kind) in ctx.tbuf.drain(..) {
                self.record(t + cfg.fiber_switch_cycles + off, node, kind);
            }
            self.record(end, node, TraceKind::FiberRetire { slot, exec });
        }
        self.push(node, end, Ev::EuIdle { node });
        // Dispatch the fiber's split-phase operations at its end time.
        for op in ctx.ops {
            match op {
                SimOp::Sync { node: dst, slot } => {
                    self.ops.syncs += 1;
                    self.record(
                        end,
                        node,
                        TraceKind::Sync {
                            to_node: dst as u32,
                            slot,
                        },
                    );
                    let (fate, op) = self.message_fate(node, dst, slot);
                    if fate != MessageFault::Deliver {
                        self.record(
                            end,
                            node,
                            TraceKind::FaultInjected {
                                kind: fault_kind(fate),
                            },
                        );
                    }
                    if fate == MessageFault::Drop {
                        continue;
                    }
                    let arr = if dst == node {
                        end + cfg.su_op_cycles
                    } else {
                        end + cfg.net_latency_cycles + cfg.su_op_cycles
                    } + self.fault_delay_cycles(fate);
                    let copies = if fate == MessageFault::Duplicate {
                        2
                    } else {
                        1
                    };
                    for _ in 0..copies {
                        self.push(
                            node,
                            arr,
                            Ev::SyncArrive {
                                node: dst,
                                slot,
                                op,
                            },
                        );
                    }
                }
                SimOp::Data {
                    node: dst,
                    key,
                    value,
                    slot,
                } => {
                    self.ops.messages += 1;
                    let bytes = value.bytes();
                    self.ops.bytes += bytes;
                    self.record(
                        end,
                        node,
                        TraceKind::MsgSend {
                            to_node: dst as u32,
                            bytes,
                        },
                    );
                    let (fate, op) = self.message_fate(node, dst, slot);
                    if fate != MessageFault::Deliver {
                        self.record(
                            end,
                            node,
                            TraceKind::FaultInjected {
                                kind: fault_kind(fate),
                            },
                        );
                    }
                    if fate == MessageFault::Drop {
                        continue;
                    }
                    let arr = if dst == node {
                        self.ops.local_messages += 1;
                        end + cfg.su_op_cycles
                    } else {
                        let src = &mut self.nodes[node - self.base];
                        let xfer = bytes.div_ceil(cfg.bytes_per_cycle.max(1));
                        let start = end.max(src.out_link_free);
                        src.out_link_free = start + xfer;
                        src.stats.bytes_sent += bytes;
                        start + xfer + cfg.net_latency_cycles + cfg.su_op_cycles
                    } + self.fault_delay_cycles(fate);
                    let copies = if fate == MessageFault::Duplicate {
                        2
                    } else {
                        1
                    };
                    for _ in 0..copies {
                        self.push(
                            node,
                            arr,
                            Ev::DataArrive {
                                node: dst,
                                from: node,
                                key,
                                value: value.clone(),
                                slot,
                                op,
                            },
                        );
                    }
                }
                SimOp::Spawn {
                    node: dst,
                    idx,
                    spec,
                } => {
                    self.ops.spawns += 1;
                    let arr = if dst == node {
                        end + cfg.su_op_cycles
                    } else {
                        end + cfg.net_latency_cycles + cfg.su_op_cycles
                    };
                    self.push(
                        node,
                        arr,
                        Ev::SpawnArrive {
                            node: dst,
                            idx,
                            spec,
                        },
                    );
                }
                SimOp::Get {
                    node: dst,
                    extract,
                    key,
                    slot,
                } => {
                    // Request leg of the round trip.
                    let arr = if dst == node {
                        end + cfg.su_op_cycles
                    } else {
                        end + cfg.net_latency_cycles + cfg.su_op_cycles
                    };
                    self.push(
                        node,
                        arr,
                        Ev::GetArrive {
                            node: dst,
                            extract,
                            reply_to: node,
                            key,
                            slot,
                        },
                    );
                }
            }
        }
    }

    fn handle(&mut self, t: u64, ev: Ev<S>) {
        self.now = t;
        match ev {
            Ev::SyncArrive { node, slot, op } => {
                if self.suppressed(op) {
                    return;
                }
                self.dec(node, slot, t)
            }
            Ev::DataArrive {
                node,
                from,
                key,
                value,
                slot,
                op,
            } => {
                if self.suppressed(op) {
                    return;
                }
                self.record(
                    t,
                    node,
                    TraceKind::MsgRecv {
                        from_node: from as u32,
                        bytes: value.bytes(),
                    },
                );
                self.nodes[node - self.base]
                    .mailbox
                    .entry(key)
                    .or_default()
                    .push_back(value);
                self.dec(node, slot, t);
            }
            Ev::SpawnArrive { node, idx, spec } => {
                let n = &mut self.nodes[node - self.base];
                let i = idx as usize;
                if n.bodies.len() <= i {
                    n.bodies.resize_with(i + 1, || None);
                    n.counts.resize(i + 1, 0);
                    n.resets.resize(i + 1, 0);
                    n.fired_per_fiber.resize(i + 1, 0);
                }
                n.counts[i] = spec.sync_count as i64;
                n.resets[i] = spec.reset.map_or(0, |r| r as i64);
                let ready_now = spec.sync_count == 0;
                n.bodies[i] = Some(spec);
                if let Some(pos) = n.pending_ready.iter().position(|&p| p == idx) {
                    n.pending_ready.swap_remove(pos);
                    n.ready.push_back(idx);
                }
                if ready_now {
                    n.ready.push_back(idx);
                }
                self.try_start(node, t);
            }
            Ev::GetArrive {
                node,
                extract,
                reply_to,
                key,
                slot,
            } => {
                // The remote SU evaluates against the node state without
                // involving its EU, then ships the value back.
                let value = extract(&self.nodes[node - self.base].state);
                self.ops.messages += 1;
                let bytes = value.bytes();
                self.ops.bytes += bytes;
                let arr = if reply_to == node {
                    self.ops.local_messages += 1;
                    t + self.core.cfg.su_op_cycles
                } else {
                    let cfg = self.core.cfg;
                    let src = &mut self.nodes[node - self.base];
                    let xfer = bytes.div_ceil(cfg.bytes_per_cycle.max(1));
                    let start = t.max(src.out_link_free);
                    src.out_link_free = start + xfer;
                    src.stats.bytes_sent += bytes;
                    start + xfer + cfg.net_latency_cycles + cfg.su_op_cycles
                };
                self.push(
                    node,
                    arr,
                    Ev::DataArrive {
                        node: reply_to,
                        from: node,
                        key,
                        value,
                        slot,
                        op: None,
                    },
                );
            }
            Ev::EuIdle { node } => {
                self.nodes[node - self.base].eu_busy = false;
                self.try_start(node, t);
            }
        }
    }

    /// Fire every initially-ready fiber, in ascending node order (the
    /// same order the serial loop has always used).
    fn seed(&mut self) {
        for li in 0..self.nodes.len() {
            for slot in 0..self.nodes[li].counts.len() {
                if self.nodes[li].counts[slot] == 0 {
                    let reset = self.nodes[li].resets[slot];
                    if reset > 0 {
                        self.nodes[li].counts[slot] = reset;
                    }
                    self.nodes[li].ready.push_back(slot as SlotId);
                }
            }
            self.try_start(self.base + li, 0);
        }
    }

    /// The serial reference loop: one shard, plain heap-pop order, no
    /// window machinery. This is exactly the path `host_threads = 1`
    /// takes, so the oracle costs nothing it didn't already pay.
    fn run_serial(mut self) -> ShardResult<S> {
        self.seed();
        while let Some(Reverse(HeapEv { key, ev })) = self.heap.pop() {
            self.handle(key.time, ev);
        }
        self.finish()
    }

    /// The windowed parallel loop (see module docs for the protocol and
    /// its safety argument).
    fn run_windowed(
        mut self,
        sync: &WindowSync,
        lookahead: u64,
    ) -> Result<ShardResult<S>, SimError> {
        let watchdog = self.core.cfg.host_watchdog;
        let me = match &self.route {
            Route::Lanes { me, .. } => *me,
            Route::Local => unreachable!("windowed run requires lanes"),
        };
        self.seed();
        loop {
            // 1. Drain incoming lanes: everything sent before the previous
            //    round's barrier B is visible here, so the published
            //    minimum accounts for every event not still covered by a
            //    sender-side cause (see module docs).
            if let Route::Lanes { lanes, shards, .. } = &self.route {
                for p in 0..*shards {
                    let lane = &lanes[p * *shards + me];
                    while let Some(hev) = lane.pop() {
                        self.heap.push(Reverse(hev));
                    }
                }
            }
            let top = self.heap.peek().map_or(u64::MAX, |Reverse(h)| h.key.time);
            sync.publish(me, top);
            sync.wait(watchdog)?; // barrier A: all minima published
            let m = sync.global_min();
            if m == u64::MAX {
                return Ok(self.finish());
            }
            // 2. Process the window [m, H). Events generated locally
            //    inside the window are processed in the same pass; events
            //    for other shards arrive at >= H by the lookahead bound.
            let horizon = m.saturating_add(lookahead);
            let mut handled = 0u64;
            while let Some(Reverse(top)) = self.heap.peek() {
                if top.key.time >= horizon {
                    break;
                }
                let Reverse(HeapEv { key, ev }) = self.heap.pop().unwrap();
                self.handle(key.time, ev);
                handled += 1;
            }
            sync.progressed(handled);
            sync.wait(watchdog)?; // barrier B: sends ordered before next drain
        }
    }

    fn finish(self) -> ShardResult<S> {
        ShardResult {
            nodes: self.nodes,
            ops: self.ops,
            now: self.now,
        }
    }
}

/// The shared barrier + watchdog + min-reduction state of a windowed run.
struct WindowSync {
    lock: Mutex<Gate>,
    cv: Condvar,
    threads: usize,
    mins: Vec<AtomicU64>,
    /// Total events handled, all shards. The watchdog re-arms whenever
    /// this advances between timeouts.
    progress: AtomicU64,
    poisoned: AtomicBool,
}

struct Gate {
    arrived: usize,
    generation: u64,
}

impl WindowSync {
    fn new(threads: usize) -> Self {
        WindowSync {
            lock: Mutex::new(Gate {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
            threads,
            mins: (0..threads).map(|_| AtomicU64::new(u64::MAX)).collect(),
            progress: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    fn publish(&self, me: usize, min: u64) {
        // Relaxed suffices: the barrier's mutex orders these stores
        // before any post-barrier load.
        self.mins[me].store(min, Ordering::Relaxed);
    }

    fn global_min(&self) -> u64 {
        self.mins
            .iter()
            .map(|m| m.load(Ordering::Relaxed))
            .min()
            .unwrap_or(u64::MAX)
    }

    fn progressed(&self, n: u64) {
        if n > 0 {
            self.progress.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Poison the barrier so every waiter (present and future) unblocks
    /// with an error instead of waiting for a peer that will never come.
    fn poison(&self) {
        let _g = self.lock.lock().unwrap();
        self.poisoned.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    fn stall(&self, watchdog: Duration) -> SimError {
        SimError::Stalled {
            shards: self.threads,
            watchdog,
        }
    }

    /// Generation-counted barrier wait. With a watchdog, waiting shards
    /// time out, check global progress, and poison the barrier if the
    /// whole run is stuck.
    fn wait(&self, watchdog: Option<Duration>) -> Result<(), SimError> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(self.stall(watchdog.unwrap_or_default()));
        }
        let mut g = self.lock.lock().unwrap();
        g.arrived += 1;
        if g.arrived == self.threads {
            g.arrived = 0;
            g.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = g.generation;
        let mut last_progress = self.progress.load(Ordering::Relaxed);
        loop {
            if self.poisoned.load(Ordering::SeqCst) {
                return Err(self.stall(watchdog.unwrap_or_default()));
            }
            if g.generation != gen {
                return Ok(());
            }
            match watchdog {
                None => g = self.cv.wait(g).unwrap(),
                Some(d) => {
                    let (guard, timeout) = self.cv.wait_timeout(g, d).unwrap();
                    g = guard;
                    if timeout.timed_out() {
                        let p = self.progress.load(Ordering::Relaxed);
                        if p == last_progress && g.generation == gen {
                            self.poisoned.store(true, Ordering::SeqCst);
                            self.cv.notify_all();
                            return Err(self.stall(d));
                        }
                        last_progress = p;
                    }
                }
            }
        }
    }
}

/// Poison the barrier if this thread unwinds, so a panicking fiber body
/// doesn't park every other shard forever. The panic itself is
/// propagated to the caller by the driver, exactly like the serial path.
struct PoisonOnPanic<'a>(&'a WindowSync);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// Build the per-node runtime state from a program.
fn build_nodes<S>(prog: MachineProgram<S, SimCtx<S>>, cfg: &SimConfig) -> Vec<SimNode<S>> {
    let mut nodes = Vec::with_capacity(prog.num_nodes());
    for nb in prog.nodes {
        let n_static = nb.fibers.len();
        let mut counts = Vec::with_capacity(n_static);
        let mut resets = Vec::with_capacity(n_static);
        let mut bodies: Vec<Option<FiberSpec<S, SimCtx<S>>>> = Vec::with_capacity(n_static);
        for f in nb.fibers {
            counts.push(f.sync_count as i64);
            resets.push(f.reset.map_or(0, |r| r as i64));
            bodies.push(Some(f));
        }
        nodes.push(SimNode {
            state: nb.state,
            counts,
            resets,
            static_len: n_static as u32,
            dyn_cap_total: nb.dynamic_capacity as u32,
            fired_per_fiber: vec![0; n_static],
            bodies,
            mailbox: BTreeMap::new(),
            mem: MemModel::new(cfg.mem),
            ready: VecDeque::new(),
            pending_ready: Vec::new(),
            eu_busy: false,
            out_link_free: 0,
            stats: NodeStats::default(),
        });
    }
    nodes
}

/// Execute `prog` under `cfg`, dispatching to the serial or windowed
/// core. This is the single entry point behind every public `run_sim*`
/// function.
pub(crate) fn execute<S: Send>(
    prog: MachineProgram<S, SimCtx<S>>,
    cfg: SimConfig,
    sink: Arc<dyn TraceSink>,
) -> Result<SimReport<S>, SimError> {
    let nodes = build_nodes(prog, &cfg);
    let num_nodes = nodes.len();
    let next_dyn: Vec<u32> = nodes.iter().map(|n| n.static_len).collect();
    let has_dynamic = nodes.iter().any(|n| n.dyn_cap_total > 0);
    let dyn_cap: Arc<[u32]> = nodes
        .iter()
        .map(|n| n.static_len + n.dyn_cap_total)
        .collect();
    let core = Core {
        cfg,
        num_nodes,
        dyn_cap,
        tracing: sink.enabled(),
        sink,
        faults: cfg.faults.filter(|f| !f.is_noop()).map(FaultPlan::new),
    };
    let lookahead = cfg.net_latency_cycles + cfg.su_op_cycles;
    let threads = cfg.host_threads.max(1).min(num_nodes.max(1));
    // Dynamic spawns allocate from a global cursor (sequential by
    // nature) and a zero lookahead leaves no window to parallelize:
    // both fall back to the serial core.
    let results = if threads > 1 && lookahead > 0 && !has_dynamic {
        run_parallel(&core, nodes, next_dyn, threads, lookahead)?
    } else {
        vec![Shard::new(&core, 0, nodes, next_dyn, Route::Local).run_serial()]
    };

    let mut time_cycles = 0u64;
    let mut ops = OpCounts::default();
    let mut per_node = Vec::with_capacity(num_nodes);
    let mut states = Vec::with_capacity(num_nodes);
    let mut unfired = 0u64;
    for sh in results {
        time_cycles = time_cycles.max(sh.now);
        ops.merge(&sh.ops);
        for mut n in sh.nodes {
            unfired += n
                .bodies
                .iter()
                .zip(n.fired_per_fiber.iter())
                .filter(|(b, &f)| b.is_some() && f == 0)
                .count() as u64;
            n.stats.mem = n.mem.stats();
            per_node.push(n.stats);
            states.push(n.state);
        }
    }
    Ok(SimReport {
        states,
        time_cycles,
        seconds: cfg.seconds(time_cycles),
        stats: RunStats {
            ops,
            unfired_fibers: unfired,
            total_cycles: time_cycles,
            per_node,
            faults: core.faults.as_ref().map(|p| p.counts()).unwrap_or_default(),
        },
        trace: core.sink.drain(),
    })
}

/// Split the nodes into `threads` contiguous shards and run them on
/// scoped host threads connected by an SPSC lane matrix.
fn run_parallel<S: Send>(
    core: &Core,
    nodes: Vec<SimNode<S>>,
    next_dyn: Vec<u32>,
    threads: usize,
    lookahead: u64,
) -> Result<Vec<ShardResult<S>>, SimError> {
    let num_nodes = nodes.len();
    let mut cuts = Vec::with_capacity(threads + 1);
    cuts.push(0usize);
    let (size, extra) = (num_nodes / threads, num_nodes % threads);
    for i in 0..threads {
        cuts.push(cuts[i] + size + usize::from(i < extra));
    }
    let mut owner = vec![0u32; num_nodes];
    for s in 0..threads {
        for o in owner.iter_mut().take(cuts[s + 1]).skip(cuts[s]) {
            *o = s as u32;
        }
    }
    let lanes: Vec<SpscQueue<HeapEv<S>>> =
        (0..threads * threads).map(|_| SpscQueue::new()).collect();
    let sync = WindowSync::new(threads);

    let mut shards = Vec::with_capacity(threads);
    let mut node_iter = nodes.into_iter();
    for me in 0..threads {
        let span = cuts[me + 1] - cuts[me];
        let slice: Vec<SimNode<S>> = node_iter.by_ref().take(span).collect();
        shards.push(Shard::new(
            core,
            cuts[me],
            slice,
            next_dyn.clone(),
            Route::Lanes {
                owner: &owner,
                lanes: &lanes,
                me,
                shards: threads,
            },
        ));
    }

    let joined: Vec<Result<ShardResult<S>, SimError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|sh| {
                let sync = &sync;
                scope.spawn(move || {
                    let _poison_guard = PoisonOnPanic(sync);
                    sh.run_windowed(sync, lookahead)
                })
            })
            .collect();
        let mut out = Vec::with_capacity(threads);
        let mut panic_payload = None;
        for h in handles {
            match h.join() {
                Ok(r) => out.push(r),
                Err(p) => panic_payload = Some(p),
            }
        }
        if let Some(p) = panic_payload {
            // A fiber body panicked: re-raise on the caller thread, the
            // same observable behaviour as the serial loop.
            std::panic::resume_unwind(p);
        }
        out
    });
    joined.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FiberCtx, FiberSpec};
    use crate::sim::{run_sim, run_sim_checked, SimConfig};
    use crate::value::mailbox_key;

    type Prog<S> = MachineProgram<S, SimCtx<S>>;

    /// An all-to-all scatter/gather over `n` nodes with per-node compute
    /// skew — enough traffic to cross every shard boundary many times.
    fn scatter_gather(n: usize) -> Prog<u64> {
        let mut prog: Prog<u64> = MachineProgram::new();
        for _ in 0..n {
            prog.add_node(0);
        }
        for src in 0..n {
            prog.node_mut(src).add_fiber(FiberSpec::ready(
                "scatter",
                move |_s, cx: &mut SimCtx<u64>| {
                    cx.charge((src as u64 % 7) * 100);
                    for d in 0..cx.num_nodes() {
                        if d != src {
                            cx.data_sync(d, 7, Value::Int(src as i64), 1);
                        }
                    }
                },
            ));
            prog.node_mut(src).add_fiber(FiberSpec::new(
                "gather",
                (n - 1) as u32,
                |s: &mut u64, cx: &mut SimCtx<u64>| {
                    while let Some(v) = cx.recv(7) {
                        *s += v.expect_int() as u64;
                    }
                },
            ));
        }
        prog
    }

    fn with_threads(t: usize) -> SimConfig {
        SimConfig {
            host_threads: t,
            ..SimConfig::default()
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let serial = run_sim(scatter_gather(8), with_threads(1));
        for t in [2, 3, 4] {
            let par = run_sim(scatter_gather(8), with_threads(t));
            assert_eq!(par.time_cycles, serial.time_cycles, "threads={t}");
            assert_eq!(par.states, serial.states, "threads={t}");
            assert_eq!(par.stats, serial.stats, "threads={t}");
        }
    }

    #[test]
    fn uneven_shard_split_is_exact() {
        // 5 nodes over 3 shards: shard sizes 2/2/1.
        let serial = run_sim(scatter_gather(5), with_threads(1));
        let par = run_sim(scatter_gather(5), with_threads(3));
        assert_eq!(par.time_cycles, serial.time_cycles);
        assert_eq!(par.states, serial.states);
        assert_eq!(par.stats, serial.stats);
    }

    #[test]
    fn threads_beyond_nodes_are_clamped() {
        let serial = run_sim(scatter_gather(3), with_threads(1));
        let par = run_sim(scatter_gather(3), with_threads(64));
        assert_eq!(par.states, serial.states);
        assert_eq!(par.time_cycles, serial.time_cycles);
    }

    #[test]
    fn faulted_run_matches_serial_exactly() {
        use crate::faults::FaultConfig;
        let cfg = |t: usize| SimConfig {
            host_threads: t,
            faults: Some(FaultConfig::lossless(0xfeed)),
            ..SimConfig::default()
        };
        let serial = run_sim(scatter_gather(6), cfg(1));
        let par = run_sim(scatter_gather(6), cfg(4));
        assert_eq!(par.time_cycles, serial.time_cycles);
        assert_eq!(par.states, serial.states);
        assert_eq!(par.stats, serial.stats);
        // The plan actually injected something, or this test is vacuous.
        let f = serial.stats.faults;
        assert!(f.delayed + f.reordered + f.duplicated > 0);
    }

    #[test]
    fn traced_parallel_stream_is_byte_identical() {
        let run = |t: usize| {
            let sink = Arc::new(trace::RingSink::new(6, 4096));
            crate::sim::run_sim_traced(scatter_gather(6), with_threads(t), sink).trace
        };
        let serial = run(1);
        assert!(!serial.is_empty());
        assert_eq!(run(2), serial);
        assert_eq!(run(4), serial);
    }

    #[test]
    fn repeating_fibers_cross_shards() {
        // A ring of repeating fibers: each firing re-arms on the sync
        // from the left neighbour, 10 rounds.
        let build = || {
            let n = 6usize;
            let mut prog: Prog<u64> = MachineProgram::new();
            for _ in 0..n {
                prog.add_node(0);
            }
            for i in 0..n {
                let first = i == 0;
                prog.node_mut(i).add_fiber(FiberSpec::repeating(
                    "ring",
                    if first { 0 } else { 1 },
                    1,
                    move |s: &mut u64, cx: &mut SimCtx<u64>| {
                        *s += 1;
                        let me = cx.node_id();
                        let n = cx.num_nodes();
                        if *s < 10 {
                            cx.sync((me + 1) % n, 0);
                        } else if me + 1 < n {
                            cx.sync(me + 1, 0);
                        }
                    },
                ));
            }
            prog
        };
        let serial = run_sim(build(), with_threads(1));
        let par = run_sim(build(), with_threads(3));
        assert_eq!(par.states, serial.states);
        assert_eq!(par.time_cycles, serial.time_cycles);
        assert_eq!(par.stats, serial.stats);
    }

    #[test]
    fn mailbox_fifo_survives_sharding() {
        let build = || {
            let mut prog: Prog<Vec<i64>> = MachineProgram::new();
            for _ in 0..4 {
                prog.add_node(Vec::new());
            }
            for src in 0..4usize {
                prog.node_mut(src).add_fiber(FiberSpec::ready(
                    "send",
                    move |_s, cx: &mut SimCtx<Vec<i64>>| {
                        for i in 0..3 {
                            cx.data_sync(
                                (src + 1) % 4,
                                mailbox_key(2, 0),
                                Value::Int(src as i64 * 10 + i),
                                1,
                            );
                        }
                    },
                ));
                prog.node_mut(src).add_fiber(FiberSpec::new(
                    "recv",
                    3,
                    |s: &mut Vec<i64>, cx: &mut SimCtx<Vec<i64>>| {
                        while let Some(v) = cx.recv(mailbox_key(2, 0)) {
                            s.push(v.expect_int());
                        }
                    },
                ));
            }
            prog
        };
        let serial = run_sim(build(), with_threads(1));
        let par = run_sim(build(), with_threads(2));
        assert_eq!(par.states, serial.states);
        // FIFO per key: each receiver sees its sender's 3 values in order.
        assert_eq!(serial.states[1], vec![0, 1, 2]);
    }

    #[test]
    fn dynamic_spawns_fall_back_to_serial() {
        // reserve_dynamic forces the serial core even at host_threads=4;
        // results must still be correct.
        let build = || {
            let mut prog: Prog<i64> = MachineProgram::new();
            prog.add_node(0);
            prog.add_node(0);
            prog.node_mut(1).reserve_dynamic(2);
            prog.node_mut(0)
                .add_fiber(FiberSpec::ready("invoker", |_s, cx: &mut SimCtx<i64>| {
                    cx.spawn(1, FiberSpec::ready("w1", |s: &mut i64, _| *s += 40));
                    cx.spawn(1, FiberSpec::ready("w2", |s: &mut i64, _| *s += 2));
                }));
            prog
        };
        let r = run_sim(build(), with_threads(4));
        assert_eq!(r.states[1], 42);
        assert_eq!(r.stats.ops.spawns, 2);
    }

    #[test]
    fn wedged_shard_returns_stalled_not_hang() {
        let mut prog: Prog<u64> = MachineProgram::new();
        prog.add_node(0);
        prog.add_node(0);
        // Node 1 wedges for far longer than the watchdog.
        prog.node_mut(0)
            .add_fiber(FiberSpec::ready("fine", |_s, cx: &mut SimCtx<u64>| {
                cx.sync(1, 0);
            }));
        prog.node_mut(1)
            .add_fiber(FiberSpec::new("wedge", 1, |_s, _cx: &mut SimCtx<u64>| {
                std::thread::sleep(Duration::from_millis(1500));
            }));
        let cfg = SimConfig {
            host_threads: 2,
            host_watchdog: Some(Duration::from_millis(100)),
            ..SimConfig::default()
        };
        let err = run_sim_checked(prog, cfg, Arc::new(trace::NullSink)).unwrap_err();
        assert!(matches!(err, SimError::Stalled { shards: 2, .. }));
        assert!(err.to_string().contains("stalled"));
    }

    #[test]
    fn watchdog_rearms_on_progress() {
        // Honest slow work (each fiber briefly sleeps, but events keep
        // flowing) must NOT trip a watchdog longer than any single body.
        let mut prog: Prog<u64> = MachineProgram::new();
        for _ in 0..4 {
            prog.add_node(0);
        }
        for i in 0..4usize {
            prog.node_mut(i).add_fiber(FiberSpec::ready(
                "slowish",
                move |_s, cx: &mut SimCtx<u64>| {
                    std::thread::sleep(Duration::from_millis(20));
                    cx.data_sync((i + 1) % 4, 7, Value::Int(1), 1);
                },
            ));
            prog.node_mut(i).add_fiber(FiberSpec::new(
                "recv",
                1,
                |s: &mut u64, cx: &mut SimCtx<u64>| {
                    while let Some(v) = cx.recv(7) {
                        *s += v.expect_int() as u64;
                    }
                },
            ));
        }
        let cfg = SimConfig {
            host_threads: 2,
            host_watchdog: Some(Duration::from_millis(500)),
            ..SimConfig::default()
        };
        let r = run_sim_checked(prog, cfg, Arc::new(trace::NullSink)).unwrap();
        assert_eq!(r.states, vec![1, 1, 1, 1]);
    }

    #[test]
    fn panicking_fiber_propagates_like_serial() {
        let build = |t: usize| {
            let mut prog: Prog<u64> = MachineProgram::new();
            prog.add_node(0);
            prog.add_node(0);
            prog.node_mut(1)
                .add_fiber(FiberSpec::ready("boom", |_s, _cx: &mut SimCtx<u64>| {
                    panic!("fiber body panicked on purpose");
                }));
            (prog, with_threads(t))
        };
        for t in [1, 2] {
            let (prog, cfg) = build(t);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_sim(prog, cfg)));
            assert!(r.is_err(), "threads={t} must propagate the panic");
        }
    }

    #[test]
    fn empty_program_terminates_under_sharding() {
        let mut prog: Prog<u64> = MachineProgram::new();
        for _ in 0..4 {
            prog.add_node(0);
        }
        let r = run_sim(prog, with_threads(4));
        assert_eq!(r.time_cycles, 0);
        assert_eq!(r.states, vec![0; 4]);
    }
}
