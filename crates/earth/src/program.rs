//! Backend-independent program representation: nodes, fibers, sync slots.

use crate::value::Value;

/// Identifies a sync slot on a node. Slots are one-per-fiber, so a
/// `SlotId` is the index the fiber was registered at (the value returned
/// by [`NodeBuilder::add_fiber`]).
pub type SlotId = u32;

/// The boxed body of a fiber: runs with exclusive access to the node's
/// state (the procedure frame) and a backend context for issuing EARTH
/// operations. `FnMut` because a fiber with a reset count fires many
/// times.
pub type FiberBody<S, C> = Box<dyn FnMut(&mut S, &mut C) + Send>;

/// Specification of one fiber.
pub struct FiberSpec<S, C> {
    /// Debug/stats label.
    pub name: &'static str,
    /// Initial sync-slot count. The fiber becomes ready when the count
    /// reaches zero; a count of zero makes it ready at start-up.
    pub sync_count: u32,
    /// When `Some(r)`, the slot re-arms with count `r` each time it
    /// fires, so the fiber can fire repeatedly (the standard EARTH idiom
    /// for loop pipelines). When `None`, the fiber fires at most once.
    pub reset: Option<u32>,
    /// The code.
    pub body: FiberBody<S, C>,
}

impl<S, C> FiberSpec<S, C> {
    /// A fiber gated on `sync_count` incoming syncs.
    pub fn new(
        name: &'static str,
        sync_count: u32,
        body: impl FnMut(&mut S, &mut C) + Send + 'static,
    ) -> Self {
        FiberSpec {
            name,
            sync_count,
            reset: None,
            body: Box::new(body),
        }
    }

    /// A fiber that is ready immediately.
    pub fn ready(name: &'static str, body: impl FnMut(&mut S, &mut C) + Send + 'static) -> Self {
        Self::new(name, 0, body)
    }

    /// A repeating fiber: fires when the count reaches zero, then re-arms
    /// with `reset`.
    pub fn repeating(
        name: &'static str,
        sync_count: u32,
        reset: u32,
        body: impl FnMut(&mut S, &mut C) + Send + 'static,
    ) -> Self {
        FiberSpec {
            name,
            sync_count,
            reset: Some(reset),
            body: Box::new(body),
        }
    }
}

impl<S, C> std::fmt::Debug for FiberSpec<S, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FiberSpec")
            .field("name", &self.name)
            .field("sync_count", &self.sync_count)
            .field("reset", &self.reset)
            .finish_non_exhaustive()
    }
}

/// A shareable fiber body: unlike [`FiberBody`] it is `Fn` (not
/// `FnMut`) and reference-counted, so one closure can back the same
/// fiber across many program instantiations.
pub type SharedFiberBody<S, C> = std::sync::Arc<dyn Fn(&mut S, &mut C) + Send + Sync>;

/// A reusable fiber description. Where [`FiberSpec`] owns its body (and
/// is therefore consumed when the program runs), a `FiberTemplate`
/// shares it, so a [`ProgramTemplate`] can be instantiated any number of
/// times without re-creating the fiber closures.
#[derive(Clone)]
pub struct FiberTemplate<S, C> {
    pub name: &'static str,
    pub sync_count: u32,
    pub reset: Option<u32>,
    pub body: SharedFiberBody<S, C>,
}

impl<S: 'static, C: 'static> FiberTemplate<S, C> {
    /// A template fiber gated on `sync_count` incoming syncs.
    pub fn new(
        name: &'static str,
        sync_count: u32,
        body: impl Fn(&mut S, &mut C) + Send + Sync + 'static,
    ) -> Self {
        FiberTemplate {
            name,
            sync_count,
            reset: None,
            body: std::sync::Arc::new(body),
        }
    }

    /// Materialize a runnable [`FiberSpec`] that forwards to the shared
    /// body. The clone is an `Arc` bump plus one small allocation — the
    /// closure environment itself is reused.
    pub fn instantiate(&self) -> FiberSpec<S, C> {
        let body = std::sync::Arc::clone(&self.body);
        FiberSpec {
            name: self.name,
            sync_count: self.sync_count,
            reset: self.reset,
            body: Box::new(move |s, c| body(s, c)),
        }
    }
}

impl<S, C> std::fmt::Debug for FiberTemplate<S, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FiberTemplate")
            .field("name", &self.name)
            .field("sync_count", &self.sync_count)
            .field("reset", &self.reset)
            .finish_non_exhaustive()
    }
}

/// The fibers of one node, without the state (states are supplied at
/// instantiation time, since each run consumes them).
#[derive(Clone, Debug)]
pub struct NodeTemplate<S, C> {
    pub(crate) fibers: Vec<FiberTemplate<S, C>>,
    pub(crate) dynamic_capacity: usize,
}

impl<S: 'static, C: 'static> NodeTemplate<S, C> {
    /// Register a template fiber; returns the [`SlotId`] it will occupy
    /// in every instantiated program.
    pub fn add_fiber(&mut self, t: FiberTemplate<S, C>) -> SlotId {
        let id = self.fibers.len() as SlotId;
        self.fibers.push(t);
        id
    }

    /// Reserve capacity for dynamically spawned fibers (see
    /// [`NodeBuilder::reserve_dynamic`]).
    pub fn reserve_dynamic(&mut self, n: usize) {
        self.dynamic_capacity = self.dynamic_capacity.max(n);
    }

    pub fn num_fibers(&self) -> usize {
        self.fibers.len()
    }
}

/// A reusable whole-machine program: the fiber structure of a
/// [`MachineProgram`] with the node states factored out. Build it once
/// per `(workload, strategy)` pair, then [`instantiate`] it with fresh
/// states for each run — the fiber bodies (the expensive closures) are
/// shared across instantiations instead of rebuilt.
///
/// [`instantiate`]: ProgramTemplate::instantiate
#[derive(Clone, Debug)]
pub struct ProgramTemplate<S, C> {
    nodes: Vec<NodeTemplate<S, C>>,
}

impl<S: 'static, C: 'static> Default for ProgramTemplate<S, C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: 'static, C: 'static> ProgramTemplate<S, C> {
    pub fn new() -> Self {
        ProgramTemplate { nodes: Vec::new() }
    }

    /// Add a node; returns its node id.
    pub fn add_node(&mut self) -> usize {
        self.nodes.push(NodeTemplate {
            fibers: Vec::new(),
            dynamic_capacity: 0,
        });
        self.nodes.len() - 1
    }

    pub fn node_mut(&mut self, node: usize) -> &mut NodeTemplate<S, C> {
        &mut self.nodes[node]
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_fibers(&self) -> usize {
        self.nodes.iter().map(|n| n.fibers.len()).sum()
    }

    /// Produce a runnable [`MachineProgram`] with one supplied state per
    /// node. Panics if `states.len() != num_nodes()`.
    pub fn instantiate(&self, states: Vec<S>) -> MachineProgram<S, C> {
        assert_eq!(
            states.len(),
            self.nodes.len(),
            "one state per template node required"
        );
        let mut prog = MachineProgram::new();
        for (tmpl, state) in self.nodes.iter().zip(states) {
            let id = prog.add_node(state);
            let node = prog.node_mut(id);
            node.dynamic_capacity = tmpl.dynamic_capacity;
            for f in &tmpl.fibers {
                node.add_fiber(f.instantiate());
            }
        }
        prog
    }
}

/// One node of the machine: its procedure frame (`state`) and the fibers
/// registered on it.
pub struct NodeBuilder<S, C> {
    pub state: S,
    pub(crate) fibers: Vec<FiberSpec<S, C>>,
    /// How many dynamically spawned fibers this node must be able to
    /// host (pre-sized so sync counters exist before the spawn lands).
    pub(crate) dynamic_capacity: usize,
}

impl<S, C> NodeBuilder<S, C> {
    /// Register a fiber; returns its [`SlotId`] (used as the sync target).
    pub fn add_fiber(&mut self, spec: FiberSpec<S, C>) -> SlotId {
        let id = self.fibers.len() as SlotId;
        self.fibers.push(spec);
        id
    }

    /// Reserve capacity for fibers spawned at run time via
    /// [`FiberCtx::spawn`]. Defaults to zero.
    pub fn reserve_dynamic(&mut self, n: usize) {
        self.dynamic_capacity = self.dynamic_capacity.max(n);
    }

    pub fn num_fibers(&self) -> usize {
        self.fibers.len()
    }
}

/// A whole-machine program: one [`NodeBuilder`] per node. Generic over
/// the node state `S` and the backend context `C` the fiber bodies will
/// receive ([`crate::native::NativeCtx`] or [`crate::sim::SimCtx`]).
pub struct MachineProgram<S, C> {
    pub(crate) nodes: Vec<NodeBuilder<S, C>>,
}

impl<S, C> Default for MachineProgram<S, C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S, C> MachineProgram<S, C> {
    pub fn new() -> Self {
        MachineProgram { nodes: Vec::new() }
    }

    /// Add a node with the given initial state; returns its node id.
    pub fn add_node(&mut self, state: S) -> usize {
        self.nodes.push(NodeBuilder {
            state,
            fibers: Vec::new(),
            dynamic_capacity: 0,
        });
        self.nodes.len() - 1
    }

    pub fn node_mut(&mut self, node: usize) -> &mut NodeBuilder<S, C> {
        &mut self.nodes[node]
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total statically registered fibers across all nodes.
    pub fn num_fibers(&self) -> usize {
        self.nodes.iter().map(|n| n.fibers.len()).sum()
    }
}

/// The handle through which a fiber body issues EARTH operations.
///
/// All operations are **split-phase**: they are buffered while the fiber
/// runs and take effect when it ends (a non-preemptive fiber cannot
/// observe its own operations' results — the consumer of a long-latency
/// operation must be a different fiber, exactly as the paper describes).
///
/// The accounting methods ([`charge`](FiberCtx::charge),
/// [`load`](FiberCtx::load), [`store`](FiberCtx::store),
/// [`flops`](FiberCtx::flops)) are no-ops on the native backend and
/// compile away; the simulator maps them to cycles through its cost
/// model.
pub trait FiberCtx<S>: Sized {
    /// Id of the node this fiber runs on.
    fn node_id(&self) -> usize;

    /// Number of nodes in the machine.
    fn num_nodes(&self) -> usize;

    /// `SYNC`: decrement the sync slot `slot` on `node` (local or remote).
    fn sync(&mut self, node: usize, slot: SlotId);

    /// `DATA_SYNC` / `BLKMOV`: deposit `value` in `node`'s mailbox under
    /// `key`, then decrement `slot` there. The receiving fiber picks the
    /// payload up with [`recv`](FiberCtx::recv).
    fn data_sync(&mut self, node: usize, key: u64, value: Value, slot: SlotId);

    /// Take one message deposited under `key` in this node's mailbox.
    /// Messages with the same key queue in arrival order.
    fn recv(&mut self, key: u64) -> Option<Value>;

    /// `INVOKE`: instantiate a new fiber on `node` at run time. The
    /// target node must have reserved capacity via
    /// [`NodeBuilder::reserve_dynamic`]. Returns the new fiber's slot id.
    fn spawn(&mut self, node: usize, spec: FiberSpec<S, Self>) -> SlotId;

    /// `GET_SYNC`: split-phase remote read. The remote node's SU
    /// evaluates `extract` against that node's state (without involving
    /// its EU — the paper's "SU also handles communication"), deposits
    /// the result in *this* node's mailbox under `key`, and decrements
    /// `slot` here. The round trip pays network latency both ways on the
    /// simulator.
    fn get_sync(
        &mut self,
        node: usize,
        extract: Box<dyn FnOnce(&S) -> Value + Send>,
        key: u64,
        slot: SlotId,
    );

    /// Charge `cycles` of pure computation to this fiber (sim only).
    #[inline]
    fn charge(&mut self, _cycles: u64) {}

    /// Charge `n` floating-point operations (sim only).
    #[inline]
    fn flops(&mut self, _n: u64) {}

    /// Charge one memory load of `addr` through the cache model (sim only).
    #[inline]
    fn load(&mut self, _addr: u64) {}

    /// Charge one memory store of `addr` through the cache model (sim only).
    #[inline]
    fn store(&mut self, _addr: u64) {}

    /// Mark `addr`'s cache line warm without charging — models data the
    /// SU/DMA deposited into memory-then-cache (received portions), whose
    /// transfer cost is billed separately (sim only).
    #[inline]
    fn warm(&mut self, _addr: u64) {}

    /// Cycles charged so far during the current fiber execution.
    fn charged(&self) -> u64 {
        0
    }

    /// Current simulated time in cycles (0 on the native backend).
    fn now(&self) -> u64 {
        0
    }

    /// Whether this is the simulating backend (useful to switch between
    /// metered and plain inner loops).
    fn is_sim(&self) -> bool {
        false
    }

    /// Whether a trace sink is attached and recording. Hot paths must
    /// guard [`trace`](FiberCtx::trace) calls (and any event-argument
    /// computation) on this, so untraced runs pay one predictable
    /// branch per potential event.
    #[inline]
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Emit a structured trace event. The backend supplies the
    /// timestamp: simulated cycles on the simulator (stamped at the
    /// point the fiber had charged this many cycles), monotonic
    /// nanoseconds on the native backend. A no-op when no sink is
    /// attached.
    #[inline]
    fn trace(&mut self, _kind: trace::TraceKind) {}
}

/// Memory-access metering abstraction for hot loops.
///
/// Executors write their inner loops once, generic over `Meter`; passing
/// [`CtxMeter`] yields a fully instrumented loop for the simulator's
/// measuring sweep, and [`NullMeter`] yields the plain loop (native
/// execution, or simulator sweeps whose cost is replayed from the
/// measuring sweep).
pub trait Meter {
    fn load(&mut self, addr: u64);
    fn store(&mut self, addr: u64);
    fn flops(&mut self, n: u64);
}

/// The no-op meter: every call compiles away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMeter;

impl Meter for NullMeter {
    #[inline(always)]
    fn load(&mut self, _addr: u64) {}
    #[inline(always)]
    fn store(&mut self, _addr: u64) {}
    #[inline(always)]
    fn flops(&mut self, _n: u64) {}
}

/// A meter that forwards to a [`FiberCtx`].
pub struct CtxMeter<'a, S, C: FiberCtx<S>> {
    pub ctx: &'a mut C,
    _marker: std::marker::PhantomData<fn(&mut S)>,
}

impl<'a, S, C: FiberCtx<S>> CtxMeter<'a, S, C> {
    pub fn new(ctx: &'a mut C) -> Self {
        CtxMeter {
            ctx,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S, C: FiberCtx<S>> Meter for CtxMeter<'_, S, C> {
    #[inline]
    fn load(&mut self, addr: u64) {
        self.ctx.load(addr);
    }
    #[inline]
    fn store(&mut self, addr: u64) {
        self.ctx.store(addr);
    }
    #[inline]
    fn flops(&mut self, n: u64) {
        self.ctx.flops(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut prog: MachineProgram<(), ()> = MachineProgram::new();
        let n = prog.add_node(());
        let f0 = prog.node_mut(n).add_fiber(FiberSpec::ready("a", |_, _| {}));
        let f1 = prog
            .node_mut(n)
            .add_fiber(FiberSpec::new("b", 2, |_, _| {}));
        assert_eq!((f0, f1), (0, 1));
        assert_eq!(prog.num_fibers(), 2);
        assert_eq!(prog.num_nodes(), 1);
    }

    #[test]
    fn fiberspec_constructors() {
        let s: FiberSpec<(), ()> = FiberSpec::ready("r", |_, _| {});
        assert_eq!(s.sync_count, 0);
        assert!(s.reset.is_none());
        let s = FiberSpec::<(), ()>::repeating("p", 3, 5, |_, _| {});
        assert_eq!(s.sync_count, 3);
        assert_eq!(s.reset, Some(5));
        let dbg = format!("{s:?}");
        assert!(dbg.contains("\"p\""));
    }

    #[test]
    fn null_meter_is_inert() {
        let mut m = NullMeter;
        m.load(1);
        m.store(2);
        m.flops(3);
    }

    #[test]
    fn template_instantiates_repeatedly() {
        let mut tmpl: ProgramTemplate<u32, ()> = ProgramTemplate::new();
        let n = tmpl.add_node();
        let f = tmpl
            .node_mut(n)
            .add_fiber(FiberTemplate::new("t", 2, |s: &mut u32, _| *s += 1));
        assert_eq!(f, 0);
        tmpl.node_mut(n).reserve_dynamic(3);
        assert_eq!(tmpl.num_nodes(), 1);
        assert_eq!(tmpl.num_fibers(), 1);
        for round in 0..3 {
            let mut prog = tmpl.instantiate(vec![round]);
            assert_eq!(prog.num_nodes(), 1);
            assert_eq!(prog.num_fibers(), 1);
            assert_eq!(prog.node_mut(0).dynamic_capacity, 3);
            let node = &mut prog.nodes[0];
            let spec = &mut node.fibers[0];
            assert_eq!(spec.sync_count, 2);
            (spec.body)(&mut node.state, &mut ());
            assert_eq!(node.state, round + 1);
        }
    }

    #[test]
    fn template_clone_shares_bodies() {
        let mut tmpl: ProgramTemplate<u32, ()> = ProgramTemplate::new();
        let n = tmpl.add_node();
        tmpl.node_mut(n)
            .add_fiber(FiberTemplate::new("t", 0, |s: &mut u32, _| *s *= 2));
        let copy = tmpl.clone();
        let mut prog = copy.instantiate(vec![21]);
        let node = &mut prog.nodes[0];
        let spec = &mut node.fibers[0];
        (spec.body)(&mut node.state, &mut ());
        assert_eq!(node.state, 42);
    }

    #[test]
    #[should_panic(expected = "one state per template node")]
    fn template_state_count_mismatch_panics() {
        let mut tmpl: ProgramTemplate<u32, ()> = ProgramTemplate::new();
        tmpl.add_node();
        let _ = tmpl.instantiate(vec![]);
    }

    #[test]
    fn reserve_dynamic_takes_max() {
        let mut prog: MachineProgram<(), ()> = MachineProgram::new();
        let n = prog.add_node(());
        prog.node_mut(n).reserve_dynamic(4);
        prog.node_mut(n).reserve_dynamic(2);
        assert_eq!(prog.node_mut(n).dynamic_capacity, 4);
    }
}
