//! Execution statistics shared by both backends.

use memsim::MemStats;

/// Counts of EARTH operations issued during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Fibers that actually executed (a repeating fiber counts each firing).
    pub fibers_fired: u64,
    /// `SYNC` operations issued (excluding the sync half of `DATA_SYNC`).
    pub syncs: u64,
    /// `DATA_SYNC`/`BLKMOV` messages issued.
    pub messages: u64,
    /// Total payload bytes moved by messages.
    pub bytes: u64,
    /// Messages whose source and destination node are the same.
    pub local_messages: u64,
    /// Fibers instantiated at run time via `INVOKE`.
    pub spawns: u64,
}

impl OpCounts {
    pub fn merge(&mut self, o: &OpCounts) {
        self.fibers_fired += o.fibers_fired;
        self.syncs += o.syncs;
        self.messages += o.messages;
        self.bytes += o.bytes;
        self.local_messages += o.local_messages;
        self.spawns += o.spawns;
    }
}

/// Per-node statistics from a simulated run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Cycles the EU spent executing fiber bodies (incl. switch cost).
    pub busy_cycles: u64,
    pub fibers_fired: u64,
    pub bytes_sent: u64,
    /// Cache behaviour of the metered portions of fiber bodies.
    pub mem: MemStats,
}

/// Aggregate statistics for one run. Derives `PartialEq` so the
/// serial-vs-parallel equivalence suites can assert byte-level equality
/// of whole reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    pub ops: OpCounts,
    /// Fibers registered but never fired (often intentional slack; callers
    /// that expect every fiber to fire should assert this is zero).
    pub unfired_fibers: u64,
    /// Length of the run in cycles, recorded by the backend that
    /// produced these stats (the simulator's makespan; zero on the
    /// native backend, which has no cycle clock). Lets utilization be
    /// computed without callers threading the run length by hand.
    pub total_cycles: u64,
    pub per_node: Vec<NodeStats>,
    /// Injected-fault counters (all zero unless the run carried a
    /// [`FaultConfig`](crate::faults::FaultConfig)).
    pub faults: crate::faults::FaultCounts,
}

impl RunStats {
    /// EU utilization of node `n` over the recorded run length
    /// ([`RunStats::total_cycles`]). Zero when the backend recorded no
    /// cycle clock (native runs).
    pub fn utilization(&self, n: usize) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.per_node[n].busy_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Mean EU utilization across nodes over the recorded run length.
    pub fn mean_utilization(&self) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        let s: f64 = (0..self.per_node.len()).map(|n| self.utilization(n)).sum();
        s / self.per_node.len() as f64
    }

    /// EU utilization against a caller-supplied run length.
    #[deprecated(
        since = "0.1.0",
        note = "the run length is recorded in RunStats::total_cycles; use utilization(n)"
    )]
    pub fn utilization_with(&self, n: usize, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.per_node[n].busy_cycles as f64 / total_cycles as f64
        }
    }

    /// Mean EU utilization against a caller-supplied run length.
    #[deprecated(
        since = "0.1.0",
        note = "the run length is recorded in RunStats::total_cycles; use mean_utilization()"
    )]
    pub fn mean_utilization_with(&self, total_cycles: u64) -> f64 {
        if self.per_node.is_empty() || total_cycles == 0 {
            return 0.0;
        }
        let s: f64 = self
            .per_node
            .iter()
            .map(|n| n.busy_cycles as f64 / total_cycles as f64)
            .sum();
        s / self.per_node.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds() {
        let mut a = OpCounts {
            fibers_fired: 1,
            syncs: 2,
            messages: 3,
            bytes: 4,
            local_messages: 5,
            spawns: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.fibers_fired, 2);
        assert_eq!(a.spawns, 12);
    }

    #[test]
    fn utilization_uses_recorded_run_length() {
        let mut stats = RunStats {
            total_cycles: 100,
            per_node: vec![
                NodeStats {
                    busy_cycles: 50,
                    ..Default::default()
                },
                NodeStats {
                    busy_cycles: 100,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(stats.utilization(0), 0.5);
        assert_eq!(stats.utilization(1), 1.0);
        assert!((stats.mean_utilization() - 0.75).abs() < 1e-12);
        stats.total_cycles = 0;
        assert_eq!(stats.utilization(0), 0.0);
        assert_eq!(stats.mean_utilization(), 0.0);
    }

    #[test]
    #[allow(deprecated)]
    fn parameterized_forms_still_agree() {
        let stats = RunStats {
            total_cycles: 200,
            per_node: vec![NodeStats {
                busy_cycles: 50,
                ..Default::default()
            }],
            ..Default::default()
        };
        assert_eq!(stats.utilization_with(0, 200), stats.utilization(0));
        assert_eq!(stats.mean_utilization_with(200), stats.mean_utilization());
        assert_eq!(stats.utilization_with(0, 0), 0.0);
    }
}
